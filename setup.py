"""Setup shim: enables `pip install -e .` on environments without the
`wheel` package (the PEP 517 editable path needs bdist_wheel)."""

from setuptools import setup

setup()
