"""WAL shipping between a shard primary and its hot followers.

The sender subscribes to the primary's
:class:`~repro.storage.wal.WriteAheadLog` and, at every transaction
boundary (COMMIT, ABORT, CHECKPOINT, CREATE_TABLE), synchronously ships
the suffix each follower is missing as a ``_repl`` message over the
ordinary framed transport.  The receiver applies shipped records into
its *own* WAL file via :meth:`~repro.storage.wal.WriteAheadLog.ingest`,
preserving the primary's LSNs byte-for-byte — promotion later boots a
deployment straight off that file through the normal recovery path.

Three properties carry the failover guarantees:

* **Idempotent delivery** — the sender re-ships the full unacked suffix
  after any failure; the receiver skips records at or below its applied
  LSN, so redelivery can never double-apply.
* **Epoch fencing** — every ship carries the sender's epoch; a receiver
  that has adopted a newer epoch (because a promotion happened) answers
  ``repl-fenced`` and the sender latches :attr:`ReplicationSender.fenced`
  permanently: the deposed primary's stream is dead, not retried.
* **Ack gating** — :meth:`ReplicationSender.gate` plugs into
  :attr:`~repro.net.server.PromiseServer.gate`: while no live follower
  holds the last committed LSN (partitioned, lagging, or fenced), the
  primary withholds acks, so no client ever observes state the replica
  group cannot promise to keep across a failover.
"""

from __future__ import annotations

import json
import threading
from typing import Callable

from ..obs.metrics import MetricsRegistry
from ..protocol.errors import ProtocolError, RequestTimeout, TransportFailure
from ..protocol.messages import ActionOutcomePayload, ActionPayload, Message
from ..protocol.retry import RetryPolicy
from ..storage.wal import LogRecord, LogRecordType, WriteAheadLog

#: Endpoint name the receiver's handler is registered under on every
#: follower server.  Deliberately underscore-prefixed like ``_ping``:
#: not an application endpoint, never routed by a gateway.
REPL_ENDPOINT = "_repl"

#: Fault prefix a receiver uses to reject a stale-epoch stream.  An
#: application-level fault (no ``transport:`` prefix): the message was
#: delivered and understood, the *sender* is what's wrong.
FENCED_FAULT_PREFIX = "repl-fenced:"

#: Record types that close a unit of work; appends of these flush the
#: ship buffer synchronously, so an acked commit is on a follower
#: before the primary's reply leaves the building.
_FLUSH_TYPES = frozenset(
    {
        LogRecordType.COMMIT,
        LogRecordType.ABORT,
        LogRecordType.CHECKPOINT,
        LogRecordType.CREATE_TABLE,
    }
)

#: Records per ship message.  A long-unreachable (or freshly rejoined)
#: follower may be missing the log's entire tail; shipping that in one
#: message would blow the transport's 1 MiB frame limit and fail
#: forever — the link could then *never* catch up and the primary's ack
#: gate would stay closed for good.  Chunking keeps every frame small
#: and lets ``acked_lsn`` advance chunk by chunk, so partial progress
#: survives a mid-catch-up failure.
SHIP_CHUNK_RECORDS = 512


def _record_to_wire(record: LogRecord) -> dict[str, object]:
    """One WAL record as codec-encodable params (plain JSON types)."""
    return json.loads(record.to_json())


def _record_from_wire(payload: object) -> LogRecord:
    """Inverse of :func:`_record_to_wire`."""
    return LogRecord.from_json(json.dumps(payload))


class _FollowerLink:
    """The sender's view of one follower: transport plus applied LSN."""

    def __init__(self, name: str, transport) -> None:
        self.name = name
        self.transport = transport
        #: Highest LSN the follower has acknowledged applying.
        self.acked_lsn = 0
        self.ship_failures = 0

    def close(self) -> None:
        closer = getattr(self.transport, "close", None)
        if closer is not None:
            closer()


class ReplicationSender:
    """Ship one primary's WAL to its followers, synchronously on commit.

    Subscribe :meth:`observe` to the primary's WAL; the sender reads the
    unacked suffix straight from the log's in-memory records (which a
    checkpoint truncates to a snapshot record the receiver applies as a
    whole-file replace), so a follower that has been unreachable for any
    length of time catches up from whatever the log still holds.
    """

    def __init__(
        self,
        group: str,
        epoch: int,
        wal: WriteAheadLog,
        sender_name: str = "primary",
        transport_factory: Callable[[tuple[str, int]], object] | None = None,
        timeout: float = 1.0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.group = group
        self.epoch = epoch
        self._wal = wal
        self._name = sender_name
        self._timeout = timeout
        self._transport_factory = transport_factory
        self._links: list[_FollowerLink] = []
        self._lock = threading.RLock()
        self._counter = 0
        #: Simulated network partition from every follower: flushes fail
        #: without touching a socket.  The chaos nemesis flips this.
        self.blocked = False
        #: Latched reason once a follower rejected our epoch: this
        #: sender belongs to a deposed primary and must never ack again.
        self.fenced: str | None = None
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    @property
    def ships(self) -> int:
        """Ship messages sent (view over ``repl.ships``)."""
        return int(self.metrics.value("repl.ships"))

    @property
    def records_shipped(self) -> int:
        """WAL records acknowledged applied (``repl.records_shipped``)."""
        return int(self.metrics.value("repl.records_shipped"))

    def _update_lag(self) -> None:
        """Refresh the ``repl.ship_lag_lsn`` gauge (primary vs followers)."""
        self.metrics.set_gauge(
            "repl.ship_lag_lsn",
            float(self._wal.last_lsn - self.synced_lsn()),
        )

    # -------------------------------------------------------------- wiring

    def add_follower(
        self, address: tuple[str, int], name: str
    ) -> _FollowerLink:
        """Register a follower to ship to (does not sync it — see
        :meth:`full_sync`)."""
        transport = self._make_transport(address)
        link = _FollowerLink(name, transport)
        with self._lock:
            self._links.append(link)
        return link

    def remove_follower(self, name: str) -> None:
        """Drop a follower link (it was promoted, or torn down)."""
        with self._lock:
            for link in list(self._links):
                if link.name == name:
                    self._links.remove(link)
                    link.close()

    def close(self) -> None:
        """Close every follower transport."""
        with self._lock:
            for link in self._links:
                link.close()
            self._links = []

    @property
    def followers(self) -> list[str]:
        return [link.name for link in self._links]

    def _make_transport(self, address: tuple[str, int]):
        if self._transport_factory is not None:
            return self._transport_factory(address)
        from ..net.transport import NetworkTransport

        return NetworkTransport(
            address, timeout=self._timeout, retry=RetryPolicy.none()
        )

    # ------------------------------------------------------------ shipping

    def observe(self, record: LogRecord) -> None:
        """WAL observer: flush the unacked suffix at txn boundaries.

        Intermediate records (BEGIN, PUT, DELETE) ride along with the
        boundary record that closes their transaction — one ship per
        commit, not one per record.
        """
        if record.record_type in _FLUSH_TYPES:
            self.flush()

    def flush(self) -> bool:
        """Ship each follower the records it is missing.

        Returns True when at least one follower acknowledges holding the
        log's last LSN — the condition under which the primary may ack.
        Failures mark the follower lagging (its suffix is re-shipped on
        the next flush); a ``repl-fenced`` answer latches
        :attr:`fenced` and stops this sender for good.
        """
        with self._lock:
            if self.fenced is not None:
                return False
            target = self._wal.last_lsn
            if self.blocked:
                return False
            records = list(self._wal)
            for link in self._links:
                todo = [r for r in records if r.lsn > link.acked_lsn]
                if not todo:
                    continue
                self._ship_chunked(link, "ship", todo)
            self._update_lag()
            return any(link.acked_lsn >= target for link in self._links)

    def full_sync(self, link: _FollowerLink) -> bool:
        """Rebuild one follower's log from scratch (bootstrap / rejoin).

        A ``full_sync`` tells the receiver to discard its file — losing
        any suffix that diverged while it was a deposed primary — and
        re-ingest everything the current log holds, then adopt this
        sender's epoch.
        """
        with self._lock:
            link.acked_lsn = 0
            return self._ship_chunked(link, "full_sync", list(self._wal))

    def full_sync_all(self) -> None:
        """Bootstrap every registered follower."""
        with self._lock:
            for link in self._links:
                self.full_sync(link)

    def _ship_chunked(
        self, link: _FollowerLink, op: str, records: list[LogRecord]
    ) -> bool:
        """Ship ``records`` in frame-sized chunks, acked one by one.

        Only the first chunk carries a ``full_sync`` op (the receiver's
        log reset must happen exactly once); the rest append as ordinary
        ships.  An empty ``full_sync`` still sends one message — the
        reset and the epoch adoption are the point, not the records.
        """
        if not records:
            return op != "full_sync" or self._ship(link, op, [])
        for start in range(0, len(records), SHIP_CHUNK_RECORDS):
            chunk = records[start : start + SHIP_CHUNK_RECORDS]
            chunk_op = op if start == 0 else "ship"
            if not self._ship(link, chunk_op, chunk):
                return False
        return True

    def _ship(
        self, link: _FollowerLink, op: str, records: list[LogRecord]
    ) -> bool:
        self._counter += 1
        self.metrics.inc("repl.ships")
        message = Message(
            message_id=f"repl:{self.group}:{self.epoch}:{self._counter}",
            sender=self._name,
            recipient=REPL_ENDPOINT,
            action=ActionPayload(
                service="replication",
                operation=op,
                params={
                    "group": self.group,
                    "epoch": self.epoch,
                    "records": [_record_to_wire(r) for r in records],
                },
            ),
        )
        try:
            reply = link.transport.send(message)
        except (TransportFailure, RequestTimeout, ProtocolError):
            link.ship_failures += 1
            return False
        for fault in reply.faults:
            if fault.startswith(FENCED_FAULT_PREFIX):
                self.fenced = fault[len(FENCED_FAULT_PREFIX):].strip()
                self.metrics.inc("repl.fenced")
                return False
        outcome = reply.action_outcome
        if outcome is None or not outcome.success:
            link.ship_failures += 1
            return False
        applied = outcome.value
        if isinstance(applied, dict) and "applied_lsn" in applied:
            link.acked_lsn = int(applied["applied_lsn"])  # type: ignore[arg-type]
            self.metrics.inc("repl.records_shipped", len(records))
            return True
        link.ship_failures += 1
        return False

    # ---------------------------------------------------------------- gate

    def synced_lsn(self) -> int:
        """Highest LSN any follower has acknowledged."""
        with self._lock:
            return max((link.acked_lsn for link in self._links), default=0)

    def gate(self) -> str | None:
        """Why the primary must not ack right now (``None`` = go ahead).

        Plugged into :attr:`repro.net.server.PromiseServer.gate`.  A
        fenced sender never acks again; a lagging one gets one
        immediate re-flush before the request is refused, so a single
        dropped ship does not bounce a healthy client.  With no
        followers registered the gate is open — the group has
        *degraded to a single copy* (every follower promoted or gone),
        which is weaker but strictly no worse than an unreplicated
        shard; :meth:`ReplicatedFleet.rejoin` restores redundancy.
        """
        if self.fenced is not None:
            return f"deposed primary ({self.fenced})"
        with self._lock:
            if not self._links:
                return None
            target = self._wal.last_lsn
            if any(link.acked_lsn >= target for link in self._links):
                return None
            if self.flush():
                return None
            return (
                f"replication lagging: no follower of {self.group} "
                f"holds lsn {target}"
            )

    def status(self) -> dict[str, object]:
        """Vitals for ping replies and the CLI."""
        with self._lock:
            return {
                "group": self.group,
                "epoch": self.epoch,
                "last_lsn": self._wal.last_lsn,
                "synced_lsn": self.synced_lsn(),
                "followers": {
                    link.name: link.acked_lsn for link in self._links
                },
                "fenced": self.fenced,
                "blocked": self.blocked,
            }


class ReplicationReceiver:
    """Apply a primary's shipped WAL records on a follower.

    Owns the follower's log file.  Registered under
    :data:`REPL_ENDPOINT` on the follower's server; promotion calls
    :meth:`promote`, after which every further ship is answered
    ``repl-fenced`` — the token on the replication stream is what
    rejects a deposed primary's late writes.
    """

    def __init__(
        self,
        group: str,
        wal_path: str,
        epoch: int = 0,
        fsync: bool = False,
        fault_scope: str | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.group = group
        self.epoch = epoch
        self._wal_path = wal_path
        self._fsync = fsync
        self._fault_scope = fault_scope
        self.wal = WriteAheadLog(
            wal_path, fsync=fsync, fault_scope=fault_scope
        )
        #: Set by :meth:`promote`: this node is (or is becoming) the
        #: primary and its log is no longer writable by any stream.
        self.promoted = False
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._reply_counter = 0

    @property
    def ships_applied(self) -> int:
        """Shipped records ingested (view over ``repl.ships_applied``)."""
        return int(self.metrics.value("repl.ships_applied"))

    @property
    def ships_fenced(self) -> int:
        """Stale-epoch ships bounced (view over ``repl.ships_fenced``)."""
        return int(self.metrics.value("repl.ships_fenced"))

    @property
    def applied_lsn(self) -> int:
        return self.wal.last_lsn

    def promote(self, epoch: int) -> str:
        """Seal the log for promotion; returns its path for the boot.

        Closes the file handle so the promoted deployment can reopen it
        through the ordinary recovery path, adopts the new epoch, and
        fences the stream: the old primary may still be alive behind a
        partition, and its next ship must bounce.
        """
        self.promoted = True
        self.epoch = epoch
        self.wal.close()
        return self._wal_path

    # ------------------------------------------------------------- handler

    def handle(self, message: Message) -> Message:
        """The ``_repl`` endpoint: ship / full_sync / status."""
        action = message.action
        if action is None or action.service != "replication":
            return self._fault(message, "repl-malformed: not a replication op")
        params = action.params
        if params.get("group") != self.group:
            return self._fault(
                message,
                f"repl-malformed: group {params.get('group')!r} "
                f"is not {self.group!r}",
            )
        if action.operation == "status":
            return self._ack(message)
        try:
            epoch = int(params.get("epoch", -1))  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return self._fault(message, "repl-malformed: bad epoch")
        if self.promoted or epoch < self.epoch:
            self.metrics.inc("repl.ships_fenced")
            return self._fault(
                message,
                f"{FENCED_FAULT_PREFIX} receiver of {self.group} at epoch "
                f"{self.epoch}"
                + (" (promoted)" if self.promoted else "")
                + f", stream at {epoch}",
            )
        self.epoch = max(self.epoch, epoch)
        records = params.get("records", [])
        if not isinstance(records, list):
            return self._fault(message, "repl-malformed: bad records")
        if action.operation == "full_sync":
            self._reset_log()
        elif action.operation != "ship":
            return self._fault(
                message, f"repl-malformed: unknown op {action.operation!r}"
            )
        for payload in records:
            if self.wal.ingest(_record_from_wire(payload)):
                self.metrics.inc("repl.ships_applied")
        return self._ack(message)

    def close(self) -> None:
        self.wal.close()

    # ----------------------------------------------------------- internals

    def _reset_log(self) -> None:
        """Discard the log (diverged rejoin) ahead of a full re-ingest."""
        self.wal.close()
        path = self.wal.path
        if path is not None and path.exists():
            path.unlink()
        self.wal = WriteAheadLog(
            self._wal_path, fsync=self._fsync, fault_scope=self._fault_scope
        )

    def _ack(self, message: Message) -> Message:
        self._reply_counter += 1
        return message.reply(
            message_id=f"repl-ack:{self.group}:{self._reply_counter}",
            action_outcome=ActionOutcomePayload(
                success=True,
                value={
                    "group": self.group,
                    "epoch": self.epoch,
                    "applied_lsn": self.wal.last_lsn,
                    "promoted": self.promoted,
                },
            ),
        )

    def _fault(self, message: Message, fault: str) -> Message:
        self._reply_counter += 1
        return message.reply(
            message_id=f"repl-fault:{self.group}:{self._reply_counter}",
            faults=(fault,),
        )
