"""Routing across replica groups: promotion moves addresses, not keys.

:class:`ReplicaRouting` pairs the consistent-hash
:class:`~repro.cluster.partition.PartitionMap` with a per-shard
``(address, epoch)`` table.  The split is the invariant that makes
failover invisible to placement: a promotion **only** swaps which
address serves a shard and bumps that shard's epoch — the ring, and
therefore ``shard_of`` for every key, is untouched.  Pools seeded on
shard 3 are still on shard 3 after its primary dies; what changed is
which process answers for shard 3 and which fencing token its replies
must carry.
"""

from __future__ import annotations

import threading

from ..cluster.partition import PartitionMap


class ReplicaRouting:
    """A partition ring plus the mutable primary table it routes to."""

    def __init__(
        self,
        ring: PartitionMap,
        addresses: list[tuple[str, int]],
    ) -> None:
        if len(addresses) != ring.shards:
            raise ValueError(
                f"{len(addresses)} addresses for a {ring.shards}-shard ring"
            )
        self.ring = ring
        self._lock = threading.Lock()
        self._addresses = list(addresses)
        self._epochs = [0] * ring.shards

    def shard_of(self, key: str) -> int:
        """Which shard owns ``key`` — delegates to the immutable ring."""
        return self.ring.shard_of(key)

    def primary(self, shard: int) -> tuple[str, int]:
        """The address currently serving ``shard``."""
        with self._lock:
            return self._addresses[shard]

    def epoch(self, shard: int) -> int:
        """The shard's configuration generation (bumped per promotion)."""
        with self._lock:
            return self._epochs[shard]

    def lookup(self, key: str) -> tuple[int, tuple[str, int], int]:
        """Resolve a key to ``(shard, primary address, epoch)``."""
        shard = self.ring.shard_of(key)
        with self._lock:
            return shard, self._addresses[shard], self._epochs[shard]

    def promote(self, shard: int, address: tuple[str, int]) -> int:
        """Record a failover: new primary address, epoch + 1.

        Returns the new epoch.  Never touches the ring — key placement
        is unchanged by promotion (property-tested in
        ``tests/replication/test_routing_properties.py``).
        """
        with self._lock:
            self._addresses[shard] = address
            self._epochs[shard] += 1
            return self._epochs[shard]

    def snapshot(self) -> list[tuple[tuple[str, int], int]]:
        """Consistent ``(address, epoch)`` view of every shard."""
        with self._lock:
            return list(zip(self._addresses, self._epochs))
