"""Primary/backup replication for promise-manager shards.

The paper's prototype (§8) interposes a *single* promise manager in
front of the resource manager; PR 3 sharded it, but a killed shard's
resources stayed unavailable until an operator called ``restart``.  This
package replicates each shard as a **replica group**:

* the primary streams its WAL records over the existing framed
  transport to one or more followers
  (:class:`~repro.replication.shipping.ReplicationSender` /
  :class:`~repro.replication.shipping.ReplicationReceiver`), which apply
  them into their own log files and stay hot;
* a per-group monotonic **epoch** fences split-brain: promotion bumps
  it, the token is stamped on the replication stream and on requests
  and replies, and a deposed primary's late writes and acks are
  rejected — by its followers, by the promoted server, and by the
  gateway's transport-generation fence;
* a heartbeat failure detector
  (:class:`~repro.replication.fleet.HeartbeatDetector`) notices a dead
  primary, promotes the most-caught-up follower
  (:meth:`~repro.replication.fleet.ReplicatedFleet.failover`), remaps
  gateway routing, resets the shard's circuit breaker and flushes
  pending compensations — a shard crash costs a few heartbeat
  intervals instead of manual intervention.
"""

from .routing import ReplicaRouting
from .shipping import (
    REPL_ENDPOINT,
    ReplicationReceiver,
    ReplicationSender,
)
from .fleet import (
    HeartbeatDetector,
    Replica,
    ReplicaGroup,
    ReplicatedFleet,
)

__all__ = [
    "REPL_ENDPOINT",
    "HeartbeatDetector",
    "Replica",
    "ReplicaGroup",
    "ReplicaRouting",
    "ReplicatedFleet",
    "ReplicationReceiver",
    "ReplicationSender",
]
