"""A fleet of replica groups with heartbeat-driven automatic failover.

:class:`ReplicatedFleet` is the replicated sibling of
:class:`~repro.cluster.fleet.ClusterFleet` and keeps its surface
(``start``/``stop``/``kill``/``restart``/``shard``/``gateway``/
``audit``/``live_promises``), so gateways, the chaos nemesis and the
benchmarks drive either interchangeably.  Each shard index is a
**replica group**: one primary deployment serving the application
endpoint plus *R* hot followers that hold nothing but a
:class:`~repro.replication.shipping.ReplicationReceiver` and the WAL it
keeps in lock-step with the primary's.

Failover is a local state machine, not a consensus protocol — the paper
(§8) targets a single administrative domain, and the safety burden is
carried by fencing rather than quorum:

* :meth:`failover` promotes the most-caught-up follower by booting a
  full deployment off the follower's WAL through the ordinary recovery
  path (the same code that handles a crash-restart, which is the point:
  a promoted follower *is* a recovered primary);
* the group epoch increments on promotion and is pushed to the
  remaining followers (via full re-sync), to the promoted server, and
  to every attached gateway — the deposed primary's stream, writes and
  late acks all bounce off that token;
* :class:`HeartbeatDetector` pings each group's primary on its
  ``_ping`` endpoint and calls :meth:`failover` after a configurable
  number of consecutive misses, so recovery time is a policy knob
  (``interval × miss_threshold``) rather than an operator's pager.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
from dataclasses import dataclass, field

from ..net.server import (
    NET_REPLY_JOURNAL_TABLE,
    PING_ENDPOINT,
    PromiseServer,
    ThreadedServer,
)
from ..net.transport import NetworkTransport
from ..obs.metrics import MetricsRegistry, wal_observer
from ..obs.trace import SpanRecorder
from ..protocol.errors import ProtocolError, RequestTimeout, TransportFailure
from ..protocol.messages import Message
from ..protocol.retry import RetryPolicy
from ..recovery import ReplyJournal
from ..resilience.breaker import CircuitBreaker
from ..cluster.fleet import AdmissionFactory, Provisioner
from ..cluster.gateway import ClusterGateway
from ..cluster.partition import PartitionMap
from ..faults.history import HistoryRecorder
from ..services.deployment import Deployment
from ..tools.doctor import Doctor, Finding
from .routing import ReplicaRouting
from .shipping import REPL_ENDPOINT, ReplicationReceiver, ReplicationSender


@dataclass
class Replica:
    """One process of a replica group (primary, follower, or deposed)."""

    index: int
    name: str
    #: Crash-injection scope, unique per process *incarnation* — a
    #: scoped schedule armed against a primary must keep freezing that
    #: corpse, never the follower promoted in its place.
    scope: str
    server: PromiseServer
    runner: ThreadedServer
    address: tuple[str, int]
    wal_path: str
    #: Follower half: applies the primary's shipped records.
    receiver: ReplicationReceiver | None = None
    #: Primary half: full application deployment plus its WAL shipper.
    deployment: Deployment | None = None
    sender: ReplicationSender | None = None

    @property
    def alive(self) -> bool:
        return self.runner is not None and self.runner._thread is not None

    def applied_lsn(self) -> int:
        if self.receiver is not None and not self.receiver.promoted:
            return self.receiver.applied_lsn
        if self.deployment is not None:
            return self.deployment.store.wal.last_lsn
        return 0


@dataclass
class ReplicaGroup:
    """One shard's replication state: who leads, at which epoch."""

    index: int
    epoch: int
    primary: Replica
    followers: list[Replica] = field(default_factory=list)
    #: Former primaries not yet rejoined as followers.  A deposed node
    #: may still be running (partition failover) — its server answers,
    #: but every layer fences it.
    deposed: list[Replica] = field(default_factory=list)


class ReplicatedFleet:
    """Boot N replica groups and fail them over automatically."""

    def __init__(
        self,
        shards: int,
        replicas: int = 1,
        endpoint: str = "shop",
        provision: Provisioner | None = None,
        wal_dir: str | None = None,
        fsync: bool = False,
        auto_checkpoint_every: int | None = None,
        host: str = "127.0.0.1",
        ring: PartitionMap | None = None,
        admission: AdmissionFactory | None = None,
        base_port: int | None = None,
        history: "HistoryRecorder | None" = None,
    ) -> None:
        if replicas < 1:
            raise ValueError(
                "a replica group needs at least one follower to promote; "
                "use ClusterFleet for unreplicated shards"
            )
        self.endpoint = endpoint
        self.ring = ring or PartitionMap(shards)
        if self.ring.shards != shards:
            raise ValueError(
                f"partition map covers {self.ring.shards} shards, "
                f"fleet has {shards}"
            )
        self._count = shards
        self._replicas = replicas
        self._provision = provision
        self._owned_dir: tempfile.TemporaryDirectory | None = None
        if wal_dir is None:
            self._owned_dir = tempfile.TemporaryDirectory(prefix="repl-fleet-")
            wal_dir = self._owned_dir.name
        self._wal_dir = wal_dir
        self._fsync = fsync
        self._auto_checkpoint_every = auto_checkpoint_every
        self._host = host
        self._admission = admission
        self._base_port = base_port
        #: Optional isolation auditor: each acting primary's WAL is
        #: attached as it takes office, so the recorded history follows
        #: the epoch fence (a deposed primary's appends go unheard).
        self._history = history
        self._groups: list[ReplicaGroup] = []
        self._gateways: list[ClusterGateway] = []
        #: Simulated partitions: shard index -> the Replica cut off.
        self._partitioned: dict[int, Replica] = {}
        #: Monotonic per-group incarnation counter feeding fault scopes.
        self._incarnations: list[int] = []
        self._lock = threading.RLock()
        self._started = False
        self.routing: ReplicaRouting | None = None
        self.failovers = 0

    # ----------------------------------------------------------- lifecycle

    def start(self) -> list[tuple[str, int]]:
        """Boot every replica group; returns the primaries' addresses."""
        if self._started:
            raise RuntimeError("fleet already started")
        self._started = True
        self._incarnations = [0] * self._count
        for index in range(self._count):
            self._groups.append(self._boot_group(index))
        self.routing = ReplicaRouting(self.ring, self.addresses())
        return self.addresses()

    def stop(self) -> None:
        """Stop every process of every group (primaries, followers,
        deposed) and close their stores and receivers."""
        for group in self._groups:
            for replica in (
                [group.primary] + group.followers + group.deposed
            ):
                self._teardown(replica)
        self._groups = []
        self._gateways = []
        self._partitioned = {}
        self._started = False
        if self._owned_dir is not None:
            self._owned_dir.cleanup()
            self._owned_dir = tempfile.TemporaryDirectory(
                prefix="repl-fleet-"
            )
            self._wal_dir = self._owned_dir.name

    def __enter__(self) -> "ReplicatedFleet":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def kill(self, index: int) -> None:
        """Crash the group's primary (listener down, store closed).

        The followers keep running — the whole point: the group's state
        survives on their disks, and the failure detector (or an
        explicit :meth:`failover`) promotes one.
        """
        with self._lock:
            primary = self._groups[index].primary
            if primary.alive:
                primary.runner.stop()
            if primary.deployment is not None:
                primary.deployment.close()
            if primary.sender is not None:
                primary.sender.close()

    def restart(self, index: int) -> tuple[str, int]:
        """ClusterFleet-compatible recovery: promote if the primary is
        down (or reboot it when no follower remains), then rejoin every
        deposed node as a fresh follower."""
        with self._lock:
            group = self._groups[index]
            if not group.primary.alive:
                if group.followers:
                    self.failover(index)
                else:
                    self._reboot_primary(group)
            self.rejoin(index)
            return group.primary.address

    # ------------------------------------------------------------ failover

    def epoch(self, index: int) -> int:
        with self._lock:
            return self._groups[index].epoch

    def primary_scope(self, index: int) -> str:
        """The crash-injection scope of the group's current primary."""
        with self._lock:
            return self._groups[index].primary.scope

    def is_partitioned(self, index: int) -> bool:
        """True while the *current* primary is behind a partition.

        Once failover promotes a follower the new primary is reachable,
        so the detector must resume treating pings as authoritative even
        though the old primary is still cut off (until :meth:`heal`).
        """
        with self._lock:
            replica = self._partitioned.get(index)
            return replica is not None and replica is self._groups[index].primary

    def partition(self, index: int) -> None:
        """Cut the primary off: its ships stop, so its gate closes.

        The primary process keeps running — the dangerous half of the
        scenario.  It will keep trying to serve whatever reaches it;
        epoch fencing and the gateway's generation fence are what keep
        those answers out of clients' hands after the promotion.
        """
        with self._lock:
            primary = self._groups[index].primary
            self._partitioned[index] = primary
            if primary.sender is not None:
                primary.sender.blocked = True

    def heal(self, index: int) -> None:
        """End a partition: unblock (no failover yet) or retire-and-
        rejoin the deposed primary (failover already happened)."""
        with self._lock:
            replica = self._partitioned.pop(index, None)
            if replica is None:
                return
            group = self._groups[index]
            if replica is group.primary:
                # Healed before the detector acted: replication resumes,
                # the backlog flushes at the next gate check.
                if replica.sender is not None:
                    replica.sender.blocked = False
                return
            # A successor rules; the old primary is a running zombie.
            self.rejoin(index)

    def failover(self, index: int) -> int:
        """Promote the most-caught-up follower; returns the new epoch.

        Safe to call redundantly: if the primary is alive and not
        partitioned (detector race, manual call) this is a no-op
        returning the current epoch.  Raises if no follower remains.
        """
        with self._lock:
            group = self._groups[index]
            old = group.primary
            if old.alive and self._partitioned.get(index) is not old:
                return group.epoch
            if not group.followers:
                raise RuntimeError(
                    f"group {index}: primary down and no follower to promote"
                )
            best = max(group.followers, key=lambda r: r.applied_lsn())
            new_epoch = group.epoch + 1

            # Seal the follower's log and fence its stream, then boot a
            # full deployment off that log through ordinary recovery.
            assert best.receiver is not None
            wal_path = best.receiver.promote(new_epoch)
            deployment = self._build_deployment(index, best.scope, wal_path)
            journal = None
            if deployment.store.durable:
                journal = ReplyJournal(
                    deployment.store, table=NET_REPLY_JOURNAL_TABLE
                )
                best.server.attach_journal(journal)
            if self._admission is not None:
                best.server.attach_admission(self._admission(index))

            # New replication stream at the new epoch over the remaining
            # followers; the full re-sync both heals any divergence and
            # pushes the epoch bump into their receivers.
            sender = ReplicationSender(
                group=self._group_name(index),
                epoch=new_epoch,
                wal=deployment.store.wal,
                sender_name=f"{self.endpoint}-s{index}",
                metrics=best.server.metrics,
            )
            for follower in group.followers:
                if follower is best:
                    continue
                sender.add_follower(follower.address, follower.name)
            sender.full_sync_all()
            deployment.store.wal.subscribe(wal_observer(best.server.metrics))
            deployment.store.wal.subscribe(sender.observe)
            if self._history is not None:
                self._history.attach(index, deployment.store.wal)

            best.deployment = deployment
            best.sender = sender
            best.receiver = None
            best.server.epoch = new_epoch
            best.server.gate = sender.gate
            best.server.ping_info = self._primary_ping_info(index, best)
            best.server.register(self.endpoint, deployment.endpoint.handle)

            group.followers.remove(best)
            group.deposed.append(old)
            group.primary = best
            group.epoch = new_epoch
            if old.sender is not None and old.sender.fenced is None:
                old.sender.fenced = f"superseded by epoch {new_epoch}"
            self.failovers += 1
            gateways = list(self._gateways)

        # Outside the lock: remap routing; flush_pending sends network
        # traffic and must not hold the fleet lock.
        if self.routing is not None:
            self.routing.promote(index, best.address)
        for gateway in gateways:
            gateway.remap(
                index,
                NetworkTransport(
                    best.address, timeout=5.0, retry=RetryPolicy.network()
                ),
                epoch=new_epoch,
            )
            gateway.flush_pending()
        return new_epoch

    def await_failover(
        self, index: int, beyond_epoch: int, timeout: float = 10.0
    ) -> bool:
        """Block until the group's epoch passes ``beyond_epoch``."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.epoch(index) > beyond_epoch:
                return True
            time.sleep(0.02)
        return self.epoch(index) > beyond_epoch

    def rejoin(self, index: int) -> int:
        """Re-admit every deposed node of the group as a fresh follower.

        Each gets a brand-new incarnation (new port, new fault scope)
        over its old WAL path; the primary full-syncs it, which rewrites
        whatever diverged suffix the corpse carried.  Returns how many
        rejoined.
        """
        with self._lock:
            group = self._groups[index]
            primary = group.primary
            count = 0
            while group.deposed:
                old = group.deposed.pop()
                self._teardown(old)
                if self._partitioned.get(index) is old:
                    del self._partitioned[index]
                follower = self._boot_follower(
                    index, group.epoch, wal_path=old.wal_path
                )
                group.followers.append(follower)
                if primary.sender is not None:
                    link = primary.sender.add_follower(
                        follower.address, follower.name
                    )
                    primary.sender.full_sync(link)
                count += 1
            return count

    # ------------------------------------------------------------- access

    def addresses(self) -> list[tuple[str, int]]:
        """The primaries' bound addresses, in shard order."""
        with self._lock:
            return [group.primary.address for group in self._groups]

    def shard(self, index: int) -> Replica:
        """The group's current primary (ClusterFleet-compatible view)."""
        with self._lock:
            return self._groups[index].primary

    def group(self, index: int) -> ReplicaGroup:
        return self._groups[index]

    def __len__(self) -> int:
        return self._count

    def gateway(
        self,
        timeout: float = 5.0,
        retry: RetryPolicy | None = None,
        name: str = "cluster",
        breaker_threshold: int | None = None,
        breaker_reset: float = 5.0,
        pending_limit: int | None = 256,
        pending_max_age: float | None = None,
        tracer: SpanRecorder | None = None,
    ) -> ClusterGateway:
        """A routing gateway over the current primaries.

        The fleet keeps a reference: :meth:`failover` remaps the shard's
        transport, pushes the new epoch for request stamping, resets the
        breaker, and flushes pending compensations on every gateway
        built here.
        """
        with self._lock:
            transports = [
                NetworkTransport(
                    address,
                    timeout=timeout,
                    retry=retry or RetryPolicy.network(),
                )
                for address in self.addresses()
            ]
            breakers = None
            if breaker_threshold is not None:
                breakers = [
                    CircuitBreaker(
                        endpoint=f"{self.endpoint}-s{index}",
                        failure_threshold=breaker_threshold,
                        reset_timeout=breaker_reset,
                    )
                    for index in range(self._count)
                ]
            gateway = ClusterGateway(
                transports,
                ring=self.ring,
                name=name,
                breakers=breakers,
                pending_limit=pending_limit,
                pending_max_age=pending_max_age,
                tracer=tracer,
            )
            for index, group in enumerate(self._groups):
                gateway.set_epoch(index, group.epoch)
            self._gateways.append(gateway)
            return gateway

    def attach(self, gateway: ClusterGateway) -> None:
        """Adopt an externally-built gateway for failover maintenance.

        Same contract as gateways built by :meth:`gateway`: on every
        :meth:`failover` the fleet remaps the shard's transport, pushes
        the new epoch, resets the breaker and flushes pending
        compensations.  Current epochs are pushed immediately.
        """
        with self._lock:
            for index, group in enumerate(self._groups):
                gateway.set_epoch(index, group.epoch)
            self._gateways.append(gateway)

    def audit(self) -> dict[int, list[Finding]]:
        """Consistency doctor over every live primary."""
        findings: dict[int, list[Finding]] = {}
        with self._lock:
            for group in self._groups:
                primary = group.primary
                if primary.alive and primary.deployment is not None:
                    findings[group.index] = Doctor(
                        primary.deployment.manager
                    ).check()
        return findings

    def live_promises(self) -> dict[int, int]:
        """Active promises per live primary (orphan hunting)."""
        counts: dict[int, int] = {}
        with self._lock:
            for group in self._groups:
                primary = group.primary
                if primary.alive and primary.deployment is not None:
                    counts[group.index] = len(
                        primary.deployment.manager.active_promises()
                    )
        return counts

    def replication_status(self, index: int) -> dict[str, object]:
        """The group's stream vitals (CLI / tutorial surface)."""
        with self._lock:
            group = self._groups[index]
            sender = group.primary.sender
            return {
                "epoch": group.epoch,
                "primary": group.primary.name,
                "followers": [f.name for f in group.followers],
                "deposed": [d.name for d in group.deposed],
                "stream": sender.status() if sender is not None else None,
            }

    # ----------------------------------------------------------- internals

    def _group_name(self, index: int) -> str:
        return f"{self.endpoint}-g{index}"

    def _next_scope(self, index: int) -> str:
        """A fault scope no prior incarnation of this group ever used."""
        incarnation = self._incarnations[index]
        self._incarnations[index] += 1
        if incarnation == 0:
            # The first primary keeps the ClusterFleet-compatible scope
            # so existing scoped schedules ("shard-3") target it.
            return f"shard-{index}"
        return f"shard-{index}i{incarnation}"

    def _primary_wal_path(self, index: int) -> str:
        return os.path.join(self._wal_dir, f"shard-{index}.wal")

    def _follower_wal_path(self, index: int, incarnation: int) -> str:
        return os.path.join(
            self._wal_dir, f"shard-{index}-r{incarnation}.wal"
        )

    def _boot_group(self, index: int) -> ReplicaGroup:
        port = 0 if self._base_port is None else self._base_port + index
        primary = self._boot_primary(
            index, epoch=0, wal_path=self._primary_wal_path(index), port=port
        )
        group = ReplicaGroup(index=index, epoch=0, primary=primary)
        sender = primary.sender
        assert sender is not None
        for _ in range(self._replicas):
            follower = self._boot_follower(index, epoch=0)
            group.followers.append(follower)
            sender.add_follower(follower.address, follower.name)
        # The provisioning records landed before any follower existed;
        # the full sync hands them over, and delivery stays idempotent
        # if a subscribed flush raced it (the receiver skips by LSN).
        sender.full_sync_all()
        return group

    def _boot_primary(
        self, index: int, epoch: int, wal_path: str, port: int
    ) -> Replica:
        scope = self._next_scope(index)
        deployment = self._build_deployment(index, scope, wal_path)
        journal = None
        if deployment.store.durable:
            journal = ReplyJournal(
                deployment.store, table=NET_REPLY_JOURNAL_TABLE
            )
        admission = (
            self._admission(index) if self._admission is not None else None
        )
        server = PromiseServer(
            host=self._host, port=port, reply_journal=journal,
            admission=admission,
            metrics=admission.metrics if admission is not None else None,
        )
        server.register(self.endpoint, deployment.endpoint.handle)
        sender = ReplicationSender(
            group=self._group_name(index),
            epoch=epoch,
            wal=deployment.store.wal,
            sender_name=f"{self.endpoint}-s{index}",
            metrics=server.metrics,
        )
        deployment.store.wal.subscribe(wal_observer(server.metrics))
        deployment.store.wal.subscribe(sender.observe)
        if self._history is not None:
            self._history.attach(index, deployment.store.wal)
        server.epoch = epoch
        server.gate = sender.gate
        runner = ThreadedServer(server)
        address = runner.start()
        replica = Replica(
            index=index,
            name=f"{self.endpoint}-s{index}:{scope}",
            scope=scope,
            server=server,
            runner=runner,
            address=address,
            wal_path=wal_path,
            deployment=deployment,
            sender=sender,
        )
        server.ping_info = self._primary_ping_info(index, replica)
        return replica

    def _reboot_primary(self, group: ReplicaGroup) -> None:
        """Last-resort restart of a dead primary with no successor.

        Same epoch (nothing was promoted, so nothing needs fencing),
        same WAL, same port — this is exactly ``ClusterFleet.restart``,
        and the breaker reset on attached gateways matches it.
        """
        old = group.primary
        index = group.index
        replacement = self._boot_primary(
            index, epoch=group.epoch, wal_path=old.wal_path,
            port=old.address[1],
        )
        group.primary = replacement
        sender = replacement.sender
        assert sender is not None
        for follower in group.followers:
            sender.add_follower(follower.address, follower.name)
        sender.full_sync_all()
        for gateway in self._gateways:
            gateway.reset_breaker(index)

    def _boot_follower(
        self, index: int, epoch: int, wal_path: str | None = None
    ) -> Replica:
        incarnation = self._incarnations[index]
        scope = self._next_scope(index)
        if wal_path is None:
            wal_path = self._follower_wal_path(index, incarnation)
            # A fresh follower must start empty: full_sync rebuilds the
            # file, but a stale leftover would pollute the interval
            # between boot and first sync.
            if os.path.exists(wal_path):
                os.unlink(wal_path)
        server = PromiseServer(host=self._host, port=0)
        receiver = ReplicationReceiver(
            group=self._group_name(index),
            wal_path=wal_path,
            epoch=epoch,
            fsync=self._fsync,
            fault_scope=scope,
            metrics=server.metrics,
        )
        server.register(REPL_ENDPOINT, receiver.handle)
        server.epoch = epoch
        runner = ThreadedServer(server)
        address = runner.start()
        replica = Replica(
            index=index,
            name=f"{self.endpoint}-s{index}f{incarnation}",
            scope=scope,
            server=server,
            runner=runner,
            address=address,
            wal_path=wal_path,
            receiver=receiver,
        )
        server.ping_info = self._follower_ping_info(index, replica)
        return replica

    def _build_deployment(
        self, index: int, scope: str, wal_path: str
    ) -> Deployment:
        deployment = Deployment(
            name=self.endpoint,
            manager_name=f"{self.endpoint}-s{index}",
            fault_scope=scope,
            counter_offers=True,
            wal_path=wal_path,
            fsync=self._fsync,
            auto_checkpoint_every=self._auto_checkpoint_every,
        )
        if self._provision is not None:
            self._provision(deployment, index, self.ring)
        if deployment.recovered:
            deployment.recover()
        return deployment

    def _primary_ping_info(self, index: int, replica: Replica):
        def info() -> dict[str, object]:
            return {
                "role": "primary",
                "group": self._group_name(index),
                "epoch": self._groups[index].epoch
                if index < len(self._groups)
                else replica.server.epoch,
                "applied_lsn": replica.applied_lsn(),
            }

        return info

    def _follower_ping_info(self, index: int, replica: Replica):
        def info() -> dict[str, object]:
            receiver = replica.receiver
            return {
                "role": "primary" if receiver is None else "follower",
                "group": self._group_name(index),
                "epoch": receiver.epoch
                if receiver is not None
                else replica.server.epoch,
                "applied_lsn": replica.applied_lsn(),
            }

        return info

    def _teardown(self, replica: Replica) -> None:
        if replica.alive:
            replica.runner.stop()
        if replica.deployment is not None:
            replica.deployment.close()
        if replica.sender is not None:
            replica.sender.close()
        if replica.receiver is not None:
            replica.receiver.close()


class HeartbeatDetector:
    """Ping every group's primary; promote after consecutive misses.

    Mean time to repair is bounded by ``interval × (miss_threshold + 1)``
    plus the promotion itself (recovery replay of the follower's log) —
    :mod:`benchmarks.bench_f6_failover` measures exactly this curve.  A
    simulated partition counts as a miss even though the TCP path to the
    primary still works: the fleet knows the primary can't replicate, so
    its acks are worthless and waiting for a timeout would only stretch
    the outage.
    """

    def __init__(
        self,
        fleet: ReplicatedFleet,
        interval: float = 0.1,
        miss_threshold: int = 3,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if miss_threshold < 1:
            raise ValueError("miss_threshold must be >= 1")
        self.fleet = fleet
        self.interval = interval
        self.miss_threshold = miss_threshold
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._misses = [0] * len(fleet)
        self._counter = 0
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    @property
    def pings(self) -> int:
        """Probes sent (view over ``heartbeat.pings``)."""
        return int(self.metrics.value("heartbeat.pings"))

    @property
    def missed(self) -> int:
        """Probes that got no answer (view over ``heartbeat.missed``)."""
        return int(self.metrics.value("heartbeat.missed"))

    @property
    def failovers(self) -> int:
        """Promotions this detector triggered (``heartbeat.failovers``)."""
        return int(self.metrics.value("heartbeat.failovers"))

    def start(self) -> "HeartbeatDetector":
        if self._thread is not None:
            raise RuntimeError("detector already running")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="heartbeat-detector", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "HeartbeatDetector":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            for index in range(len(self.fleet)):
                if self._stop.is_set():
                    return
                self._probe(index)

    def _probe(self, index: int) -> None:
        self.metrics.inc("heartbeat.pings")
        if self.fleet.is_partitioned(index):
            alive = False
        else:
            alive = self._ping(self.fleet.shard(index).address)
        if alive:
            self._misses[index] = 0
            return
        self.metrics.inc("heartbeat.missed")
        self._misses[index] += 1
        if self._misses[index] < self.miss_threshold:
            return
        self._misses[index] = 0
        try:
            self.fleet.failover(index)
            self.metrics.inc("heartbeat.failovers")
        except Exception:
            # No follower yet (all deposed, rejoin pending) or a race
            # with a manual failover; keep probing, never die.
            pass

    def _ping(self, address: tuple[str, int]) -> bool:
        self._counter += 1
        transport = NetworkTransport(
            address,
            timeout=max(0.25, self.interval),
            retry=RetryPolicy.none(),
        )
        message = Message(
            message_id=f"hb:{self._counter}",
            sender="heartbeat-detector",
            recipient=PING_ENDPOINT,
        )
        try:
            reply = transport.send(message)
        except (TransportFailure, RequestTimeout, ProtocolError):
            return False
        finally:
            closer = getattr(transport, "close", None)
            if closer is not None:
                closer()
        return not reply.faults
