"""Durable §6 reply journal.

"To make this work, the promise manager needs to treat the processing of
each message as an atomic unit" (§4) — including the *reply*.  The
in-memory :class:`~repro.protocol.correlation.ReplyCache` gives
at-most-once semantics while a process lives; this journal gives them
*across restarts* by keeping replies in a table of the same transactional
store that holds the promise table.  A reply recorded with
:meth:`ReplyJournal.record` inside the grant/action transaction commits
or vanishes together with the effect it describes, which is exactly the
atomicity a redelivered request needs: either the effect happened and
the original reply is replayable, or neither survived and re-execution
is safe.

Entries carry monotonically increasing sequence numbers; when the
journal exceeds its capacity it evicts the oldest half in one sweep, so
the amortised cost per record stays O(1) while a retry storm still finds
every recent reply.
"""

from __future__ import annotations

from ..storage.transactions import Transaction

REPLY_JOURNAL_TABLE = "reply_journal"

_META_KEY = "__meta__"


class ReplyJournal:
    """Bounded, durable map of dedup key -> reply payload."""

    def __init__(
        self,
        store,
        table: str = REPLY_JOURNAL_TABLE,
        capacity: int = 4096,
    ) -> None:
        if capacity < 2:
            raise ValueError("journal capacity must be at least 2")
        self._store = store
        self._table = table
        self._capacity = capacity
        store.create_table(table)

    @property
    def table(self) -> str:
        """Name of the backing store table."""
        return self._table

    # -------------------------------------------------------------- in-txn

    def get(self, txn: Transaction, key: str) -> object | None:
        """The journaled reply payload for ``key``, or None if unseen."""
        entry = txn.get_or_none(self._table, key)
        if isinstance(entry, dict):
            return entry.get("payload")
        return None

    def record(self, txn: Transaction, key: str, payload: object) -> None:
        """Journal ``payload`` under ``key`` inside ``txn``.

        Calling this in the same transaction as the effect it answers is
        what makes grant-and-reply (or action-and-reply) atomic across a
        crash.  Re-recording an existing key overwrites it.
        """
        meta = txn.get_or_none(self._table, _META_KEY)
        if not isinstance(meta, dict):
            meta = {"next_seq": 1, "count": 0}
        seq = int(meta["next_seq"])  # type: ignore[arg-type]
        fresh = txn.get_or_none(self._table, key) is None
        txn.put(self._table, key, {"seq": seq, "payload": payload})
        count = int(meta["count"]) + (1 if fresh else 0)  # type: ignore[arg-type]
        if count > self._capacity:
            count -= self._evict(txn, seq)
        txn.put(self._table, _META_KEY, {"next_seq": seq + 1, "count": count})

    def keys(self, txn: Transaction) -> list[str]:
        """All journaled dedup keys (recovery uses this to bump id pools)."""
        return [key for key, __ in txn.scan(self._table) if key != _META_KEY]

    def entries(self, txn: Transaction) -> list[tuple[str, object]]:
        """``(key, payload)`` pairs, oldest first (server cache warm-up)."""
        rows = [
            (key, entry)
            for key, entry in txn.scan(self._table)
            if key != _META_KEY and isinstance(entry, dict)
        ]
        rows.sort(key=lambda item: int(item[1].get("seq", 0)))  # type: ignore[union-attr]
        return [(key, entry.get("payload")) for key, entry in rows]  # type: ignore[union-attr]

    def count(self, txn: Transaction) -> int:
        """Number of journaled replies."""
        meta = txn.get_or_none(self._table, _META_KEY)
        if isinstance(meta, dict):
            return int(meta.get("count", 0))  # type: ignore[arg-type]
        return 0

    # ------------------------------------------------------- own-transaction

    def get_alone(self, key: str) -> object | None:
        """Like :meth:`get` in a transaction of its own."""
        with self._store.begin() as txn:
            return self.get(txn, key)

    def entries_alone(self) -> list[tuple[str, object]]:
        """Like :meth:`entries` in a transaction of its own."""
        with self._store.begin() as txn:
            return self.entries(txn)

    def record_alone(self, key: str, payload: object) -> None:
        """Like :meth:`record` in a transaction of its own.

        Used for outcomes whose own transaction *aborted* (rejections,
        failed actions): there is no effect to be atomic with, so a
        crash between the abort and this record merely lets the retry
        re-evaluate — which is safe, because nothing happened.
        """
        with self._store.begin() as txn:
            self.record(txn, key, payload)

    # ------------------------------------------------------------ internals

    def _evict(self, txn: Transaction, next_seq: int) -> int:
        """Drop the oldest half of the journal; returns entries removed."""
        horizon = next_seq - self._capacity // 2
        victims = [
            key
            for key, entry in txn.scan(self._table)
            if key != _META_KEY
            and isinstance(entry, dict)
            and int(entry.get("seq", 0)) < horizon  # type: ignore[arg-type]
        ]
        for key in victims:
            txn.delete(self._table, key)
        return len(victims)
