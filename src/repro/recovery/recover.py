"""The restart path: rebuild a promise manager's runtime state from disk.

:class:`~repro.storage.store.Store` already replays the WAL into table
state when opened on an existing log; what it cannot rebuild is the
runtime the promise manager keeps *around* the store — the logical
clock, the id pools, the expiry sweep that should have run while the
process was down.  :func:`recover` restores all of it and then audits
the result with :class:`~repro.tools.doctor.Doctor`, returning a
:class:`RecoveryReport` a server can log (and a test can assert on).

Call it after wiring strategies: the expiry sweep dispatches each
promise's ``on_expire`` through the strategy registry, so escrowed
stock is only handed back if the owning strategy is registered again.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping

from ..core.manager import CLOCK_KEY, MANAGER_META_TABLE, PromiseManager
from ..core.promise import Promise
from ..core.table import PROMISES_TABLE
from ..obs.metrics import MetricsRegistry
from ..tools.doctor import Doctor, Finding


@dataclass(frozen=True)
class RecoveryReport:
    """What one restart found and did."""

    wal_path: str | None
    wal_records: int
    promises_total: int
    promises_active: int
    expired_on_recovery: tuple[str, ...]
    journal_entries: int
    clock_now: int
    repaired: tuple[Finding, ...]
    findings: tuple[Finding, ...]
    notes: tuple[str, ...] = ()
    elapsed_s: float = field(default=0.0, compare=False)
    #: Metrics-registry snapshot taken right after recovery, when the
    #: caller attached one — the observability section of the report.
    metrics: Mapping[str, object] | None = field(default=None, compare=False)

    @property
    def healthy(self) -> bool:
        """True when the post-recovery audit found nothing wrong."""
        return not self.findings

    def summary(self) -> str:
        """One log line describing the recovery."""
        status = "healthy" if self.healthy else f"{len(self.findings)} findings"
        line = (
            f"recovered {self.promises_active}/{self.promises_total} live "
            f"promises from {self.wal_records} WAL records "
            f"(clock={self.clock_now}, expired-while-down="
            f"{len(self.expired_on_recovery)}, journal={self.journal_entries} "
            f"replies, {status}, {self.elapsed_s * 1000:.1f} ms)"
        )
        if self.metrics is not None:
            counters = self.metrics.get("counters", {})
            if isinstance(counters, Mapping):
                line += f" [metrics: {len(counters)} counters]"
        return line

    def metrics_section(self) -> str:
        """Multi-line observability appendix (empty without a registry)."""
        if self.metrics is None:
            return ""
        lines = ["metrics at recovery:"]
        counters = self.metrics.get("counters", {})
        if isinstance(counters, Mapping):
            for name in sorted(counters):
                lines.append(f"  {name} = {counters[name]}")
        gauges = self.metrics.get("gauges", {})
        if isinstance(gauges, Mapping):
            for name in sorted(gauges):
                lines.append(f"  {name} = {gauges[name]}")
        return "\n".join(lines)


def recover(
    manager: PromiseManager,
    *,
    repair: bool = True,
    registry: MetricsRegistry | None = None,
) -> RecoveryReport:
    """Restore ``manager``'s runtime state after a restart.

    Steps, in order:

    1. restore the logical clock to the persisted tick (floored by the
       newest ``granted_at`` on record, in case the clock row lagged);
    2. advance the promise/request id pools past every id on record, so
       new grants never collide with recovered rows;
    3. sweep promises whose ``expires_at`` passed while the manager was
       down — they are marked EXPIRED and their ``EXPIRED`` events fire
       exactly once, here;
    4. audit with the doctor, first repairing mechanically safe drift
       when ``repair`` is set.
    """
    start = time.perf_counter()
    store = manager.store
    wal = store.wal

    stored_tick = 0
    newest_grant = 0
    promises_total = 0
    journal_entries = 0
    with store.begin() as txn:
        clock_row = txn.get_or_none(MANAGER_META_TABLE, CLOCK_KEY)
        if isinstance(clock_row, Mapping):
            stored_tick = int(clock_row.get("now", 0))  # type: ignore[arg-type]
        for key, payload in txn.scan(PROMISES_TABLE):
            promises_total += 1
            manager.observe_issued_id(key)
            try:
                promise = Promise.from_dict(payload)  # type: ignore[arg-type]
            except Exception:  # noqa: BLE001 - doctor reports malformed rows
                continue
            newest_grant = max(newest_grant, promise.granted_at)
        for key in manager.journal.keys(txn):
            manager.observe_issued_id(key)
        journal_entries = manager.journal.count(txn)

    manager.clock.advance_to(max(stored_tick, newest_grant))
    expired = manager.expire_due()

    doctor = Doctor(manager, registry=registry)
    repaired = tuple(doctor.repair()) if repair else ()
    findings = tuple(doctor.check())
    active = len(manager.active_promises())
    if registry is not None:
        registry.inc("recovery.runs")
        registry.inc("recovery.expired_on_recovery", len(expired))

    return RecoveryReport(
        wal_path=str(wal.path) if wal.path is not None else None,
        wal_records=len(wal),
        promises_total=promises_total,
        promises_active=active,
        expired_on_recovery=tuple(expired),
        journal_entries=journal_entries,
        clock_now=manager.clock.now,
        repaired=repaired,
        findings=findings,
        notes=tuple(wal.recovery_notes),
        elapsed_s=time.perf_counter() - start,
        metrics=registry.snapshot() if registry is not None else None,
    )
