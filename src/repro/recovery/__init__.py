"""Crash recovery for promise managers (paper §4's guarantees, durably).

Section 4 requires granting-and-replying, and acting-while-updating
promise state, to be *atomic*; §8's prototype keeps promises in a
commercial DBMS precisely so those guarantees survive a crash.  This
package is the reproduction's equivalent over the embedded store's
write-ahead log:

* :class:`~repro.recovery.journal.ReplyJournal` — the §6 reply-dedup
  cache as a *table in the transactional store*, written in the same
  transaction as the grant or action it answers, so a request
  redelivered after a crash gets the original reply instead of a second
  execution;
* :func:`~repro.recovery.recover.recover` — the restart path: replay
  the WAL (done by :class:`~repro.storage.store.Store`), restore the
  logical clock and id counters, sweep promises that expired while the
  manager was down, and audit the result with
  :class:`~repro.tools.doctor.Doctor`.
"""

from .journal import REPLY_JOURNAL_TABLE, ReplyJournal
from .recover import CLOCK_KEY, MANAGER_META_TABLE, RecoveryReport, recover

__all__ = [
    "CLOCK_KEY",
    "MANAGER_META_TABLE",
    "REPLY_JOURNAL_TABLE",
    "RecoveryReport",
    "ReplyJournal",
    "recover",
]
