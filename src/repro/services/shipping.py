"""The shipping service (paper, §7 second example, §5 delegation).

"Our merchant offers 'next day' shipping to its customers for a fixed
additional cost on all orders.  The order process asks the promise manager
for the shipping component for a promise of next day delivery, with the
predicate making no assumptions about how this promise will be implemented
... The shipping promise manager could implement the promise by obtaining
soft-locks on warehouse and shipping capacity but other implementations
are possible." (§7)

Shipping capacity is modelled as one anonymous pool per dispatch day
(``ship:<day>``); a next-day-delivery promise is ``quantity('ship:D+1') >=
parcels``.  The merchant deployment delegates its shipping resources to
this service's promise manager (experiment E8), so the client's single
promise request transparently spans two trust domains.
"""

from __future__ import annotations

import itertools

from ..core.manager import ActionContext, ActionResult
from ..resources.manager import InsufficientResources
from ..storage.store import Store
from .base import ApplicationService

SHIPMENTS_TABLE = "shipments"


def capacity_pool(day: int) -> str:
    """Pool id of shipping capacity on logical day ``day``."""
    return f"ship:day-{day}"


class ShippingService(ApplicationService):
    """Parcel scheduling over per-day capacity pools."""

    name = "shipping"

    def __init__(self) -> None:
        self._shipment_ids = itertools.count(1)

    def setup(self, store: Store) -> None:
        """Create the shipments table."""
        store.create_table(SHIPMENTS_TABLE)

    # ----------------------------------------------------------- operations

    def op_schedule(
        self,
        ctx: ActionContext,
        order_id: str,
        day: int,
        parcels: int = 1,
    ) -> ActionResult:
        """Book a shipment; capacity comes from the released promise.

        The choice of carrier/capacity unit "could be deferred until
        shipping is required in order to reduce costs and optimise
        utilisation" (§7) — with the escrow strategy, the units were set
        aside at promise time; with satisfiability, they are chosen here.
        """
        shipment_id = f"shp-{next(self._shipment_ids)}"
        ctx.txn.insert(
            SHIPMENTS_TABLE,
            shipment_id,
            {
                "shipment_id": shipment_id,
                "order_id": order_id,
                "day": int(day),
                "parcels": int(parcels),
                "promises": list(ctx.environment.releases()),
                "at": ctx.now,
            },
        )
        return ActionResult.ok(shipment_id)

    def op_schedule_unprotected(
        self,
        ctx: ActionContext,
        order_id: str,
        day: int,
        parcels: int = 1,
    ) -> ActionResult:
        """Book a shipment by draining capacity directly (no promise)."""
        try:
            ctx.resources.remove_stock(ctx.txn, capacity_pool(int(day)), int(parcels))
        except InsufficientResources as exc:
            return ActionResult.failed(str(exc))
        shipment_id = f"shp-{next(self._shipment_ids)}"
        ctx.txn.insert(
            SHIPMENTS_TABLE,
            shipment_id,
            {
                "shipment_id": shipment_id,
                "order_id": order_id,
                "day": int(day),
                "parcels": int(parcels),
                "promises": [],
                "at": ctx.now,
            },
        )
        return ActionResult.ok(shipment_id)

    def op_capacity(self, ctx: ActionContext, day: int) -> ActionResult:
        """Report one day's available/allocated capacity."""
        pool = ctx.resources.pool(ctx.txn, capacity_pool(int(day)))
        return ActionResult.ok(
            {"available": pool.available, "allocated": pool.allocated}
        )

    # ------------------------------------------------------------ seeding

    def seed_capacity(
        self, txn, resources, days: int, per_day: int
    ) -> None:
        """Create capacity pools for logical days ``0..days-1``."""
        for day in range(days):
            resources.create_pool(txn, capacity_pool(day), per_day, unit="parcel")
