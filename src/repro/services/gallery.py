"""The art-gallery service (paper, §4, second atomicity requirement).

"Suppose an art gallery service has promised a client that a particular
painting will be available, and the client then goes ahead and buys the
painting.  When the purchase occurs, the gallery service is released from
the promise ...; however if the purchase fails for some reason (perhaps no
shipper is available that day) then the promise should remain in force."

Paintings are *named* instances (§3.2 — unique, not interchangeable, like
used cars).  The purchase operation can be told to fail (``shipper_available
= False``) so tests and experiment E6 can verify that a failed
action+release leaves the promise intact.
"""

from __future__ import annotations

import itertools

from ..core.manager import ActionContext, ActionResult
from ..resources.schema import CollectionSchema, PropertyDef, PropertyType
from ..storage.store import Store
from .base import ApplicationService

SALES_TABLE = "gallery_sales"


def gallery_schema(collection_id: str = "paintings") -> CollectionSchema:
    """Property schema for the gallery's catalogue."""
    return CollectionSchema(
        collection_id,
        (
            PropertyDef("artist", PropertyType.STRING),
            PropertyDef("year", PropertyType.INT),
            PropertyDef("price", PropertyType.INT),
        ),
    )


class GalleryService(ApplicationService):
    """Sales of unique named artworks."""

    name = "gallery"

    def __init__(self, collection_id: str = "paintings") -> None:
        self.collection_id = collection_id
        self._sale_ids = itertools.count(1)

    def setup(self, store: Store) -> None:
        """Create the sales table."""
        store.create_table(SALES_TABLE)

    # ----------------------------------------------------------- operations

    def op_purchase(
        self,
        ctx: ActionContext,
        buyer: str,
        painting: str,
        shipper_available: bool = True,
    ) -> ActionResult:
        """Buy a painting (promise released atomically via environment).

        ``shipper_available=False`` reproduces the §4 failure: the
        purchase fails, the enclosing transaction rolls back, and the
        availability promise remains in force.
        """
        if not shipper_available:
            return ActionResult.failed("no shipper is available that day")
        sale_id = f"sale-{next(self._sale_ids)}"
        ctx.txn.insert(
            SALES_TABLE,
            sale_id,
            {
                "sale_id": sale_id,
                "buyer": buyer,
                "painting": painting,
                "promises": list(ctx.environment.releases()),
                "at": ctx.now,
            },
        )
        return ActionResult.ok(sale_id)

    def op_catalogue(self, ctx: ActionContext) -> ActionResult:
        """List the catalogue with tag states."""
        return ActionResult.ok(
            {
                record.instance_id: record.status.value
                for record in ctx.resources.instances_in(
                    ctx.txn, self.collection_id
                )
            }
        )

    # ------------------------------------------------------------ seeding

    def seed_catalogue(
        self, txn, resources, paintings: dict[str, dict[str, object]]
    ) -> None:
        """Register the collection and add the catalogue."""
        if not resources.collection_exists(txn, self.collection_id):
            resources.define_collection(
                txn, gallery_schema(self.collection_id)
            )
        for painting_id, properties in paintings.items():
            resources.add_instance(
                txn, painting_id, self.collection_id, dict(properties)
            )
