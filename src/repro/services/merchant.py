"""The merchant ordering service (paper, §1, §2, §7 and Figure 1).

The running example throughout the paper: an order-handling process checks
stock, obtains a promise that the goods "will not be sold to anyone else
for the duration of the order handling process", organises payment and
shipping, and finally purchases the stock atomically with releasing the
promise.  Without promises, "payment arrives for an accepted order when
there is insufficient stock on hand" is a normal-path case the programmer
must code for (§1) — the benchmarks measure exactly that difference.

Stock lives in anonymous pools (§3.1), one per product.  Orders are
business records in the ``orders`` table.
"""

from __future__ import annotations

import itertools

from ..core.manager import ActionContext, ActionResult
from ..resources.manager import InsufficientResources
from ..storage.store import Store
from .base import ApplicationService

ORDERS_TABLE = "merchant_orders"


class MerchantService(ApplicationService):
    """Order handling over anonymous product stock."""

    name = "merchant"

    def __init__(self) -> None:
        self._order_ids = itertools.count(1)

    def setup(self, store: Store) -> None:
        """Create the orders table."""
        store.create_table(ORDERS_TABLE)

    # ----------------------------------------------------------- operations

    def op_place_order(
        self,
        ctx: ActionContext,
        customer: str,
        product: str,
        quantity: int,
    ) -> ActionResult:
        """Open an order record (no stock is touched yet).

        In the Figure-1 flow the client calls this after its stock promise
        was granted; the promise — not this operation — is what guarantees
        the goods stay available while payment and shipping are arranged.
        """
        order_id = f"ord-{next(self._order_ids)}"
        ctx.txn.insert(
            ORDERS_TABLE,
            order_id,
            {
                "order_id": order_id,
                "customer": customer,
                "product": product,
                "quantity": int(quantity),
                "status": "open",
                "paid": False,
            },
        )
        return ActionResult.ok(order_id)

    def op_pay(self, ctx: ActionContext, order_id: str) -> ActionResult:
        """Record payment for an open order."""
        order = ctx.txn.get_or_none(ORDERS_TABLE, order_id)
        if order is None:
            return ActionResult.failed(f"unknown order {order_id!r}")
        if order["status"] != "open":  # type: ignore[index]
            return ActionResult.failed(
                f"order {order_id!r} is {order['status']!r}"  # type: ignore[index]
            )
        order["paid"] = True  # type: ignore[index]
        ctx.txn.put(ORDERS_TABLE, order_id, order)
        return ActionResult.ok(order_id)

    def op_complete_order(self, ctx: ActionContext, order_id: str) -> ActionResult:
        """Close a paid order.

        Clients send this with the stock promise in the environment,
        release-on-success — the promised units are consumed atomically
        with the completion (Figure 1's final step).
        """
        order = ctx.txn.get_or_none(ORDERS_TABLE, order_id)
        if order is None:
            return ActionResult.failed(f"unknown order {order_id!r}")
        if not order.get("paid"):  # type: ignore[union-attr]
            return ActionResult.failed(f"order {order_id!r} is not paid")
        if order["status"] != "open":  # type: ignore[index]
            return ActionResult.failed(
                f"order {order_id!r} is {order['status']!r}"  # type: ignore[index]
            )
        order["status"] = "completed"  # type: ignore[index]
        ctx.txn.put(ORDERS_TABLE, order_id, order)
        return ActionResult.ok(order_id)

    def op_cancel_order(self, ctx: ActionContext, order_id: str) -> ActionResult:
        """Abandon an order (the client releases its promise separately)."""
        order = ctx.txn.get_or_none(ORDERS_TABLE, order_id)
        if order is None:
            return ActionResult.failed(f"unknown order {order_id!r}")
        if order["status"] != "open":  # type: ignore[index]
            return ActionResult.failed(
                f"order {order_id!r} is {order['status']!r}"  # type: ignore[index]
            )
        order["status"] = "cancelled"  # type: ignore[index]
        ctx.txn.put(ORDERS_TABLE, order_id, order)
        return ActionResult.ok(order_id)

    def op_sell(
        self, ctx: ActionContext, product: str, quantity: int
    ) -> ActionResult:
        """Sell stock directly, with no promise protection.

        This is the unprotected check-then-act path — what concurrent
        order processes (and the optimistic baseline) do.  Under promise
        protection the post-action check will roll this back whenever it
        would violate someone's granted promise.
        """
        try:
            ctx.resources.remove_stock(ctx.txn, product, int(quantity))
        except InsufficientResources as exc:
            return ActionResult.failed(str(exc))
        return ActionResult.ok(quantity)

    def op_restock(
        self, ctx: ActionContext, product: str, quantity: int
    ) -> ActionResult:
        """Goods received: add stock to a product pool."""
        ctx.resources.add_stock(ctx.txn, product, int(quantity))
        return ActionResult.ok(quantity)

    def op_stock_level(self, ctx: ActionContext, product: str) -> ActionResult:
        """Report a pool's available/allocated counters."""
        pool = ctx.resources.pool(ctx.txn, product)
        return ActionResult.ok(
            {"available": pool.available, "allocated": pool.allocated}
        )

    def op_order_status(self, ctx: ActionContext, order_id: str) -> ActionResult:
        """Read one order record."""
        order = ctx.txn.get_or_none(ORDERS_TABLE, order_id)
        if order is None:
            return ActionResult.failed(f"unknown order {order_id!r}")
        return ActionResult.ok(order)
