"""Application-service framework.

"Applications are constructed by gluing together opaque and autonomous
services" (paper, §1).  An :class:`ApplicationService` is one such service:
it owns business tables in the store and exposes named operations.  The
promise manager passes actions to services (Figure 2, "Application"); the
service "uses a resource manager to keep the global system state" (§8).

Operations are ordinary methods named ``op_<operation>``; they receive the
:class:`~repro.core.manager.ActionContext` (transaction, resource manager,
promise environment) plus the decoded message parameters, and return a
value or an :class:`~repro.core.manager.ActionResult`.
"""

from __future__ import annotations

import inspect
from abc import ABC
from typing import Callable

from ..core.manager import Action, ActionContext, ActionResult
from ..protocol.messages import ActionPayload
from ..storage.store import Store

_OPERATION_PREFIX = "op_"


class ServiceError(LookupError):
    """An operation was invoked incorrectly (unknown op, bad params).

    Subclasses :class:`LookupError` so the protocol endpoint can translate
    resolver failures into faults without depending on this module.
    """


class ApplicationService(ABC):
    """Base class for services; subclasses define ``op_*`` methods."""

    name: str = "service"

    def setup(self, store: Store) -> None:
        """Create this service's business tables (idempotent)."""

    def operations(self) -> dict[str, Callable[..., object]]:
        """All operations this service exposes, by name."""
        found: dict[str, Callable[..., object]] = {}
        for attribute, value in inspect.getmembers(self, inspect.ismethod):
            if attribute.startswith(_OPERATION_PREFIX):
                found[attribute[len(_OPERATION_PREFIX):]] = value
        return found

    def action_for(self, operation: str, params: dict[str, object]) -> Action:
        """Bind one operation + params into an action callable."""
        method = self.operations().get(operation)
        if method is None:
            raise ServiceError(
                f"service {self.name!r} has no operation {operation!r}"
            )
        signature = inspect.signature(method)
        accepted = set(signature.parameters) - {"ctx"}
        unknown = set(params) - accepted
        if unknown and not any(
            parameter.kind is inspect.Parameter.VAR_KEYWORD
            for parameter in signature.parameters.values()
        ):
            raise ServiceError(
                f"operation {self.name}.{operation} does not accept "
                f"parameters {sorted(unknown)}"
            )

        def action(ctx: ActionContext) -> object:
            return method(ctx, **params)

        return action

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"


class ServiceRegistry:
    """Routes body actions to the service implementing them."""

    def __init__(self) -> None:
        self._services: dict[str, ApplicationService] = {}

    def register(self, service: ApplicationService) -> ApplicationService:
        """Add a service (returns it, for chaining)."""
        if service.name in self._services:
            raise ServiceError(f"service {service.name!r} already registered")
        self._services[service.name] = service
        return service

    def service(self, name: str) -> ApplicationService:
        """Look a service up by name."""
        try:
            return self._services[name]
        except KeyError:
            raise ServiceError(f"unknown service {name!r}") from None

    def names(self) -> list[str]:
        """Names of all registered services."""
        return sorted(self._services)

    def resolver(self) -> Callable[[ActionPayload], Action]:
        """The :class:`~repro.protocol.endpoint.ActionResolver` for the
        protocol endpoint."""

        def resolve(payload: ActionPayload) -> Action:
            service = self.service(payload.service)
            return service.action_for(payload.operation, dict(payload.params))

        return resolve


def require(condition: bool, reason: str) -> None:
    """Fail the current action unless ``condition`` holds.

    Sugar for the common guard pattern in operations; the failure rolls
    back the whole request (the promise manager aborts the transaction).
    """
    if not condition:
        raise _guard_failure(reason)


def _guard_failure(reason: str):
    from ..core.errors import ActionFailed

    return ActionFailed("guard", reason)


def ok(value: object = None) -> ActionResult:
    """Shorthand for a successful action result."""
    return ActionResult.ok(value)


def failed(reason: str) -> ActionResult:
    """Shorthand for a failed action result."""
    return ActionResult.failed(reason)
