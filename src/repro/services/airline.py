"""The airline seating service (paper, §3.2, §3.3).

Seats are the paper's example of the *same* resources supporting named and
anonymous views simultaneously: "each seat on a flight has a unique name
(e.g. seat 24G on QF1 departing on 8/10/2007).  Some client applications
may let customers try to book specific seats ... In many cases though, all
economy seats will be regarded as equivalent" (§3.2).  The §3.2 invariant
— a named promise for 24G must exclude 24G from 'any economy seat'
promises — is enforced by the joint matching in the checking engine and
measured in experiment E4.

Cabin class is an *ordered* property (economy < business < first), so an
'or better' promise for economy can be honoured with an upgrade (§3.3).
"""

from __future__ import annotations

import itertools

from ..core.manager import ActionContext, ActionResult
from ..resources.records import InstanceStatus
from ..resources.schema import CollectionSchema, PropertyDef, PropertyType
from ..storage.store import Store
from .base import ApplicationService

TICKETS_TABLE = "airline_tickets"

CABIN_ORDER = ("economy", "business", "first")


def seat_schema(collection_id: str) -> CollectionSchema:
    """Property schema for seats on one flight."""
    return CollectionSchema(
        collection_id,
        (
            PropertyDef("cabin", PropertyType.ORDERED, ordering=CABIN_ORDER),
            PropertyDef("row", PropertyType.INT),
            PropertyDef("letter", PropertyType.STRING),
            PropertyDef("exit_row", PropertyType.BOOL, required=False),
        ),
    )


def seat_id(flight: str, row: int, letter: str) -> str:
    """Instance id of one seat on one flight-date, e.g. ``QF1@.../24G``."""
    return f"{flight}/{row}{letter}"


class AirlineService(ApplicationService):
    """Ticketing over per-flight seat collections."""

    name = "airline"

    def __init__(self) -> None:
        self._ticket_ids = itertools.count(1)

    def setup(self, store: Store) -> None:
        """Create the tickets table."""
        store.create_table(TICKETS_TABLE)

    # ----------------------------------------------------------- operations

    def op_ticket(
        self, ctx: ActionContext, passenger: str, flight: str
    ) -> ActionResult:
        """Issue a ticket; the seat comes from the released promise."""
        ticket_id = f"tkt-{next(self._ticket_ids)}"
        ctx.txn.insert(
            TICKETS_TABLE,
            ticket_id,
            {
                "ticket_id": ticket_id,
                "passenger": passenger,
                "flight": flight,
                "promises": list(ctx.environment.releases()),
                "at": ctx.now,
            },
        )
        return ActionResult.ok(ticket_id)

    def op_ticket_named(
        self, ctx: ActionContext, passenger: str, flight: str, seat: str
    ) -> ActionResult:
        """Ticket a specific seat directly (unprotected check-then-act)."""
        instance_id = f"{flight}/{seat}"
        record = ctx.resources.instance(ctx.txn, instance_id)
        if record.status is not InstanceStatus.AVAILABLE:
            return ActionResult.failed(f"seat {seat} is {record.status.value}")
        ctx.resources.set_instance_status(
            ctx.txn, instance_id, InstanceStatus.TAKEN
        )
        ticket_id = f"tkt-{next(self._ticket_ids)}"
        ctx.txn.insert(
            TICKETS_TABLE,
            ticket_id,
            {
                "ticket_id": ticket_id,
                "passenger": passenger,
                "flight": flight,
                "seat": instance_id,
                "promises": [],
                "at": ctx.now,
            },
        )
        return ActionResult.ok(ticket_id)

    def op_seat_map(self, ctx: ActionContext, flight: str) -> ActionResult:
        """Report every seat's tag state for a flight collection."""
        seats = {
            record.instance_id: record.status.value
            for record in ctx.resources.instances_in(ctx.txn, flight)
        }
        return ActionResult.ok(seats)

    # ------------------------------------------------------------ seeding

    def seed_flight(
        self,
        txn,
        resources,
        flight: str,
        economy_rows: int = 10,
        business_rows: int = 2,
        letters: str = "ABCDEF",
    ) -> int:
        """Register a flight collection and its seats; returns seat count."""
        resources.define_collection(txn, seat_schema(flight))
        seats = 0
        row = 1
        for __ in range(business_rows):
            for letter in letters[:4]:
                resources.add_instance(
                    txn,
                    seat_id(flight, row, letter),
                    flight,
                    {"cabin": "business", "row": row, "letter": letter},
                )
                seats += 1
            row += 1
        for __ in range(economy_rows):
            for letter in letters:
                resources.add_instance(
                    txn,
                    seat_id(flight, row, letter),
                    flight,
                    {"cabin": "economy", "row": row, "letter": letter},
                )
                seats += 1
            row += 1
        return seats
