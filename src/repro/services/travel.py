"""The travel agent (paper, §4, first atomicity requirement).

"The classic example is from travel planning, where a client may want a
promise that a flight and a rental car and a hotel room will all be
available.  By treating the evaluation and granting of all the predicates
carried in a single promise request as an atomic unit, the client can
ensure that they will either get all the resources they need or none of
them.  As an aside here, the travel agent client could also build up the
set of required promises ... one at a time, trying alternative resources
and predicates when other promise requests are rejected."

This module has two halves:

* :class:`TravelService` — the application service recording itineraries;
* :class:`TravelAgent` — the client-side process implementing both
  acquisition styles: :meth:`TravelAgent.plan_atomic` (one all-or-nothing
  request) and :meth:`TravelAgent.plan_incremental` (one promise at a
  time, backtracking through alternatives).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..core.manager import ActionContext, ActionResult
from ..core.predicates import Predicate
from ..protocol.client import PromiseClient
from ..storage.store import Store
from .base import ApplicationService

ITINERARIES_TABLE = "travel_itineraries"


class TravelService(ApplicationService):
    """Records complete itineraries once all resources are promised."""

    name = "travel"

    def __init__(self) -> None:
        self._itinerary_ids = itertools.count(1)

    def setup(self, store: Store) -> None:
        """Create the itineraries table."""
        store.create_table(ITINERARIES_TABLE)

    def op_book_trip(
        self, ctx: ActionContext, traveller: str, description: str = ""
    ) -> ActionResult:
        """Finalise a trip; all resources come from released promises."""
        itinerary_id = f"trip-{next(self._itinerary_ids)}"
        ctx.txn.insert(
            ITINERARIES_TABLE,
            itinerary_id,
            {
                "itinerary_id": itinerary_id,
                "traveller": traveller,
                "description": description,
                "promises": list(ctx.environment.releases()),
                "at": ctx.now,
            },
        )
        return ActionResult.ok(itinerary_id)


@dataclass
class TravelPlan:
    """Outcome of a planning attempt."""

    success: bool
    promise_ids: tuple[str, ...] = ()
    reason: str = ""
    attempts: int = 0
    alternatives_tried: int = 0


@dataclass
class TravelNeed:
    """One leg of a trip: a preferred predicate plus ranked alternatives.

    The incremental planner tries ``preferred`` first, then each entry of
    ``alternatives`` in order — "trying alternative resources and
    predicates when other promise requests are rejected" (§4).
    """

    label: str
    preferred: Predicate
    alternatives: tuple[Predicate, ...] = field(default_factory=tuple)

    def options(self) -> list[Predicate]:
        """Predicates to try, in preference order."""
        return [self.preferred, *self.alternatives]


class TravelAgent:
    """Client-side trip planner exercising both §4 acquisition styles."""

    def __init__(self, client: PromiseClient, endpoint: str) -> None:
        self._client = client
        self._endpoint = endpoint

    def plan_atomic(
        self, needs: list[TravelNeed], duration: int
    ) -> TravelPlan:
        """One promise request carrying every leg's preferred predicate.

        All-or-nothing: the promise manager grants the whole set or
        rejects the request (§4, first atomicity requirement).
        """
        response = self._client.request_promise(
            self._endpoint,
            [need.preferred for need in needs],
            duration,
        )
        if response.accepted and response.promise_id is not None:
            return TravelPlan(
                success=True,
                promise_ids=(response.promise_id,),
                attempts=1,
            )
        return TravelPlan(
            success=False, reason=response.reason, attempts=1
        )

    def plan_incremental(
        self, needs: list[TravelNeed], duration: int
    ) -> TravelPlan:
        """Acquire one promise per leg, backtracking through alternatives.

        On failure every promise acquired so far is released — the client
        must clean up after itself, which is exactly the extra complexity
        the atomic variant removes.
        """
        held: list[str] = []
        attempts = 0
        alternatives_tried = 0
        for need in needs:
            granted = None
            for option_index, predicate in enumerate(need.options()):
                attempts += 1
                if option_index > 0:
                    alternatives_tried += 1
                response = self._client.request_promise(
                    self._endpoint, [predicate], duration
                )
                if response.accepted and response.promise_id is not None:
                    granted = response.promise_id
                    break
            if granted is None:
                for promise_id in held:
                    self._client.release(self._endpoint, promise_id)
                return TravelPlan(
                    success=False,
                    reason=f"no option for {need.label!r} could be promised",
                    attempts=attempts,
                    alternatives_tried=alternatives_tried,
                )
            held.append(granted)
        return TravelPlan(
            success=True,
            promise_ids=tuple(held),
            attempts=attempts,
            alternatives_tried=alternatives_tried,
        )
