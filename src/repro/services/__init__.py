"""Application services: the paper's running examples, runnable.

The merchant (Figure 1), bank (§3.1/§4/§9), hotel (§3.3), airline (§3.2),
shipping (§7), art gallery (§4) and travel agent (§4), on a common service
framework, plus a :class:`Deployment` helper that wires the whole
Figure-2 stack.
"""

from .airline import CABIN_ORDER, AirlineService, seat_id, seat_schema
from .bank import BankService, account_pool
from .base import ApplicationService, ServiceError, ServiceRegistry, failed, ok, require
from .deployment import Deployment
from .gallery import GalleryService, gallery_schema
from .hotel import HotelService, room_night, room_schema
from .merchant import MerchantService, ORDERS_TABLE
from .shipping import ShippingService, capacity_pool
from .travel import TravelAgent, TravelNeed, TravelPlan, TravelService

__all__ = [
    "AirlineService",
    "ApplicationService",
    "BankService",
    "CABIN_ORDER",
    "Deployment",
    "GalleryService",
    "HotelService",
    "MerchantService",
    "ORDERS_TABLE",
    "ServiceError",
    "ServiceRegistry",
    "ShippingService",
    "TravelAgent",
    "TravelNeed",
    "TravelPlan",
    "TravelService",
    "account_pool",
    "capacity_pool",
    "failed",
    "gallery_schema",
    "ok",
    "require",
    "room_night",
    "room_schema",
    "seat_id",
    "seat_schema",
]
