"""One-call wiring of a complete promise-enabled deployment.

Assembles the full Figure-2 stack — store, resource manager, strategy
registry, promise manager, application services, protocol endpoint and
transport — so examples, tests and benchmarks can stand a system up in a
few lines:

.. code-block:: python

    deployment = Deployment(name="shop")
    deployment.add_service(MerchantService())
    deployment.use_pool_strategy("pink_widgets")
    with deployment.seed() as txn:
        deployment.resources.create_pool(txn, "pink_widgets", 100)
    client = deployment.client("alice")
    client.request_promise("shop", [P("quantity('pink_widgets') >= 5")], 10)
"""

from __future__ import annotations

from ..core.clock import LogicalClock
from ..core.manager import PromiseManager
from ..obs.metrics import MetricsRegistry, wal_observer
from ..protocol.client import PromiseClient
from ..recovery import RecoveryReport, recover
from ..protocol.endpoint import PromiseEndpoint
from ..protocol.transport import InProcessTransport
from ..resources.manager import ResourceManager
from ..storage.group_commit import GroupCommitConfig
from ..storage.store import Store
from ..storage.transactions import Transaction
from ..strategies.allocated_tags import AllocatedTagsStrategy
from ..strategies.delegation import DelegationStrategy, UpstreamPromiseMaker
from ..strategies.registry import StrategyRegistry
from ..strategies.resource_pool import ResourcePoolStrategy
from ..strategies.tentative import TentativeAllocationStrategy
from .base import ApplicationService, ServiceRegistry


class Deployment:
    """A fully wired promise-enabled service deployment."""

    def __init__(
        self,
        name: str = "app",
        clock: LogicalClock | None = None,
        transport: InProcessTransport | None = None,
        max_duration: int | None = None,
        wire_format: bool = True,
        counter_offers: bool = False,
        wal_path: str | None = None,
        fsync: bool = False,
        auto_checkpoint_every: int | None = None,
        manager_name: str | None = None,
        fault_scope: str | None = None,
        metrics: MetricsRegistry | None = None,
        group_commit: "GroupCommitConfig | None" = None,
    ) -> None:
        # ``manager_name`` separates the endpoint name clients address
        # (shared by every shard of a cluster) from the name seeding the
        # manager's id pools (which must be unique per shard, or two
        # shards would mint the same promise ids).  ``fault_scope``
        # likewise tags this deployment's store and WAL for scoped crash
        # injection, so a fleet test can kill one shard and leave its
        # siblings' disks live.
        # ``metrics`` (optional) hooks this deployment's WAL into a
        # shared registry (``wal.appends`` / ``wal.commits`` /
        # ``wal.checkpoints``) and routes recovery audits through it.
        self.name = name
        self.clock = clock or LogicalClock()
        self.metrics = metrics
        self.store = Store(
            wal_path=wal_path,
            fsync=fsync,
            auto_checkpoint_every=auto_checkpoint_every,
            fault_scope=fault_scope,
            group_commit=group_commit,
        )
        if metrics is not None:
            self.store.wal.set_metrics(metrics)
        self.resources = ResourceManager(self.store)
        self.registry = StrategyRegistry()
        self.manager = PromiseManager(
            store=self.store,
            resources=self.resources,
            clock=self.clock,
            registry=self.registry,
            name=manager_name or name,
            max_duration=max_duration,
            counter_offers=counter_offers,
        )
        if metrics is not None:
            self.store.wal.subscribe(wal_observer(metrics))
        self.services = ServiceRegistry()
        self.transport = transport or InProcessTransport(wire_format=wire_format)
        self.endpoint = PromiseEndpoint(
            self.manager, self.services.resolver(), name=name
        )
        self.transport.register(name, self.endpoint.handle)
        self._pool_strategy: ResourcePoolStrategy | None = None
        self._tags_strategy: AllocatedTagsStrategy | None = None
        self._tentative_strategy: TentativeAllocationStrategy | None = None
        self.recovery_report: RecoveryReport | None = None
        self._closed = False

    # ------------------------------------------------------------- wiring

    def add_service(self, service: ApplicationService) -> ApplicationService:
        """Register a service and let it create its tables."""
        self.services.register(service)
        service.setup(self.store)
        return service

    def client(self, client_name: str) -> PromiseClient:
        """A protocol client stub talking to this deployment."""
        return PromiseClient(client_name, self.transport)

    def seed(self) -> Transaction:
        """A transaction for populating initial resource state."""
        return self.store.begin()

    @property
    def recovered(self) -> bool:
        """True when the store replayed an existing WAL on startup.

        Callers use this to skip re-seeding resources that the log
        already holds.
        """
        return self.store.recovered

    def recover(self, *, repair: bool = True) -> RecoveryReport:
        """Restore runtime state after a restart from an existing WAL.

        Call this *after* wiring services and strategies — the
        expired-while-down sweep dispatches each promise's ``on_expire``
        through the strategy registry, so escrowed resources only flow
        back if the owning strategy is registered again.  The report is
        also kept on :attr:`recovery_report` for later inspection.
        """
        report = recover(self.manager, repair=repair, registry=self.metrics)
        self.recovery_report = report
        return report

    def close(self) -> None:
        """Release the store's WAL file handle (idempotent).

        Safe to call any number of times, and from ``finally`` blocks
        racing an earlier explicit close — the second and later calls are
        no-ops, so tests and the CLI can always pair every Deployment
        with a close without tracking who closed it first.
        """
        if self._closed:
            return
        self._closed = True
        self.store.close()

    def __enter__(self) -> "Deployment":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ---------------------------------------------------- strategy routing

    def use_pool_strategy(self, *pool_ids: str) -> ResourcePoolStrategy:
        """Route these pools to escrow-style resource pooling (§5)."""
        if self._pool_strategy is None:
            self._pool_strategy = ResourcePoolStrategy()
        self.registry.assign_many(pool_ids, self._pool_strategy)
        return self._pool_strategy

    def use_tags_strategy(self, *resource_ids: str) -> AllocatedTagsStrategy:
        """Route these instances/collections to allocated tags (§5)."""
        if self._tags_strategy is None:
            self._tags_strategy = AllocatedTagsStrategy()
        self.registry.assign_many(resource_ids, self._tags_strategy)
        return self._tags_strategy

    def use_tentative_strategy(
        self, *collection_ids: str
    ) -> TentativeAllocationStrategy:
        """Route these collections to tentative allocation (§5)."""
        if self._tentative_strategy is None:
            self._tentative_strategy = TentativeAllocationStrategy()
        self.registry.assign_many(collection_ids, self._tentative_strategy)
        return self._tentative_strategy

    def use_delegation(
        self,
        upstream: UpstreamPromiseMaker,
        *resource_ids: str,
        delegate_as: str | None = None,
    ) -> DelegationStrategy:
        """Route these resources to an upstream promise maker (§5)."""
        strategy = DelegationStrategy(
            upstream, delegate_as=delegate_as or self.name
        )
        self.registry.assign_many(resource_ids, strategy)
        return strategy
