"""The hotel booking service (paper, §2, §3.3, §5).

Rooms are the paper's showcase for the *property view*: "a hotel booking
service would maintain a collection of rooms ... Each of these rooms has a
number of properties, such as the size and type of beds, whether or not
smoking is allowed in the room, whether or not there is a view, and which
floor it is on" (§3.3).  A night in a room is a virtual resource instance
('Room 212, Sydney Hilton, 12/3/2007' — §3.2), so the service keys
instances by room *and* date.

The §3.3 worked example — one customer asking for 'a room with a view'
while another asks for 'any 5th-floor room', with room 512 able to satisfy
either but not both — is this service plus the tentative-allocation or
satisfiability strategy; experiment E5 measures the difference.
"""

from __future__ import annotations

import itertools

from ..core.manager import ActionContext, ActionResult
from ..resources.records import InstanceStatus
from ..resources.schema import CollectionSchema, PropertyDef, PropertyType
from ..storage.store import Store
from .base import ApplicationService

BOOKINGS_TABLE = "hotel_bookings"


def room_schema(collection_id: str = "rooms") -> CollectionSchema:
    """The room-night property schema used throughout the examples."""
    return CollectionSchema(
        collection_id,
        (
            PropertyDef("floor", PropertyType.INT),
            PropertyDef("view", PropertyType.BOOL),
            PropertyDef("beds", PropertyType.STRING),
            PropertyDef("smoking", PropertyType.BOOL),
            PropertyDef(
                "grade",
                PropertyType.ORDERED,
                ordering=("standard", "deluxe", "suite"),
            ),
            PropertyDef("date", PropertyType.STRING),
        ),
    )


def room_night(room: str, date: str) -> str:
    """Instance id of one room on one date (§3.2 naming)."""
    return f"{room}@{date}"


class HotelService(ApplicationService):
    """Room bookings over a property-described collection."""

    name = "hotel"

    def __init__(self, collection_id: str = "rooms") -> None:
        self.collection_id = collection_id
        self._booking_ids = itertools.count(1)

    def setup(self, store: Store) -> None:
        """Create the bookings table."""
        store.create_table(BOOKINGS_TABLE)

    # ----------------------------------------------------------- operations

    def op_book(
        self,
        ctx: ActionContext,
        guest: str,
        reference: str = "",
    ) -> ActionResult:
        """Record a booking for a guest.

        The room itself is consumed by the promise released atomically
        with this action: "later making a booking for a 5th floor room,
        rather than trying to confirm a booking for room 512" (§2) — the
        concrete instance choice stays with the promise manager.
        """
        booking_id = f"bkg-{next(self._booking_ids)}"
        ctx.txn.insert(
            BOOKINGS_TABLE,
            booking_id,
            {
                "booking_id": booking_id,
                "guest": guest,
                "reference": reference,
                "promises": list(ctx.environment.releases()),
                "at": ctx.now,
            },
        )
        return ActionResult.ok(booking_id)

    def op_book_named(
        self, ctx: ActionContext, guest: str, room: str, date: str
    ) -> ActionResult:
        """Book a *specific* room-night directly (named view, no promise).

        The unprotected check-then-act path: fails when the instance is
        not available — and under concurrent promise protection the
        post-action check rolls it back if it steals a promised room.
        """
        instance_id = room_night(room, date)
        record = ctx.resources.instance(ctx.txn, instance_id)
        if record.status is not InstanceStatus.AVAILABLE:
            return ActionResult.failed(
                f"{instance_id} is {record.status.value}"
            )
        ctx.resources.set_instance_status(
            ctx.txn, instance_id, InstanceStatus.TAKEN
        )
        booking_id = f"bkg-{next(self._booking_ids)}"
        ctx.txn.insert(
            BOOKINGS_TABLE,
            booking_id,
            {
                "booking_id": booking_id,
                "guest": guest,
                "reference": instance_id,
                "promises": [],
                "at": ctx.now,
            },
        )
        return ActionResult.ok(booking_id)

    def op_cancel(self, ctx: ActionContext, booking_id: str) -> ActionResult:
        """Cancel a booking; directly named rooms return to availability."""
        booking = ctx.txn.get_or_none(BOOKINGS_TABLE, booking_id)
        if booking is None:
            return ActionResult.failed(f"unknown booking {booking_id!r}")
        reference = booking.get("reference")  # type: ignore[union-attr]
        if reference and ctx.resources.instance_exists(ctx.txn, str(reference)):
            record = ctx.resources.instance(ctx.txn, str(reference))
            if record.status is InstanceStatus.TAKEN:
                ctx.resources.set_instance_status(
                    ctx.txn, str(reference), InstanceStatus.AVAILABLE
                )
        ctx.txn.delete(BOOKINGS_TABLE, booking_id)
        return ActionResult.ok(booking_id)

    def op_room_status(self, ctx: ActionContext, room: str, date: str) -> ActionResult:
        """Report one room-night's allocated tag."""
        instance_id = room_night(room, date)
        record = ctx.resources.instance(ctx.txn, instance_id)
        return ActionResult.ok(
            {"instance": instance_id, "status": record.status.value}
        )

    # ------------------------------------------------------------ seeding

    def seed_rooms(
        self,
        txn,
        resources,
        rooms: dict[str, dict[str, object]],
        dates: list[str],
    ) -> None:
        """Register the collection and add one instance per room-night."""
        if not resources.collection_exists(txn, self.collection_id):
            resources.define_collection(txn, room_schema(self.collection_id))
        for room, properties in rooms.items():
            for date in dates:
                props = dict(properties)
                props["date"] = date
                resources.add_instance(
                    txn, room_night(room, date), self.collection_id, props
                )
