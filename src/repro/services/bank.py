"""The bank service (paper, §3.1, §4, §9).

Account balances are the paper's canonical *anonymous* resource: "if a
promise is made that a client application will be able to withdraw $500
from an account, the bank is not obliged to set aside five specific $100
bills" (§3.1).  Each account is an anonymous pool whose available quantity
is the balance in whole currency units.

The §4 upgrade/weaken example ("a promise that an account will have a
balance of at least $100 ... changed to $200 ... or to $50") is exercised
by exchanging promises atomically via ``PromiseRequest.releases``; the §9
disjointness example (promises for ``balance>100`` and ``balance>50``
jointly require 150) is enforced by the checking engine and measured in
experiment E9.
"""

from __future__ import annotations

import itertools

from ..core.manager import ActionContext, ActionResult
from ..resources.manager import InsufficientResources
from ..storage.store import Store
from .base import ApplicationService

LEDGER_TABLE = "bank_ledger"


def account_pool(account: str) -> str:
    """Pool id backing one account's balance."""
    return f"acct:{account}"


class BankService(ApplicationService):
    """Accounts as anonymous pools of currency units."""

    name = "bank"

    def __init__(self) -> None:
        self._entry_ids = itertools.count(1)

    def setup(self, store: Store) -> None:
        """Create the ledger table."""
        store.create_table(LEDGER_TABLE)

    # ----------------------------------------------------------- operations

    def op_open_account(
        self, ctx: ActionContext, account: str, balance: int = 0
    ) -> ActionResult:
        """Open an account with an initial balance."""
        ctx.resources.create_pool(
            ctx.txn, account_pool(account), int(balance), unit="currency"
        )
        self._record(ctx, account, "open", int(balance))
        return ActionResult.ok(account)

    def op_deposit(
        self, ctx: ActionContext, account: str, amount: int
    ) -> ActionResult:
        """Credit an account."""
        if amount <= 0:
            return ActionResult.failed("deposits must be positive")
        ctx.resources.add_stock(ctx.txn, account_pool(account), int(amount))
        self._record(ctx, account, "deposit", int(amount))
        return ActionResult.ok(amount)

    def op_withdraw(
        self, ctx: ActionContext, account: str, amount: int
    ) -> ActionResult:
        """Debit an account; fails on insufficient *unpromised* funds.

        Under the escrow strategy, promised funds sit in the allocated
        counter, so an unprotected withdrawal can never break a granted
        balance promise — exactly the escrow-locking behaviour of §5/§9.
        """
        if amount <= 0:
            return ActionResult.failed("withdrawals must be positive")
        try:
            ctx.resources.remove_stock(ctx.txn, account_pool(account), int(amount))
        except InsufficientResources as exc:
            return ActionResult.failed(str(exc))
        self._record(ctx, account, "withdraw", int(amount))
        return ActionResult.ok(amount)

    def op_transfer(
        self, ctx: ActionContext, source: str, target: str, amount: int
    ) -> ActionResult:
        """Move funds between accounts atomically."""
        if amount <= 0:
            return ActionResult.failed("transfers must be positive")
        try:
            ctx.resources.remove_stock(ctx.txn, account_pool(source), int(amount))
        except InsufficientResources as exc:
            return ActionResult.failed(str(exc))
        ctx.resources.add_stock(ctx.txn, account_pool(target), int(amount))
        self._record(ctx, source, f"transfer-out:{target}", int(amount))
        self._record(ctx, target, f"transfer-in:{source}", int(amount))
        return ActionResult.ok(amount)

    def op_balance(self, ctx: ActionContext, account: str) -> ActionResult:
        """Report available (unpromised) and promised balance."""
        pool = ctx.resources.pool(ctx.txn, account_pool(account))
        return ActionResult.ok(
            {
                "available": pool.available,
                "promised": pool.allocated,
                "total": pool.on_hand,
            }
        )

    # ------------------------------------------------------------ internals

    def _record(
        self, ctx: ActionContext, account: str, kind: str, amount: int
    ) -> None:
        entry_id = f"ledger-{next(self._entry_ids)}"
        ctx.txn.insert(
            LEDGER_TABLE,
            entry_id,
            {"account": account, "kind": kind, "amount": amount, "at": ctx.now},
        )
