"""Consistency doctor: offline audit of a promise manager's state.

Section 8 of the paper warns that "information about promises and resource
availability are stored in different places and controlled by different
managers ... special care will be needed to ensure consistency".  The
transactional design makes the hot paths safe; this tool is the *cold*
path — an audit a deployment runs periodically (or after restoring from a
WAL) to prove the cross-manager invariants still hold, and to repair the
benign kinds of drift (stale tags, stale index entries) that bugs or
manual surgery could introduce.

Checks:

* **tag integrity** — every PROMISED instance's ``promise_id`` refers to a
  live promise (stale tags strand resources forever);
* **escrow balance** — each pool's ``allocated`` counter equals the sum of
  live escrow bookkeeping over it;
* **index integrity** — the active-promise index and the per-collection
  instance indexes agree with a full scan;
* **satisfiability** — the whole live promise set passes the manager's own
  joint consistency check;
* **record hygiene** — every stored promise deserialises.

``repair()`` fixes what is safe to fix mechanically: stale tags are reset
to available, index drift is rebuilt from scans.  Everything else is
reported only.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..core.manager import PromiseManager
from ..core.promise import Promise
from ..obs.metrics import MetricsRegistry
from ..core.table import PROMISE_INDEX_TABLE, PROMISES_TABLE, _ACTIVE_KEY
from ..resources.records import (
    INSTANCE_INDEX_TABLE,
    INSTANCES_TABLE,
    POOLS_TABLE,
    InstanceStatus,
)


class Severity(enum.Enum):
    """How bad a finding is."""

    ERROR = "error"       # an invariant is broken
    WARNING = "warning"   # suspicious but not provably wrong
    REPAIRED = "repaired" # was broken; fixed by repair()


@dataclass(frozen=True)
class Finding:
    """One audit finding."""

    severity: Severity
    check: str
    subject: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"[{self.severity.value}] {self.check}: {self.subject} — {self.detail}"


class Doctor:
    """Audits (and optionally repairs) one promise manager's state.

    ``registry`` (optional) makes audits self-reporting: every
    :meth:`check` bumps ``doctor.audits`` / ``doctor.findings`` and
    every :meth:`repair` bumps ``doctor.repairs``, so a fleet scrape
    shows how often each shard is audited and what the audits found.
    """

    def __init__(
        self,
        manager: PromiseManager,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self._manager = manager
        self._registry = registry

    # ------------------------------------------------------------- checks

    def check(self) -> list[Finding]:
        """Run every audit; returns all findings (empty = healthy)."""
        findings: list[Finding] = []
        findings.extend(self._check_promise_records())
        findings.extend(self._check_tags())
        findings.extend(self._check_escrow())
        findings.extend(self._check_active_index())
        findings.extend(self._check_instance_index())
        findings.extend(self._check_satisfiability())
        if self._registry is not None:
            self._registry.inc("doctor.audits")
            self._registry.inc("doctor.findings", len(findings))
        return findings

    def repair(self) -> list[Finding]:
        """Fix mechanically-safe drift; returns what was repaired.

        Stale tags (instance promised to a dead promise) are reset to
        available; both indexes are rebuilt from scans.  Run :meth:`check`
        afterwards to see what (if anything) remains.
        """
        repaired: list[Finding] = []
        manager = self._manager
        with manager.store.begin() as txn:
            live = {
                promise.promise_id
                for promise in self._safe_promises(txn)
                if promise.is_active
            }
            # Stale tags -> available.
            for key, payload in txn.scan(
                INSTANCES_TABLE,
                lambda __, record: bool(record.get("promise_id")),
            ):
                promise_id = str(payload["promise_id"])  # type: ignore[index]
                if promise_id not in live:
                    manager.resources.set_instance_status(
                        txn, key, InstanceStatus.AVAILABLE
                    )
                    repaired.append(
                        Finding(
                            Severity.REPAIRED,
                            "tag-integrity",
                            key,
                            f"cleared stale tag to dead promise {promise_id}",
                        )
                    )
            # Rebuild the active index.
            current = txn.get_or_none(PROMISE_INDEX_TABLE, _ACTIVE_KEY) or []
            expected = sorted(live)
            if list(current) != expected:  # type: ignore[arg-type]
                txn.put(PROMISE_INDEX_TABLE, _ACTIVE_KEY, expected)
                repaired.append(
                    Finding(
                        Severity.REPAIRED,
                        "active-index",
                        _ACTIVE_KEY,
                        f"rebuilt ({len(current)} -> {len(expected)} entries)",  # type: ignore[arg-type]
                    )
                )
            # Rebuild instance indexes.
            memberships: dict[str, list[str]] = {}
            for key, payload in txn.scan(INSTANCES_TABLE):
                memberships.setdefault(
                    str(payload["collection_id"]), []  # type: ignore[index]
                ).append(key)
            for collection_id, expected_members in memberships.items():
                stored = txn.get_or_none(INSTANCE_INDEX_TABLE, collection_id) or []
                if sorted(stored) != sorted(expected_members):  # type: ignore[arg-type]
                    txn.put(
                        INSTANCE_INDEX_TABLE,
                        collection_id,
                        sorted(expected_members),
                    )
                    repaired.append(
                        Finding(
                            Severity.REPAIRED,
                            "instance-index",
                            collection_id,
                            "rebuilt from instance scan",
                        )
                    )
        if self._registry is not None:
            self._registry.inc("doctor.repairs", len(repaired))
        return repaired

    # ------------------------------------------------------------ internals

    def _safe_promises(self, txn) -> list[Promise]:
        """All deserialisable promises (malformed rows are reported by
        the promise-record check, not here)."""
        promises = []
        for __, payload in txn.scan(PROMISES_TABLE):
            try:
                promises.append(Promise.from_dict(payload))  # type: ignore[arg-type]
            except Exception:  # noqa: BLE001 - handled by promise-record check
                continue
        return promises

    def _check_promise_records(self) -> list[Finding]:
        findings = []
        with self._manager.store.begin() as txn:
            for key, payload in txn.scan(PROMISES_TABLE):
                try:
                    Promise.from_dict(payload)  # type: ignore[arg-type]
                except Exception as exc:  # noqa: BLE001 - report, don't die
                    findings.append(
                        Finding(
                            Severity.ERROR,
                            "promise-record",
                            key,
                            f"does not deserialise: {exc}",
                        )
                    )
        return findings

    def _check_tags(self) -> list[Finding]:
        findings = []
        manager = self._manager
        with manager.store.begin() as txn:
            live = {
                promise.promise_id
                for promise in self._safe_promises(txn)
                if promise.is_active
            }
            for key, payload in txn.scan(
                INSTANCES_TABLE,
                lambda __, record: bool(record.get("promise_id")),
            ):
                promise_id = str(payload["promise_id"])  # type: ignore[index]
                if promise_id not in live:
                    findings.append(
                        Finding(
                            Severity.ERROR,
                            "tag-integrity",
                            key,
                            f"tagged to dead promise {promise_id}",
                        )
                    )
        return findings

    def _check_escrow(self) -> list[Finding]:
        findings = []
        manager = self._manager
        with manager.store.begin() as txn:
            escrowed: dict[str, int] = {}
            for promise in self._safe_promises(txn):
                if not promise.is_active:
                    continue
                meta = promise.meta.get("resource_pool", {})
                escrow = meta.get("escrow", {}) if isinstance(meta, dict) else {}
                for pool_id, amount in escrow.items():
                    escrowed[pool_id] = escrowed.get(pool_id, 0) + int(amount)
            for key, payload in txn.scan(POOLS_TABLE):
                allocated = int(payload["allocated"])  # type: ignore[index]
                expected = escrowed.get(key, 0)
                if allocated != expected:
                    findings.append(
                        Finding(
                            Severity.ERROR,
                            "escrow-balance",
                            key,
                            f"allocated={allocated} but live escrow sums "
                            f"to {expected}",
                        )
                    )
        return findings

    def _check_active_index(self) -> list[Finding]:
        findings = []
        manager = self._manager
        with manager.store.begin() as txn:
            stored = set(
                txn.get_or_none(PROMISE_INDEX_TABLE, _ACTIVE_KEY) or []
            )
            actual = {
                promise.promise_id
                for promise in self._safe_promises(txn)
                if promise.is_active
            }
            for missing in sorted(actual - stored):
                findings.append(
                    Finding(
                        Severity.ERROR,
                        "active-index",
                        missing,
                        "live promise missing from the active index",
                    )
                )
            for stale in sorted(stored - actual):
                findings.append(
                    Finding(
                        Severity.ERROR,
                        "active-index",
                        str(stale),
                        "index lists a promise that is not live",
                    )
                )
        return findings

    def _check_instance_index(self) -> list[Finding]:
        findings = []
        with self._manager.store.begin() as txn:
            memberships: dict[str, set[str]] = {}
            for key, payload in txn.scan(INSTANCES_TABLE):
                memberships.setdefault(
                    str(payload["collection_id"]), set()  # type: ignore[index]
                ).add(key)
            indexed: dict[str, set[str]] = {
                key: set(value)  # type: ignore[arg-type]
                for key, value in txn.scan(INSTANCE_INDEX_TABLE)
            }
            for collection_id in sorted(set(memberships) | set(indexed)):
                actual = memberships.get(collection_id, set())
                stored = indexed.get(collection_id, set())
                if actual != stored:
                    findings.append(
                        Finding(
                            Severity.ERROR,
                            "instance-index",
                            collection_id,
                            f"index has {len(stored)} members, scan finds "
                            f"{len(actual)}",
                        )
                    )
        return findings

    def _check_satisfiability(self) -> list[Finding]:
        violations = self._manager.check_all()
        return [
            Finding(
                Severity.ERROR,
                "satisfiability",
                violation.promise_id,
                violation.detail,
            )
            for violation in violations
        ]
