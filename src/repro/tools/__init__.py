"""Operational tooling for promise-enabled deployments."""

from .doctor import Doctor, Finding, Severity

__all__ = ["Doctor", "Finding", "Severity"]
