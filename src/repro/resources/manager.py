"""The Resource Manager.

"The role of the RM is to store the state of the system, and to process
queries and updates on this data as requested by the application and the
promise manager." (paper, §8)

Every method takes the :class:`~repro.storage.transactions.Transaction` it
must run in — the promise manager wraps each client request in one store
transaction covering the application action *and* promise checking, so the
RM never opens transactions of its own.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..core.errors import UnknownResource
from ..core.predicates import InstanceState
from ..storage.transactions import Transaction
from .records import (
    COLLECTIONS_TABLE,
    INSTANCE_INDEX_TABLE,
    INSTANCES_TABLE,
    POOLS_TABLE,
    InstanceRecord,
    InstanceStatus,
    PoolRecord,
)
from .schema import CollectionSchema


class InsufficientResources(Exception):
    """A pool withdrawal or reservation exceeded availability."""

    def __init__(self, pool_id: str, requested: int, available: int) -> None:
        super().__init__(
            f"pool {pool_id!r}: requested {requested}, only {available} available"
        )
        self.pool_id = pool_id
        self.requested = requested
        self.available = available


class ResourceManager:
    """Typed access to pools, instances and collections in the store."""

    def __init__(self, store) -> None:
        self._store = store
        for table in (
            POOLS_TABLE,
            INSTANCES_TABLE,
            COLLECTIONS_TABLE,
            INSTANCE_INDEX_TABLE,
        ):
            store.create_table(table)

    @property
    def store(self):
        """The underlying transactional store."""
        return self._store

    # ------------------------------------------------------------- pools

    def create_pool(
        self,
        txn: Transaction,
        pool_id: str,
        quantity: int,
        unit: str = "unit",
    ) -> PoolRecord:
        """Create an anonymous pool with ``quantity`` units available."""
        record = PoolRecord(pool_id=pool_id, available=quantity, unit=unit)
        txn.insert(POOLS_TABLE, pool_id, record.to_dict())
        return record

    def pool(self, txn: Transaction, pool_id: str) -> PoolRecord:
        """Load one pool record."""
        payload = txn.get_or_none(POOLS_TABLE, pool_id)
        if payload is None:
            raise UnknownResource(pool_id)
        return PoolRecord.from_dict(payload)  # type: ignore[arg-type]

    def pool_exists(self, txn: Transaction, pool_id: str) -> bool:
        """True when ``pool_id`` is a known pool."""
        return txn.exists(POOLS_TABLE, pool_id)

    def pools(self, txn: Transaction) -> list[PoolRecord]:
        """All pool records."""
        return [
            PoolRecord.from_dict(value)  # type: ignore[arg-type]
            for __, value in txn.scan(POOLS_TABLE)
        ]

    def add_stock(self, txn: Transaction, pool_id: str, amount: int) -> PoolRecord:
        """Increase a pool's available quantity (goods received)."""
        if amount < 0:
            raise ValueError("use remove_stock to decrease quantity")
        return self._update_pool(
            txn, pool_id, lambda p: PoolRecord(
                p.pool_id, p.available + amount, p.allocated, p.unit
            )
        )

    def remove_stock(self, txn: Transaction, pool_id: str, amount: int) -> PoolRecord:
        """Decrease available quantity; the unprotected 'sell' operation.

        Raises :class:`InsufficientResources` when the pool cannot cover
        the withdrawal.
        """
        if amount < 0:
            raise ValueError("use add_stock to increase quantity")

        def shrink(pool: PoolRecord) -> PoolRecord:
            if pool.available < amount:
                raise InsufficientResources(pool_id, amount, pool.available)
            return PoolRecord(
                pool.pool_id, pool.available - amount, pool.allocated, pool.unit
            )

        return self._update_pool(txn, pool_id, shrink)

    def reserve(self, txn: Transaction, pool_id: str, amount: int) -> PoolRecord:
        """Move units from *available* to *allocated* (escrow in, §5)."""
        def move(pool: PoolRecord) -> PoolRecord:
            if pool.available < amount:
                raise InsufficientResources(pool_id, amount, pool.available)
            return PoolRecord(
                pool.pool_id,
                pool.available - amount,
                pool.allocated + amount,
                pool.unit,
            )

        return self._update_pool(txn, pool_id, move)

    def unreserve(self, txn: Transaction, pool_id: str, amount: int) -> PoolRecord:
        """Return allocated units to the available pool (promise released)."""
        def move(pool: PoolRecord) -> PoolRecord:
            if pool.allocated < amount:
                raise InsufficientResources(pool_id, amount, pool.allocated)
            return PoolRecord(
                pool.pool_id,
                pool.available + amount,
                pool.allocated - amount,
                pool.unit,
            )

        return self._update_pool(txn, pool_id, move)

    def consume_allocated(
        self, txn: Transaction, pool_id: str, amount: int
    ) -> PoolRecord:
        """Remove units from the allocated pool (promised goods shipped)."""
        def move(pool: PoolRecord) -> PoolRecord:
            if pool.allocated < amount:
                raise InsufficientResources(pool_id, amount, pool.allocated)
            return PoolRecord(
                pool.pool_id, pool.available, pool.allocated - amount, pool.unit
            )

        return self._update_pool(txn, pool_id, move)

    def _update_pool(
        self,
        txn: Transaction,
        pool_id: str,
        mutate: Callable[[PoolRecord], PoolRecord],
    ) -> PoolRecord:
        current = self.pool(txn, pool_id)
        updated = mutate(current)
        txn.put(POOLS_TABLE, pool_id, updated.to_dict())
        return updated

    # -------------------------------------------------------- collections

    def define_collection(self, txn: Transaction, schema: CollectionSchema) -> None:
        """Register a collection and its property schema."""
        txn.insert(COLLECTIONS_TABLE, schema.collection_id, schema.to_dict())

    def collection_schema(
        self, txn: Transaction, collection_id: str
    ) -> CollectionSchema:
        """Load a collection's schema."""
        payload = txn.get_or_none(COLLECTIONS_TABLE, collection_id)
        if payload is None:
            raise UnknownResource(collection_id)
        return CollectionSchema.from_dict(payload)  # type: ignore[arg-type]

    def collection_exists(self, txn: Transaction, collection_id: str) -> bool:
        """True when ``collection_id`` is a known collection."""
        return txn.exists(COLLECTIONS_TABLE, collection_id)

    # ---------------------------------------------------------- instances

    def add_instance(
        self,
        txn: Transaction,
        instance_id: str,
        collection_id: str,
        properties: dict[str, object] | None = None,
        status: InstanceStatus = InstanceStatus.AVAILABLE,
    ) -> InstanceRecord:
        """Add an instance, validating properties against the schema."""
        schema = self.collection_schema(txn, collection_id)
        props = dict(properties or {})
        schema.validate_instance(props)
        record = InstanceRecord(
            instance_id=instance_id,
            collection_id=collection_id,
            status=status,
            properties=props,
        )
        txn.insert(INSTANCES_TABLE, instance_id, record.to_dict())
        self._index_add(txn, collection_id, instance_id)
        return record

    def instance(self, txn: Transaction, instance_id: str) -> InstanceRecord:
        """Load one instance record."""
        payload = txn.get_or_none(INSTANCES_TABLE, instance_id)
        if payload is None:
            raise UnknownResource(instance_id)
        return InstanceRecord.from_dict(payload)  # type: ignore[arg-type]

    def instance_exists(self, txn: Transaction, instance_id: str) -> bool:
        """True when ``instance_id`` is a known instance."""
        return txn.exists(INSTANCES_TABLE, instance_id)

    def instances_in(
        self, txn: Transaction, collection_id: str
    ) -> list[InstanceRecord]:
        """All instances of one collection.

        Served from the membership index, so the cost scales with the
        collection rather than with every instance in the store.
        """
        index = txn.get_or_none(INSTANCE_INDEX_TABLE, collection_id)
        if index is None:
            return []
        records = []
        for instance_id in index:  # type: ignore[union-attr]
            payload = txn.get_or_none(INSTANCES_TABLE, str(instance_id))
            if payload is not None:
                records.append(InstanceRecord.from_dict(payload))  # type: ignore[arg-type]
        return records

    def set_instance_status(
        self,
        txn: Transaction,
        instance_id: str,
        status: InstanceStatus,
        promise_id: str | None = None,
        tentative: bool = False,
    ) -> InstanceRecord:
        """Advance an instance's allocated tag (available/promised/taken)."""
        record = self.instance(txn, instance_id).with_status(
            status, promise_id, tentative
        )
        txn.put(INSTANCES_TABLE, instance_id, record.to_dict())
        return record

    def remove_instance(self, txn: Transaction, instance_id: str) -> None:
        """Delete an instance (retired resource)."""
        payload = txn.get_or_none(INSTANCES_TABLE, instance_id)
        if payload is None:
            raise UnknownResource(instance_id)
        collection_id = str(payload.get("collection_id", ""))  # type: ignore[union-attr]
        txn.delete(INSTANCES_TABLE, instance_id)
        self._index_remove(txn, collection_id, instance_id)

    # ------------------------------------------------------------ indexing

    def _index_add(
        self, txn: Transaction, collection_id: str, instance_id: str
    ) -> None:
        index = txn.get_or_none(INSTANCE_INDEX_TABLE, collection_id) or []
        if instance_id not in index:  # type: ignore[operator]
            index = sorted([*index, instance_id])  # type: ignore[misc]
            txn.put(INSTANCE_INDEX_TABLE, collection_id, index)

    def _index_remove(
        self, txn: Transaction, collection_id: str, instance_id: str
    ) -> None:
        index = txn.get_or_none(INSTANCE_INDEX_TABLE, collection_id)
        if index is None:
            return
        remaining = [entry for entry in index if entry != instance_id]  # type: ignore[union-attr]
        txn.put(INSTANCE_INDEX_TABLE, collection_id, remaining)

    # ------------------------------------------------------------- reader

    def reader(self, txn: Transaction) -> "TxnResourceReader":
        """A :class:`ResourceStateView` bound to ``txn``.

        This is what predicates evaluate against, guaranteeing they see the
        same transactionally consistent state the action ran under (§8).
        """
        return TxnResourceReader(self, txn)


class TxnResourceReader:
    """Read-only resource state bound to a transaction.

    Implements the :class:`~repro.core.predicates.ResourceStateView`
    protocol consumed by predicate evaluation and promise checking.
    """

    def __init__(self, manager: ResourceManager, txn: Transaction) -> None:
        self._manager = manager
        self._txn = txn

    def pool_available(self, pool_id: str) -> int:
        """Unallocated quantity of ``pool_id`` (0 for unknown pools)."""
        if not self._manager.pool_exists(self._txn, pool_id):
            return 0
        return self._manager.pool(self._txn, pool_id).available

    def instance(self, instance_id: str) -> InstanceState | None:
        """Snapshot one instance, or ``None`` when unknown."""
        if not self._manager.instance_exists(self._txn, instance_id):
            return None
        record = self._manager.instance(self._txn, instance_id)
        return _to_state(record)

    def instances_in(self, collection_id: str) -> list[InstanceState]:
        """Snapshot every instance of ``collection_id``."""
        return [
            _to_state(record)
            for record in self._manager.instances_in(self._txn, collection_id)
        ]

    def property_ordering(
        self, collection_id: str, name: str
    ) -> Sequence[object] | None:
        """Declared worst-to-best ordering of a property, if any."""
        if not self._manager.collection_exists(self._txn, collection_id):
            return None
        schema = self._manager.collection_schema(self._txn, collection_id)
        return schema.ordering(name)


def _to_state(record: InstanceRecord) -> InstanceState:
    return InstanceState(
        instance_id=record.instance_id,
        collection_id=record.collection_id,
        status=record.status.value,
        properties=dict(record.properties),
    )
