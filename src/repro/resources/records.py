"""Record shapes stored by the Resource Manager.

Three tables back the resource model, mirroring the availability-tracking
idioms the paper catalogues:

* ``pools`` — anonymous pools with 'quantity on hand'-style counters
  (§3.1), split into *available* and *allocated* so the resource-pool
  (escrow-like) strategy of §5 can move promised units aside.
* ``instances`` — named / property-described instances with the
  available→promised→taken 'allocated tag' lifecycle of §5.
* ``collections`` — property schemas (see :mod:`repro.resources.schema`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

POOLS_TABLE = "pools"
INSTANCES_TABLE = "instances"
COLLECTIONS_TABLE = "collections"
INSTANCE_INDEX_TABLE = "instance_index"


class RecordError(Exception):
    """A stored record failed validation on read or write."""


class InstanceStatus(enum.Enum):
    """Allocated-tag lifecycle of an instance (paper, §5)."""

    AVAILABLE = "available"
    PROMISED = "promised"
    TAKEN = "taken"


@dataclass(frozen=True)
class PoolRecord:
    """One anonymous pool.

    ``available`` is the unpromised quantity; ``allocated`` holds units
    moved aside for granted promises by the resource-pool strategy.  Their
    sum is the physical quantity on hand.
    """

    pool_id: str
    available: int
    allocated: int = 0
    unit: str = "unit"

    def __post_init__(self) -> None:
        if self.available < 0:
            raise RecordError(
                f"pool {self.pool_id!r} cannot have negative availability"
            )
        if self.allocated < 0:
            raise RecordError(
                f"pool {self.pool_id!r} cannot have negative allocation"
            )

    @property
    def on_hand(self) -> int:
        """Total physical quantity (available + allocated)."""
        return self.available + self.allocated

    def to_dict(self) -> dict[str, object]:
        """Serialise for storage."""
        return {
            "pool_id": self.pool_id,
            "available": self.available,
            "allocated": self.allocated,
            "unit": self.unit,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "PoolRecord":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(
                pool_id=str(payload["pool_id"]),
                available=int(payload["available"]),  # type: ignore[arg-type]
                allocated=int(payload.get("allocated", 0)),  # type: ignore[arg-type]
                unit=str(payload.get("unit", "unit")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise RecordError(f"malformed pool record: {payload!r}") from exc


@dataclass(frozen=True)
class InstanceRecord:
    """One named or property-described instance.

    ``promise_id`` ties a PROMISED instance back to the promise holding it
    (allocated-tags and tentative-allocation strategies); ``tentative`` is
    True when that tie may be re-arranged to admit new promises (§5,
    tentative allocation).
    """

    instance_id: str
    collection_id: str
    status: InstanceStatus = InstanceStatus.AVAILABLE
    properties: Mapping[str, object] = field(default_factory=dict)
    promise_id: str | None = None
    tentative: bool = False

    def __post_init__(self) -> None:
        if self.status is InstanceStatus.AVAILABLE and self.promise_id:
            raise RecordError(
                f"available instance {self.instance_id!r} cannot carry a promise"
            )
        if self.tentative and self.status is not InstanceStatus.PROMISED:
            raise RecordError(
                f"instance {self.instance_id!r} can only be tentative while promised"
            )

    def with_status(
        self,
        status: InstanceStatus,
        promise_id: str | None = None,
        tentative: bool = False,
    ) -> "InstanceRecord":
        """Copy with a new allocated-tag state."""
        return InstanceRecord(
            instance_id=self.instance_id,
            collection_id=self.collection_id,
            status=status,
            properties=dict(self.properties),
            promise_id=promise_id,
            tentative=tentative,
        )

    def to_dict(self) -> dict[str, object]:
        """Serialise for storage."""
        return {
            "instance_id": self.instance_id,
            "collection_id": self.collection_id,
            "status": self.status.value,
            "properties": dict(self.properties),
            "promise_id": self.promise_id,
            "tentative": self.tentative,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "InstanceRecord":
        """Inverse of :meth:`to_dict`."""
        try:
            properties = payload.get("properties", {})
            if not isinstance(properties, Mapping):
                raise RecordError("instance properties must be a mapping")
            return cls(
                instance_id=str(payload["instance_id"]),
                collection_id=str(payload["collection_id"]),
                status=InstanceStatus(str(payload.get("status", "available"))),
                properties=dict(properties),
                promise_id=payload.get("promise_id"),  # type: ignore[arg-type]
                tentative=bool(payload.get("tentative", False)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise RecordError(f"malformed instance record: {payload!r}") from exc
