"""Property schemas for resource collections.

Section 3.3 of the paper grounds property-view promises in "defined
resource availability data that is specified using standard schemas".  A
:class:`CollectionSchema` declares which properties a collection's
instances expose, their types, and — for ordered properties — the
worst-to-best acceptability ordering that powers 'or better' promises
(economy seat satisfied by business class).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping


class SchemaError(Exception):
    """A schema declaration or an instance's properties are invalid."""


class PropertyType(enum.Enum):
    """Types a declared property may take."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    BOOL = "bool"
    ORDERED = "ordered"

    def accepts(self, value: object) -> bool:
        """Type check one value (ORDERED values are checked by the def)."""
        if self is PropertyType.INT:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is PropertyType.FLOAT:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self is PropertyType.STRING:
            return isinstance(value, str)
        if self is PropertyType.BOOL:
            return isinstance(value, bool)
        return True  # ORDERED: membership checked against the ordering


@dataclass(frozen=True)
class PropertyDef:
    """Declaration of one property.

    ``ordering`` lists allowed values worst-to-best and is required for
    (and exclusive to) :data:`PropertyType.ORDERED` properties.
    """

    name: str
    ptype: PropertyType
    ordering: tuple[object, ...] = ()
    required: bool = True

    def __post_init__(self) -> None:
        if self.ptype is PropertyType.ORDERED and not self.ordering:
            raise SchemaError(
                f"ordered property {self.name!r} needs an ordering"
            )
        if self.ptype is not PropertyType.ORDERED and self.ordering:
            raise SchemaError(
                f"property {self.name!r} is not ordered but has an ordering"
            )

    def validate(self, value: object) -> None:
        """Raise :class:`SchemaError` when ``value`` is unacceptable."""
        if self.ptype is PropertyType.ORDERED:
            if value not in self.ordering:
                raise SchemaError(
                    f"{value!r} is not an allowed value of ordered "
                    f"property {self.name!r} (allowed: {list(self.ordering)})"
                )
            return
        if not self.ptype.accepts(value):
            raise SchemaError(
                f"property {self.name!r} expects {self.ptype.value}, "
                f"got {value!r}"
            )

    def to_dict(self) -> dict[str, object]:
        """Serialise for persistence in the collections table."""
        payload: dict[str, object] = {
            "name": self.name,
            "type": self.ptype.value,
            "required": self.required,
        }
        if self.ordering:
            payload["ordering"] = list(self.ordering)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "PropertyDef":
        """Inverse of :meth:`to_dict`."""
        ordering = payload.get("ordering", [])
        if not isinstance(ordering, (list, tuple)):
            raise SchemaError("ordering must be a list")
        return cls(
            name=str(payload["name"]),
            ptype=PropertyType(str(payload["type"])),
            ordering=tuple(ordering),
            required=bool(payload.get("required", True)),
        )


@dataclass(frozen=True)
class CollectionSchema:
    """Schema of a collection of property-described instances."""

    collection_id: str
    properties: tuple[PropertyDef, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [definition.name for definition in self.properties]
        if len(names) != len(set(names)):
            raise SchemaError(
                f"collection {self.collection_id!r} declares duplicate properties"
            )

    def property_def(self, name: str) -> PropertyDef | None:
        """Look a property declaration up by name."""
        for definition in self.properties:
            if definition.name == name:
                return definition
        return None

    def ordering(self, name: str) -> tuple[object, ...] | None:
        """Worst-to-best ordering of ``name``, or ``None`` if unordered."""
        definition = self.property_def(name)
        if definition is not None and definition.ordering:
            return definition.ordering
        return None

    def validate_instance(self, properties: Mapping[str, object]) -> None:
        """Check an instance's property mapping against this schema."""
        for definition in self.properties:
            if definition.name in properties:
                definition.validate(properties[definition.name])
            elif definition.required:
                raise SchemaError(
                    f"instance is missing required property {definition.name!r}"
                )
        declared = {definition.name for definition in self.properties}
        extras = set(properties) - declared
        if extras:
            raise SchemaError(
                f"instance has undeclared properties {sorted(extras)}"
            )

    def to_dict(self) -> dict[str, object]:
        """Serialise for persistence in the collections table."""
        return {
            "collection": self.collection_id,
            "properties": [definition.to_dict() for definition in self.properties],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "CollectionSchema":
        """Inverse of :meth:`to_dict`."""
        raw = payload.get("properties", [])
        if not isinstance(raw, list):
            raise SchemaError("schema properties must be a list")
        return cls(
            collection_id=str(payload["collection"]),
            properties=tuple(PropertyDef.from_dict(entry) for entry in raw),
        )
