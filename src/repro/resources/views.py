"""The three ways of viewing resources (paper, §3).

"The concepts of named and anonymous resources are about the way client
applications view the resources, not about the resources themselves."
These small helpers make that explicit in the API: the *same* underlying
instances can be addressed through a :class:`NamedView` (seat 24G), an
anonymous :class:`PropertyView` with no conditions (any economy seat), or a
conditioned :class:`PropertyView` (a 5th-floor room with a view), and pure
counters are addressed through an :class:`AnonymousView` (account balance,
widgets on hand).

Each view builds the appropriate predicate for a promise request and can
report current availability through a
:class:`~repro.core.predicates.ResourceStateView`.
"""

from __future__ import annotations

from ..core.predicates import (
    InstanceAvailable,
    InstanceState,
    Op,
    PropertyCondition,
    PropertyMatch,
    QuantityAtLeast,
    ResourceStateView,
)


class AnonymousView:
    """Anonymous access to a pool of interchangeable units (§3.1)."""

    def __init__(self, pool_id: str) -> None:
        self.pool_id = pool_id

    def at_least(self, amount: int) -> QuantityAtLeast:
        """Predicate: at least ``amount`` units will be available."""
        return QuantityAtLeast(self.pool_id, amount)

    def available(self, state: ResourceStateView) -> int:
        """Units currently unpromised."""
        return state.pool_available(self.pool_id)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"AnonymousView({self.pool_id!r})"


class NamedView:
    """Named access to one uniquely identified instance (§3.2)."""

    def __init__(self, instance_id: str) -> None:
        self.instance_id = instance_id

    def available_predicate(self) -> InstanceAvailable:
        """Predicate: this exact instance will be available."""
        return InstanceAvailable(self.instance_id)

    def snapshot(self, state: ResourceStateView) -> InstanceState | None:
        """Current state of the instance (``None`` when unknown)."""
        return state.instance(self.instance_id)

    def is_available(self, state: ResourceStateView) -> bool:
        """True when the instance exists and is not taken."""
        snapshot = self.snapshot(state)
        return snapshot is not None and snapshot.is_available

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"NamedView({self.instance_id!r})"


class PropertyView:
    """Property-based access to a collection (§3.3).

    Fluent builder: conditions accumulate via :meth:`where` /
    :meth:`where_at_least`, and :meth:`need` produces the predicate.  With
    no conditions this is the anonymous-over-instances access of §3.2 (any
    ``count`` instances of the collection).
    """

    def __init__(
        self,
        collection_id: str,
        conditions: tuple[PropertyCondition, ...] = (),
    ) -> None:
        self.collection_id = collection_id
        self._conditions = conditions

    def where(
        self, name: str, op: str | Op, value: object, or_better: bool = False
    ) -> "PropertyView":
        """Add one condition, returning a new view (views are immutable)."""
        resolved = op if isinstance(op, Op) else Op.from_symbol(op)
        condition = PropertyCondition(name, resolved, value, or_better)
        return PropertyView(self.collection_id, self._conditions + (condition,))

    def where_equals(self, name: str, value: object, or_better: bool = False) -> "PropertyView":
        """Shorthand for an equality condition."""
        return self.where(name, Op.EQ, value, or_better)

    @property
    def conditions(self) -> tuple[PropertyCondition, ...]:
        """Conditions accumulated so far."""
        return self._conditions

    def need(self, count: int = 1) -> PropertyMatch:
        """Predicate: ``count`` matching instances will be available."""
        return PropertyMatch(self.collection_id, self._conditions, count)

    def matching(self, state: ResourceStateView) -> list[InstanceState]:
        """Instances currently matching and not taken."""
        predicate = self.need()
        return [
            instance
            for instance in state.instances_in(self.collection_id)
            if not instance.is_taken
            and predicate.matches_instance(instance, state)
        ]

    def available_count(self, state: ResourceStateView) -> int:
        """Matching instances that are strictly available (unpromised)."""
        predicate = self.need()
        return sum(
            1
            for instance in state.instances_in(self.collection_id)
            if instance.is_available
            and predicate.matches_instance(instance, state)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        rendered = " and ".join(c.describe() for c in self._conditions) or "any"
        return f"PropertyView({self.collection_id!r}, {rendered})"
