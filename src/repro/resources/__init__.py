"""Resource model: pools, instances, collections, and the Resource Manager.

Implements the availability-tracking substrate of the paper's prototype
(Section 8) and the three resource views of Section 3.
"""

from .manager import InsufficientResources, ResourceManager, TxnResourceReader
from .records import (
    COLLECTIONS_TABLE,
    INSTANCES_TABLE,
    POOLS_TABLE,
    InstanceRecord,
    InstanceStatus,
    PoolRecord,
    RecordError,
)
from .schema import CollectionSchema, PropertyDef, PropertyType, SchemaError
from .views import AnonymousView, NamedView, PropertyView

__all__ = [
    "AnonymousView",
    "COLLECTIONS_TABLE",
    "CollectionSchema",
    "INSTANCES_TABLE",
    "InstanceRecord",
    "InstanceStatus",
    "InsufficientResources",
    "NamedView",
    "POOLS_TABLE",
    "PoolRecord",
    "PropertyDef",
    "PropertyType",
    "PropertyView",
    "RecordError",
    "ResourceManager",
    "SchemaError",
    "TxnResourceReader",
]
