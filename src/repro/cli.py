"""Command-line interface: explore the Promises system without writing code.

Two subcommands:

``figure1``
    Run the paper's Figure-1 ordering walkthrough over the full protocol
    stack, printing each step (promise request, concurrent sales, atomic
    purchase+release), with configurable stock and order size.

``compare``
    Run one workload under any subset of the four isolation regimes and
    print the outcome table — a configurable version of experiment E1/E2.

Examples::

    python -m repro.cli figure1 --stock 12 --need 5
    python -m repro.cli compare --clients 32 --tightness 2.0 --regimes promises locking
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .baselines import (
    LockingRegime,
    OptimisticRegime,
    PromiseRegime,
    ValidationRegime,
)
from .core.environment import Environment
from .core.parser import P
from .services.deployment import Deployment
from .services.merchant import MerchantService
from .sim.workload import WorkloadSpec

REGIMES = {
    "promises": PromiseRegime,
    "optimistic": OptimisticRegime,
    "validation": ValidationRegime,
    "locking": LockingRegime,
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Promises: isolation support for service-based applications",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    figure1 = commands.add_parser(
        "figure1", help="run the Figure-1 ordering walkthrough"
    )
    figure1.add_argument("--stock", type=int, default=12,
                         help="initial pink-widget stock (default 12)")
    figure1.add_argument("--need", type=int, default=5,
                         help="units the order process needs (default 5)")
    figure1.add_argument("--rival-appetite", type=int, default=100,
                         help="units rival processes try to drain (default all)")

    compare = commands.add_parser(
        "compare", help="compare isolation regimes on one workload"
    )
    compare.add_argument("--clients", type=int, default=32)
    compare.add_argument("--products", type=int, default=2)
    compare.add_argument("--products-per-order", type=int, default=1)
    compare.add_argument("--tightness", type=float, default=2.0,
                         help="expected demand / stock (default 2.0)")
    compare.add_argument("--seed", type=int, default=2007)
    compare.add_argument(
        "--regimes", nargs="+", choices=sorted(REGIMES), default=sorted(REGIMES)
    )
    return parser


def run_figure1(stock: int, need: int, rival_appetite: int, out=sys.stdout) -> int:
    """The Figure-1 walkthrough; returns a process exit code."""
    shop = Deployment(name="merchant", counter_offers=True)
    shop.add_service(MerchantService())
    shop.use_pool_strategy("pink_widgets")
    with shop.seed() as txn:
        shop.resources.create_pool(txn, "pink_widgets", stock)
    client = shop.client("order-process")
    rival = shop.client("rival")

    print(f"stock: {stock} pink widgets; order needs {need}", file=out)
    response = client.request_promise(
        "merchant", [P(f"quantity('pink_widgets') >= {need}")], 30
    )
    if not response.accepted:
        print(f"promise REJECTED: {response.reason}", file=out)
        if response.counter is not None:
            print(f"counter-offer: {response.counter.describe()}", file=out)
        print("order process terminates: goods unavailable", file=out)
        return 1
    print(f"promise GRANTED as {response.promise_id}", file=out)

    drained = 0
    while drained < rival_appetite and rival.call(
        "merchant", "merchant", "sell", {"product": "pink_widgets", "quantity": 1}
    ).success:
        drained += 1
    print(f"concurrent processes sold {drained} units meanwhile", file=out)

    order = client.call(
        "merchant", "merchant", "place_order",
        {"customer": "cli", "product": "pink_widgets", "quantity": need},
    )
    client.call("merchant", "merchant", "pay", {"order_id": order.value})
    done = client.call(
        "merchant", "merchant", "complete_order", {"order_id": order.value},
        environment=Environment.of(response.promise_id, release=[response.promise_id]),
    )
    print(f"purchase under promise: {'ok' if done.success else done.reason}", file=out)
    level = client.call("merchant", "merchant", "stock_level",
                        {"product": "pink_widgets"})
    print(f"final stock: {level.value}", file=out)
    return 0 if done.success else 1


def run_compare(
    clients: int,
    products: int,
    products_per_order: int,
    tightness: float,
    seed: int,
    regimes: Sequence[str],
    out=sys.stdout,
) -> int:
    """Regime comparison; returns a process exit code."""
    spec = WorkloadSpec(
        clients=clients,
        products=products,
        products_per_order=products_per_order,
        quantity_low=1,
        quantity_high=5,
        mean_interarrival=1.0,
        work_low=5,
        work_high=20,
        seed=seed,
    ).with_tightness(tightness)
    print(
        f"workload: {clients} clients, {products} products x "
        f"{spec.stock_per_product} units, tightness {spec.tightness():.2f}, "
        f"seed {seed}",
        file=out,
    )
    header = (
        f"{'regime':12s} {'success':>8s} {'early-rej':>10s} {'late-fail':>10s} "
        f"{'deadlock':>9s} {'lat(mean)':>10s}"
    )
    print(header, file=out)
    print("-" * len(header), file=out)
    for name in regimes:
        metrics = REGIMES[name]().run(spec)
        latency = metrics.summarise("latency")
        print(
            f"{name:12s} {metrics.counter('success'):>8d} "
            f"{metrics.counter('early_reject'):>10d} "
            f"{metrics.counter('late_failure'):>10d} "
            f"{metrics.counter('deadlock'):>9d} "
            f"{latency.mean if latency else 0:>10.1f}",
            file=out,
        )
    return 0


def main(argv: Sequence[str] | None = None, out=sys.stdout) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "figure1":
        return run_figure1(args.stock, args.need, args.rival_appetite, out=out)
    if args.command == "compare":
        return run_compare(
            args.clients,
            args.products,
            args.products_per_order,
            args.tightness,
            args.seed,
            args.regimes,
            out=out,
        )
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
