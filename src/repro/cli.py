"""Command-line interface: explore the Promises system without writing code.

Four subcommands:

``figure1``
    Run the paper's Figure-1 ordering walkthrough over the full protocol
    stack, printing each step (promise request, concurrent sales, atomic
    purchase+release), with configurable stock and order size.

``compare``
    Run one workload under any subset of the four isolation regimes and
    print the outcome table — a configurable version of experiment E1/E2.

``serve``
    Host a promise-enabled merchant deployment on a TCP socket (the
    networked Figure-2 pipeline); ``--self-test`` stands the server up
    on a loopback port, drives a client through grant / action /
    redelivery, and exits.

``serve-cluster``
    Host a sharded fleet: N promise managers on consecutive ports, each
    owning the product pools a shared consistent-hash ring places on it.
    ``--replicas N`` turns every shard into a replica group: N hot
    followers apply the primary's WAL stream, a heartbeat detector
    promotes the most-caught-up one when the primary dies, and epoch
    fencing keeps the deposed primary's late writes out.
    ``--self-test`` boots a two-shard fleet on loopback, drives a
    gateway through single-shard, cross-shard and shard-crash paths,
    and exits; with ``--replicas`` it instead kills a primary and
    proves automatic failover end to end.

``call``
    Talk to a running server: request a promise and/or invoke a service
    operation from another process.  With ``--cluster host:port,...``
    the call goes through a routing gateway over a whole fleet instead
    of a single server, so predicates may span shards.

``top``
    Scrape the ``_metrics`` endpoint of a running server (or every
    shard of a fleet) and render the counters, gauges and latency
    histograms; ``--watch N`` refreshes every N seconds and prints
    per-interval rates instead of lifetime totals.

``trace``
    Assemble one distributed trace — client attempts, gateway legs,
    shard transactions, replication ack gates — and render it as an
    indented span tree.  Spans come from live ``_spans`` scrapes
    (``--cluster``/``--connect``) or from a ``--spans`` JSONL export.

``doctor``
    Open a deployment's write-ahead log, run crash recovery and the
    invariant audit, and report what it found — the post-mortem half of
    ``serve --wal``.

``chaos``
    Run one seeded chaos-nemesis schedule against a loopback fleet —
    randomized request/reply drops, crash points, shard kill/restarts
    and overload bursts — then print the audit report as JSON.
    ``--self-test`` instead proves the auditors catch a planted leak.

``serve`` and ``serve-cluster`` accept overload-protection flags:
``--max-queue`` / ``--rate-limit`` put an admission controller in front
of every server (shed checks before actions before releases, surfaced
as a retryable ``overloaded`` fault), and ``--breaker-threshold`` arms
per-shard circuit breakers on the self-test's client path so a dead
shard fails fast instead of consuming the retry budget.

Examples::

    python -m repro.cli figure1 --stock 12 --need 5
    python -m repro.cli compare --clients 32 --tightness 2.0 --regimes promises locking
    python -m repro.cli serve --port 7807 --stock 100
    python -m repro.cli serve --port 7807 --stock 100 --wal /var/lib/shop.wal
    python -m repro.cli serve-cluster --shards 4 --port 7807 --products 16 --wal-dir /var/lib/shop
    python -m repro.cli serve-cluster --shards 2 --replicas 1 --heartbeat-interval 0.2
    python -m repro.cli serve-cluster --self-test
    python -m repro.cli serve-cluster --replicas 1 --self-test
    python -m repro.cli call --connect 127.0.0.1:7807 --predicate "quantity('widgets') >= 5" --duration 30
    python -m repro.cli call --connect 127.0.0.1:7807 --service merchant --operation sell --param product=widgets --param quantity=1
    python -m repro.cli call --cluster 127.0.0.1:7807,127.0.0.1:7808 --predicate "quantity('product-0') >= 2 and quantity('product-1') >= 1"
    python -m repro.cli call --cluster 127.0.0.1:7807,127.0.0.1:7808 --predicate "quantity('product-0') >= 2" --trace
    python -m repro.cli top --cluster 127.0.0.1:7807,127.0.0.1:7808
    python -m repro.cli top --connect 127.0.0.1:7807 --watch 2
    python -m repro.cli trace 1f3a2b... --cluster 127.0.0.1:7807,127.0.0.1:7808
    python -m repro.cli trace 1f3a2b... --spans run.spans.jsonl
    python -m repro.cli doctor --wal /var/lib/shop.wal --repair
    python -m repro.cli serve --port 7807 --max-queue 64 --rate-limit 200
    python -m repro.cli chaos --seed 2007 --duration 30
    python -m repro.cli chaos --self-test
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys
from typing import Sequence

from .baselines import (
    LockingRegime,
    OptimisticRegime,
    PromiseRegime,
    ValidationRegime,
)
from .cluster import ClusterFleet, ClusterGateway, provision_products
from .core.environment import Environment
from .core.errors import PredicateSyntaxError
from .core.parser import P
from .net import NetworkTransport, PromiseServer, ThreadedServer
from .storage.group_commit import GroupCommitConfig
from .net.server import (
    METRICS_ENDPOINT,
    NET_REPLY_JOURNAL_TABLE,
    SPANS_ENDPOINT,
)
from .obs.metrics import snapshot_delta, wal_observer
from .obs.trace import Span, SpanRecorder, render_trace, spans_from_jsonl
from .protocol.client import PromiseClient
from .recovery import ReplyJournal
from .storage.errors import RecoveryError
from .protocol.errors import ProtocolError
from .protocol.messages import ActionPayload, Message
from .resilience.admission import AdmissionController
from .resilience.breaker import CircuitBreaker
from .services.deployment import Deployment
from .services.merchant import MerchantService
from .sim.workload import WorkloadSpec

DEFAULT_PORT = 7807

REGIMES = {
    "promises": PromiseRegime,
    "optimistic": OptimisticRegime,
    "validation": ValidationRegime,
    "locking": LockingRegime,
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Promises: isolation support for service-based applications",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    figure1 = commands.add_parser(
        "figure1", help="run the Figure-1 ordering walkthrough"
    )
    figure1.add_argument("--stock", type=int, default=12,
                         help="initial pink-widget stock (default 12)")
    figure1.add_argument("--need", type=int, default=5,
                         help="units the order process needs (default 5)")
    figure1.add_argument("--rival-appetite", type=int, default=100,
                         help="units rival processes try to drain (default all)")

    compare = commands.add_parser(
        "compare", help="compare isolation regimes on one workload"
    )
    compare.add_argument("--clients", type=int, default=32)
    compare.add_argument("--products", type=int, default=2)
    compare.add_argument("--products-per-order", type=int, default=1)
    compare.add_argument("--tightness", type=float, default=2.0,
                         help="expected demand / stock (default 2.0)")
    compare.add_argument("--seed", type=int, default=2007)
    compare.add_argument(
        "--regimes", nargs="+", choices=sorted(REGIMES), default=sorted(REGIMES)
    )

    serve = commands.add_parser(
        "serve", help="host a promise-enabled deployment over TCP"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=None,
                       help=f"listen port (default {DEFAULT_PORT}; "
                            "--self-test defaults to an ephemeral port)")
    serve.add_argument("--endpoint", default="shop",
                       help="endpoint/deployment name (default shop)")
    serve.add_argument("--stock", type=int, default=100,
                       help="initial 'widgets' pool stock (default 100)")
    serve.add_argument("--wal", default=None, metavar="PATH",
                       help="write-ahead log file; state survives restarts "
                            "and an existing log is recovered on startup")
    serve.add_argument("--fsync", action="store_true",
                       help="fsync the WAL after every record (durable "
                            "against power loss, slower)")
    serve.add_argument("--checkpoint-every", type=int, default=None,
                       metavar="N",
                       help="compact the WAL after every N records")
    serve.add_argument("--self-test", action="store_true",
                       help="serve on loopback, run a client round trip "
                            "(grant, action, redelivery), then kill the "
                            "server and restart it from the WAL")
    _add_resilience_flags(serve)
    _add_pipeline_flags(serve)

    cluster = commands.add_parser(
        "serve-cluster", help="host a sharded promise-manager fleet over TCP"
    )
    cluster.add_argument("--shards", type=int, default=2,
                         help="number of shard servers to boot (default 2)")
    cluster.add_argument("--host", default="127.0.0.1")
    cluster.add_argument("--port", type=int, default=None,
                         help=f"base port; shard i listens on port+i "
                              f"(default {DEFAULT_PORT}; --self-test "
                              "defaults to ephemeral ports)")
    cluster.add_argument("--endpoint", default="shop",
                         help="endpoint name every shard serves "
                              "(default shop)")
    cluster.add_argument("--products", type=int, default=8,
                         help="product pools spread over the ring "
                              "(default 8)")
    cluster.add_argument("--stock", type=int, default=100,
                         help="initial stock per product pool (default 100)")
    cluster.add_argument("--wal-dir", default=None, metavar="DIR",
                         help="directory for per-shard write-ahead logs "
                              "(shard-N.wal); state survives restarts")
    cluster.add_argument("--fsync", action="store_true",
                         help="fsync each shard's WAL after every record")
    cluster.add_argument("--replicas", type=int, default=0, metavar="N",
                         help="hot followers per shard (default 0: "
                              "unreplicated); each shard becomes a "
                              "replica group with WAL shipping, a "
                              "heartbeat failure detector and "
                              "epoch-fenced automatic failover")
    cluster.add_argument("--heartbeat-interval", type=float, default=0.2,
                         metavar="SECONDS",
                         help="failure-detector ping interval; a primary "
                              "missing 3 consecutive beats is replaced "
                              "(default 0.2, used when --replicas > 0)")
    cluster.add_argument("--self-test", action="store_true",
                         help="boot a loopback fleet, drive a gateway "
                              "through single-shard, cross-shard and "
                              "shard-crash paths, then exit; with "
                              "--replicas, also kill a primary and prove "
                              "automatic failover")
    _add_resilience_flags(cluster)
    _add_pipeline_flags(cluster)

    call = commands.add_parser(
        "call", help="send one promise/action request to a running server"
    )
    call.add_argument("--connect", default=f"127.0.0.1:{DEFAULT_PORT}",
                      help="server address as host:port")
    call.add_argument("--cluster", default=None, metavar="ADDRS",
                      help="comma-separated shard addresses "
                           "(host:port,host:port,...); routes the call "
                           "through a cluster gateway instead of --connect")
    call.add_argument("--endpoint", default="shop")
    call.add_argument(
        "--client-name", default=None,
        help="client identity; default: unique per invocation, so "
             "separate processes never share message-id namespaces",
    )
    call.add_argument("--predicate", action="append", default=[],
                      help="predicate text for a promise request (repeatable)")
    call.add_argument("--duration", type=int, default=30,
                      help="requested promise duration in ticks (default 30)")
    call.add_argument("--service", default=None)
    call.add_argument("--operation", default=None)
    call.add_argument("--param", action="append", default=[],
                      help="action parameter as key=value (repeatable)")
    call.add_argument("--timeout", type=float, default=5.0)
    call.add_argument("--trace", action="store_true",
                      help="propagate a trace through the request, then "
                           "print the trace id and the assembled span "
                           "tree (client attempt, gateway legs, shard "
                           "transaction, replication ack)")
    call.add_argument("--trace-export", default=None, metavar="FILE",
                      help="also write the collected spans to FILE as "
                           "JSON lines (implies --trace); render later "
                           "with: repro trace <id> --spans FILE")

    top = commands.add_parser(
        "top", help="scrape and render a running fleet's metrics"
    )
    top.add_argument("--connect", default=None, metavar="ADDR",
                     help=f"single server as host:port "
                          f"(default 127.0.0.1:{DEFAULT_PORT})")
    top.add_argument("--cluster", default=None, metavar="ADDRS",
                     help="comma-separated shard addresses "
                          "(host:port,host:port,...); scrapes every "
                          "shard of a fleet")
    top.add_argument("--watch", type=float, default=None, metavar="SECONDS",
                     help="refresh every N seconds, printing "
                          "per-interval counter deltas (one-shot "
                          "lifetime totals otherwise); stop with ctrl-C")
    top.add_argument("--iterations", type=int, default=None, metavar="N",
                     help="with --watch: stop after N refreshes "
                          "(default: run until interrupted)")
    top.add_argument("--json", action="store_true",
                     help="print the raw snapshots as JSON instead of "
                          "the rendered table")
    top.add_argument("--timeout", type=float, default=5.0)

    trace = commands.add_parser(
        "trace", help="assemble and render one distributed trace"
    )
    trace.add_argument("trace_id",
                       help="trace id, as printed by call --trace")
    trace.add_argument("--connect", default=None, metavar="ADDR",
                       help="scrape one server's span ring (host:port)")
    trace.add_argument("--cluster", default=None, metavar="ADDRS",
                       help="scrape every shard's span ring "
                            "(host:port,host:port,...)")
    trace.add_argument("--spans", default=None, metavar="FILE",
                       help="read spans from a JSONL export instead of "
                            "scraping live servers")
    trace.add_argument("--timeout", type=float, default=5.0)

    doctor = commands.add_parser(
        "doctor", help="recover a WAL-backed deployment and audit it"
    )
    doctor.add_argument("--wal", required=True, metavar="PATH",
                        help="write-ahead log file to open")
    doctor.add_argument("--endpoint", default="shop",
                        help="deployment name the log belongs to "
                             "(default shop)")
    doctor.add_argument("--repair", action="store_true",
                        help="repair mechanically safe drift before "
                             "the audit")

    chaos = commands.add_parser(
        "chaos", help="run one seeded nemesis schedule and audit it"
    )
    chaos.add_argument("--seed", type=int, default=2007,
                       help="schedule seed; same seed, same faults "
                            "(default 2007)")
    chaos.add_argument("--duration", type=float, default=None,
                       metavar="SECONDS",
                       help="wall-clock budget; the schedule stops "
                            "early once it is spent")
    chaos.add_argument("--steps", type=int, default=30,
                       help="workload/fault steps to run (default 30)")
    chaos.add_argument("--shards", type=int, default=3,
                       help="fleet size, at least 2 (default 3)")
    chaos.add_argument("--products", type=int, default=9,
                       help="product pools over the ring (default 9)")
    chaos.add_argument("--stock", type=int, default=20,
                       help="stock per pool (default 20)")
    chaos.add_argument("--replicas", type=int, default=0, metavar="N",
                       help="hot followers per shard (default 0); with "
                            "N > 0 the schedule adds kill-primary and "
                            "partition-primary fault classes auditing "
                            "the failover invariants")
    chaos.add_argument("--heartbeat-interval", type=float, default=0.05,
                       metavar="SECONDS",
                       help="failure-detector ping interval during a "
                            "replicated run (default 0.05)")
    chaos.add_argument("--self-test", action="store_true",
                       help="prove the invariant auditors catch a "
                            "planted leak, then exit")
    return parser


def _add_resilience_flags(subparser: argparse.ArgumentParser) -> None:
    """Overload-protection flags shared by ``serve`` and ``serve-cluster``."""
    subparser.add_argument(
        "--max-queue", type=int, default=None, metavar="N",
        help="admission control: bound on admitted-but-unfinished "
             "requests per server (default: no admission control)",
    )
    subparser.add_argument(
        "--rate-limit", type=float, default=None, metavar="RPS",
        help="admission control: token-bucket rate in requests/second "
             "per server; shed requests get a retryable 'overloaded' "
             "fault (checks shed first, releases last)",
    )
    subparser.add_argument(
        "--breaker-threshold", type=int, default=None, metavar="N",
        help="consecutive failures before the self-test client's "
             "per-endpoint circuit breaker opens (default: no breaker)",
    )


def _add_pipeline_flags(subparser: argparse.ArgumentParser) -> None:
    """Hot-path concurrency flags shared by ``serve`` and ``serve-cluster``."""
    subparser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="parallel-dispatch worker threads per server (default 0: "
             "serial on the event loop); requests on disjoint resources "
             "execute concurrently, same-resource requests stay FIFO",
    )
    subparser.add_argument(
        "--group-commit", action="store_true",
        help="batch WAL fsyncs (group commit): concurrent transactions "
             "share one fsync and every ack waits for durability",
    )
    subparser.add_argument(
        "--batch-max", type=int, default=64, metavar="N",
        help="group commit: max records hardened per fsync batch "
             "(default 64)",
    )
    subparser.add_argument(
        "--batch-hold-ms", type=float, default=2.0, metavar="MS",
        help="group commit: max time the flusher holds an open batch "
             "waiting for more records (default 2.0)",
    )


def _group_commit_from_flags(
    enabled: bool, batch_max: int, batch_hold_ms: float
) -> "GroupCommitConfig | None":
    if not enabled:
        return None
    return GroupCommitConfig(
        max_batch=batch_max, max_hold=batch_hold_ms / 1000.0
    )


def _admission_from_flags(
    max_queue: int | None, rate_limit: float | None
) -> AdmissionController | None:
    """An admission controller when either flag was given, else None."""
    if max_queue is None and rate_limit is None:
        return None
    return AdmissionController(
        max_queue=max_queue if max_queue is not None else 64,
        rate=rate_limit,
    )


def run_figure1(stock: int, need: int, rival_appetite: int, out=sys.stdout) -> int:
    """The Figure-1 walkthrough; returns a process exit code."""
    shop = Deployment(name="merchant", counter_offers=True)
    shop.add_service(MerchantService())
    shop.use_pool_strategy("pink_widgets")
    with shop.seed() as txn:
        shop.resources.create_pool(txn, "pink_widgets", stock)
    client = shop.client("order-process")
    rival = shop.client("rival")

    print(f"stock: {stock} pink widgets; order needs {need}", file=out)
    response = client.request_promise(
        "merchant", [P(f"quantity('pink_widgets') >= {need}")], 30
    )
    if not response.accepted:
        print(f"promise REJECTED: {response.reason}", file=out)
        if response.counter is not None:
            print(f"counter-offer: {response.counter.describe()}", file=out)
        print("order process terminates: goods unavailable", file=out)
        return 1
    print(f"promise GRANTED as {response.promise_id}", file=out)

    drained = 0
    while drained < rival_appetite and rival.call(
        "merchant", "merchant", "sell", {"product": "pink_widgets", "quantity": 1}
    ).success:
        drained += 1
    print(f"concurrent processes sold {drained} units meanwhile", file=out)

    order = client.call(
        "merchant", "merchant", "place_order",
        {"customer": "cli", "product": "pink_widgets", "quantity": need},
    )
    client.call("merchant", "merchant", "pay", {"order_id": order.value})
    done = client.call(
        "merchant", "merchant", "complete_order", {"order_id": order.value},
        environment=Environment.of(response.promise_id, release=[response.promise_id]),
    )
    print(f"purchase under promise: {'ok' if done.success else done.reason}", file=out)
    level = client.call("merchant", "merchant", "stock_level",
                        {"product": "pink_widgets"})
    print(f"final stock: {level.value}", file=out)
    return 0 if done.success else 1


def run_compare(
    clients: int,
    products: int,
    products_per_order: int,
    tightness: float,
    seed: int,
    regimes: Sequence[str],
    out=sys.stdout,
) -> int:
    """Regime comparison; returns a process exit code."""
    spec = WorkloadSpec(
        clients=clients,
        products=products,
        products_per_order=products_per_order,
        quantity_low=1,
        quantity_high=5,
        mean_interarrival=1.0,
        work_low=5,
        work_high=20,
        seed=seed,
    ).with_tightness(tightness)
    print(
        f"workload: {clients} clients, {products} products x "
        f"{spec.stock_per_product} units, tightness {spec.tightness():.2f}, "
        f"seed {seed}",
        file=out,
    )
    header = (
        f"{'regime':12s} {'success':>8s} {'early-rej':>10s} {'late-fail':>10s} "
        f"{'deadlock':>9s} {'lat(mean)':>10s}"
    )
    print(header, file=out)
    print("-" * len(header), file=out)
    for name in regimes:
        metrics = REGIMES[name]().run(spec)
        latency = metrics.summarise("latency")
        print(
            f"{name:12s} {metrics.counter('success'):>8d} "
            f"{metrics.counter('early_reject'):>10d} "
            f"{metrics.counter('late_failure'):>10d} "
            f"{metrics.counter('deadlock'):>9d} "
            f"{latency.mean if latency else 0:>10.1f}",
            file=out,
        )
    return 0


def _build_served_deployment(
    endpoint: str,
    stock: int,
    wal_path: str | None = None,
    fsync: bool = False,
    checkpoint_every: int | None = None,
    group_commit: "GroupCommitConfig | None" = None,
    out=sys.stdout,
) -> Deployment:
    """The deployment `serve` hosts: a merchant over a widgets pool.

    With a WAL that already holds state, the pool is *not* re-seeded —
    the log is the truth — and the runtime (clock, id pools, expiry
    backlog) is recovered from it.
    """
    deployment = Deployment(
        name=endpoint,
        counter_offers=True,
        wal_path=wal_path,
        fsync=fsync,
        auto_checkpoint_every=checkpoint_every,
        group_commit=group_commit,
    )
    deployment.add_service(MerchantService())
    deployment.use_pool_strategy("widgets")
    if deployment.recovered:
        report = deployment.recover()
        print(f"recovery: {report.summary()}", file=out)
    else:
        with deployment.seed() as txn:
            deployment.resources.create_pool(txn, "widgets", stock)
    return deployment


def _build_server(
    deployment: Deployment,
    endpoint: str,
    host: str,
    port: int,
    admission: AdmissionController | None = None,
    workers: int = 0,
) -> PromiseServer:
    """A :class:`PromiseServer` for ``deployment``, with a durable
    reply journal when the deployment has one to give."""
    journal = None
    if deployment.store.durable:
        journal = ReplyJournal(
            deployment.store, table=NET_REPLY_JOURNAL_TABLE
        )
    server = PromiseServer(
        host=host, port=port, reply_journal=journal, admission=admission,
        workers=workers,
    )
    # The server owns the deployment's registry too: WAL appends land
    # beside the request counters, so one ``_metrics`` scrape (``repro
    # top``) covers the whole process.
    deployment.store.wal.subscribe(wal_observer(server.metrics))
    deployment.store.wal.set_metrics(server.metrics)
    server.attach_store(deployment.store)
    server.register(
        endpoint,
        deployment.endpoint.handle,
        keys=deployment.endpoint.dispatch_keys,
    )
    return server


def run_serve(
    host: str,
    port: int | None,
    endpoint: str,
    stock: int,
    self_test: bool,
    wal: str | None = None,
    fsync: bool = False,
    checkpoint_every: int | None = None,
    max_queue: int | None = None,
    rate_limit: float | None = None,
    breaker_threshold: int | None = None,
    workers: int = 0,
    group_commit: "GroupCommitConfig | None" = None,
    out=sys.stdout,
) -> int:
    """Host the deployment over TCP; returns a process exit code."""
    if port is None:
        port = 0 if self_test else DEFAULT_PORT

    if self_test:
        return _serve_self_test(
            host, port, endpoint, stock, wal,
            fsync=fsync, checkpoint_every=checkpoint_every,
            max_queue=max_queue, rate_limit=rate_limit,
            breaker_threshold=breaker_threshold,
            workers=workers, group_commit=group_commit, out=out,
        )

    deployment = _build_served_deployment(
        endpoint, stock, wal, fsync, checkpoint_every,
        group_commit=group_commit, out=out,
    )
    admission = _admission_from_flags(max_queue, rate_limit)
    server = _build_server(
        deployment, endpoint, host, port, admission, workers=workers
    )

    async def serve() -> None:
        bound_host, bound_port = await server.start()
        durability = f", wal: {wal}" if wal else ""
        shedding = (
            f", admission: queue<={admission.max_queue}"
            + (f" rate={admission.rate}/s" if admission.rate else "")
            if admission
            else ""
        )
        print(
            f"serving endpoint {endpoint!r} on {bound_host}:{bound_port} "
            f"(widgets stock: {stock}{durability}{shedding})",
            file=out,
        )
        await server.serve_forever()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        print("shutting down", file=out)
    except OSError as error:
        print(f"cannot serve on {host}:{port}: {error}", file=out)
        return 2
    return 0


def _serve_self_test(
    host: str,
    port: int,
    endpoint: str,
    stock: int,
    wal: str | None,
    fsync: bool = False,
    checkpoint_every: int | None = None,
    workers: int = 0,
    group_commit: "GroupCommitConfig | None" = None,
    max_queue: int | None = None,
    rate_limit: float | None = None,
    breaker_threshold: int | None = None,
    out=sys.stdout,
) -> int:
    """Loopback smoke test, in two lives of the same deployment.

    Life one: grant, action under promise, §6 redelivery — as before.
    Then the server is killed, and life two restarts from the WAL
    (a temporary file when ``--wal`` was not given): recovery must come
    up healthy, the pre-crash stock must survive, and a client retrying
    a pre-crash message must get the journaled reply byte-for-byte.
    """
    import tempfile

    cleanup: str | None = None
    if wal is None:
        fd, wal = tempfile.mkstemp(prefix="repro-selftest-", suffix=".wal")
        os.close(fd)
        os.unlink(wal)  # the WAL layer creates it; we only needed a name
        cleanup = wal
    try:
        return _self_test_two_lives(
            host, port, endpoint, stock, wal,
            fsync=fsync, checkpoint_every=checkpoint_every,
            max_queue=max_queue, rate_limit=rate_limit,
            breaker_threshold=breaker_threshold,
            workers=workers, group_commit=group_commit, out=out,
        )
    finally:
        if cleanup is not None:
            for leftover in (cleanup, cleanup + ".tmp"):
                if os.path.exists(leftover):
                    os.unlink(leftover)


def _self_test_two_lives(
    host: str,
    port: int,
    endpoint: str,
    stock: int,
    wal: str,
    fsync: bool,
    checkpoint_every: int | None,
    max_queue: int | None = None,
    rate_limit: float | None = None,
    breaker_threshold: int | None = None,
    workers: int = 0,
    group_commit: "GroupCommitConfig | None" = None,
    out=sys.stdout,
) -> int:
    def breaker() -> CircuitBreaker | None:
        if breaker_threshold is None:
            return None
        return CircuitBreaker(
            endpoint=endpoint, failure_threshold=breaker_threshold
        )

    deployment = _build_served_deployment(
        endpoint, stock, wal, fsync, checkpoint_every,
        group_commit=group_commit, out=out,
    )
    server = _build_server(
        deployment, endpoint, host, port,
        _admission_from_flags(max_queue, rate_limit),
        workers=workers,
    )
    with ThreadedServer(server) as (host, bound_port):
        print(f"self-test: serving on {host}:{bound_port}", file=out)
        with NetworkTransport((host, bound_port), breaker=breaker()) as transport:
            client = PromiseClient("self-test", transport)
            response = client.request_promise(
                endpoint, [P("quantity('widgets') >= 5")], 30
            )
            if not response.accepted:
                print(f"self-test FAILED: {response.reason}", file=out)
                return 1
            print(f"promise granted: {response.promise_id}", file=out)

            # Lose a reply on purpose; the client's retry must redeliver
            # and the server's dedup cache must not re-run the sale.
            transport.plan_reply_drop(transport.stats.sent + 1)
            outcome = client.call(
                endpoint, "merchant", "sell",
                {"product": "widgets", "quantity": 1},
                environment=Environment.of(response.promise_id),
            )
            if not outcome.success:
                print(f"self-test FAILED: {outcome.reason}", file=out)
                return 1
            level = client.call(
                endpoint, "merchant", "stock_level", {"product": "widgets"}
            )
            remaining = (
                level.value.get("available", 0) + level.value.get("allocated", 0)
            )
            sold_once = remaining == stock - 1  # one unit sold, not two
            print(
                f"action under promise: ok (stock {level.value}, "
                f"exactly one sale after dropped reply + redelivery)",
                file=out,
            )

            # Deterministic §6 redelivery probe: the same message id twice
            # must be served from the reply cache, byte-identically.
            probe = Message(
                message_id="self-test:probe",
                sender="self-test",
                recipient=endpoint,
                action=ActionPayload(
                    "merchant", "stock_level", {"product": "widgets"}
                ),
            )
            first = transport.send(probe)
            duplicates_before = server.stats.duplicates_served
            second = transport.send(probe)
            deduplicated = (
                first == second
                and server.stats.duplicates_served == duplicates_before + 1
            )
            print(
                f"redelivery probe: duplicate served from cache: "
                f"{'yes' if deduplicated else 'NO'}",
                file=out,
            )
            faults = client.release(endpoint, response.promise_id)
            life_one_ok = not faults and sold_once and deduplicated

    # Kill the server (the context manager above tore it down without
    # ceremony) and start a second life from the same WAL.
    deployment.close()
    print(f"killed server; restarting from {wal}", file=out)
    deployment = _build_served_deployment(
        endpoint, stock, wal, fsync, checkpoint_every,
        group_commit=group_commit, out=out,
    )
    report = deployment.recovery_report
    recovered_ok = report is not None and report.healthy
    server = _build_server(
        deployment, endpoint, host, port,
        _admission_from_flags(max_queue, rate_limit),
        workers=workers,
    )
    with ThreadedServer(server) as (host, bound_port):
        with NetworkTransport((host, bound_port), breaker=breaker()) as transport:
            client = PromiseClient("self-test-2", transport)
            level = client.call(
                endpoint, "merchant", "stock_level", {"product": "widgets"}
            )
            stock_survived = (
                level.value.get("available", 0)
                + level.value.get("allocated", 0)
            ) == stock - 1
            print(
                f"stock after restart: {level.value} "
                f"({'survived' if stock_survived else 'LOST'})",
                file=out,
            )
            # Retry a pre-crash message: the reply journal must replay
            # the original envelope byte-for-byte, not re-execute.
            probe = Message(
                message_id="self-test:probe",
                sender="self-test",
                recipient=endpoint,
                action=ActionPayload(
                    "merchant", "stock_level", {"product": "widgets"}
                ),
            )
            replayed = transport.send(probe)
            journal_replayed = (
                replayed == first and server.stats.duplicates_served == 1
            )
            print(
                f"pre-crash message retried: journaled reply replayed: "
                f"{'yes' if journal_replayed else 'NO'}",
                file=out,
            )
    deployment.close()
    healthy = (
        life_one_ok and recovered_ok and stock_survived and journal_replayed
    )
    print("self-test " + ("ok" if healthy else "FAILED"), file=out)
    return 0 if healthy else 1


def run_serve_cluster(
    shards: int,
    host: str,
    port: int | None,
    endpoint: str,
    products: int,
    stock: int,
    self_test: bool,
    wal_dir: str | None = None,
    fsync: bool = False,
    max_queue: int | None = None,
    rate_limit: float | None = None,
    breaker_threshold: int | None = None,
    replicas: int = 0,
    heartbeat_interval: float = 0.2,
    workers: int = 0,
    group_commit: "GroupCommitConfig | None" = None,
    out=sys.stdout,
) -> int:
    """Host a sharded fleet over TCP; returns a process exit code."""
    if shards < 1:
        print(f"need at least one shard, got {shards}", file=out)
        return 2
    if replicas < 0:
        print(f"--replicas must be >= 0, got {replicas}", file=out)
        return 2
    admission = None
    if max_queue is not None or rate_limit is not None:
        # One controller per shard (and a fresh one on restart): each
        # shard's bucket protects its own event loop, not the fleet's.
        def admission(index: int) -> AdmissionController:
            return _admission_from_flags(max_queue, rate_limit)
    if self_test:
        if replicas > 0:
            return _serve_cluster_failover_self_test(
                shards, host, endpoint, products, stock,
                replicas=replicas, heartbeat_interval=heartbeat_interval,
                admission=admission, breaker_threshold=breaker_threshold,
                out=out,
            )
        return _serve_cluster_self_test(
            shards, host, endpoint, products, stock,
            admission=admission, breaker_threshold=breaker_threshold,
            out=out,
        )
    if port is None:
        port = DEFAULT_PORT

    detector = None
    if replicas > 0:
        from .replication import HeartbeatDetector, ReplicatedFleet

        fleet = ReplicatedFleet(
            shards,
            replicas=replicas,
            endpoint=endpoint,
            provision=provision_products(products, stock),
            wal_dir=wal_dir,
            fsync=fsync,
            host=host,
            base_port=port,
            admission=admission,
        )
    else:
        fleet = ClusterFleet(
            shards,
            endpoint=endpoint,
            provision=provision_products(products, stock),
            wal_dir=wal_dir,
            fsync=fsync,
            host=host,
            base_port=port,
            admission=admission,
            workers=workers,
            group_commit=group_commit,
        )
    try:
        addresses = fleet.start()
    except OSError as error:
        print(f"cannot serve on {host}:{port}+: {error}", file=out)
        return 2
    try:
        if replicas > 0:
            from .replication import HeartbeatDetector  # noqa: F811

            detector = HeartbeatDetector(
                fleet, interval=heartbeat_interval, miss_threshold=3
            ).start()
        durability = f", wal-dir: {wal_dir}" if wal_dir else ""
        replication = (
            f", {replicas} follower(s)/shard, heartbeat "
            f"{heartbeat_interval}s" if replicas > 0 else ""
        )
        print(
            f"serving endpoint {endpoint!r} on {shards} shards "
            f"({products} products x {stock} units"
            f"{durability}{replication})",
            file=out,
        )
        for index, (bound_host, bound_port) in enumerate(addresses):
            owned = fleet.ring.placement(
                [f"product-{number}" for number in range(products)]
            ).get(index, [])
            extra = ""
            if replicas > 0:
                followers = fleet.group(index).followers
                extra = ", followers: " + ", ".join(
                    f"{f.address[0]}:{f.address[1]}" for f in followers
                )
            print(
                f"  shard {index}: {bound_host}:{bound_port} "
                f"({len(owned)} pools{extra})",
                file=out,
            )
        joined = ",".join(f"{h}:{p}" for h, p in addresses)
        print(f"gateway clients: call --cluster {joined}", file=out)
        import threading

        threading.Event().wait()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        print("shutting down fleet", file=out)
    finally:
        if detector is not None:
            detector.stop()
        fleet.stop()
    return 0


def _serve_cluster_failover_self_test(
    shards: int,
    host: str,
    endpoint: str,
    products: int,
    stock: int,
    replicas: int,
    heartbeat_interval: float,
    admission=None,
    breaker_threshold: int | None = None,
    out=sys.stdout,
) -> int:
    """Replicated-fleet smoke test: grant, kill the primary, recover.

    Boots the replica groups with a heartbeat detector, grants a
    promise, verifies the WAL stream is caught up, then kills the
    promise's home primary.  The detector must promote a follower
    within a few heartbeats, after which the same gateway — remapped
    and breaker-reset automatically — must grant again without manual
    intervention; the dead primary rejoins as a follower and the
    doctor audit must come back clean.
    """
    import tempfile
    import time

    from .protocol.retry import RetryPolicy
    from .replication import HeartbeatDetector, ReplicatedFleet

    checks: list[tuple[str, bool]] = []

    def check(label: str, ok: bool) -> None:
        checks.append((label, ok))
        print(f"{label}: {'ok' if ok else 'FAILED'}", file=out)

    with tempfile.TemporaryDirectory(prefix="repro-replica-") as wal_dir:
        fleet = ReplicatedFleet(
            shards,
            replicas=replicas,
            endpoint=endpoint,
            provision=provision_products(products, stock),
            wal_dir=wal_dir,
            host=host,
            admission=admission,
        )
        with fleet:
            print(
                f"self-test: {shards} replica groups x "
                f"{1 + replicas} nodes, heartbeat {heartbeat_interval}s",
                file=out,
            )
            detector = HeartbeatDetector(
                fleet, interval=heartbeat_interval, miss_threshold=3
            ).start()
            try:
                gateway = fleet.gateway(
                    timeout=2.0,
                    retry=RetryPolicy(
                        max_attempts=4, base_delay=0.05, max_delay=0.2
                    ),
                    breaker_threshold=breaker_threshold or 4,
                    breaker_reset=0.2,
                )
                with gateway:
                    client = PromiseClient(
                        "failover-self-test", gateway, deadline=10.0
                    )
                    product = "product-0"
                    victim = fleet.ring.shard_of(product)
                    response = client.request_promise(
                        endpoint, [P(f"quantity('{product}') >= 2")], 60
                    )
                    check("grant before failover", response.accepted)
                    stream = fleet.replication_status(victim)["stream"]
                    check(
                        "followers caught up",
                        stream is not None
                        and stream["synced_lsn"] == stream["last_lsn"],
                    )
                    epoch_before = fleet.epoch(victim)
                    fleet.kill(victim)
                    print(
                        f"killed primary of shard {victim}; waiting for "
                        "the detector...",
                        file=out,
                    )
                    started = time.monotonic()
                    promoted = fleet.await_failover(
                        victim, beyond_epoch=epoch_before, timeout=15.0
                    )
                    elapsed = time.monotonic() - started
                    check(
                        f"automatic failover (epoch "
                        f"{fleet.epoch(victim)}, {elapsed:.2f}s)",
                        promoted,
                    )
                    retry = client.request_promise(
                        endpoint, [P(f"quantity('{product}') >= 1")], 60
                    )
                    check("grant after failover", retry.accepted)
                    released = True
                    for pid in (response.promise_id, retry.promise_id):
                        if pid:
                            released = (
                                client.release(endpoint, pid) == ()
                                and released
                            )
                    check("releases across the failover", released)
                    rejoined = fleet.rejoin(victim)
                    check("dead primary rejoined as follower", rejoined == 1)
                    counts = fleet.live_promises()
                    findings = fleet.audit()
                    check(
                        "no orphaned promises",
                        all(count == 0 for count in counts.values()),
                    )
                    check(
                        "doctor audit clean",
                        all(not found for found in findings.values()),
                    )
            finally:
                detector.stop()
    healthy = all(ok for __, ok in checks)
    print("failover self-test " + ("ok" if healthy else "FAILED"), file=out)
    return 0 if healthy else 1


def _serve_cluster_self_test(
    shards: int,
    host: str,
    endpoint: str,
    products: int,
    stock: int,
    admission=None,
    breaker_threshold: int | None = None,
    out=sys.stdout,
) -> int:
    """Loopback fleet smoke test: grant, cross-shard, crash, audit.

    Boots the fleet on ephemeral ports with per-shard WALs in a
    temporary directory, then drives one gateway through the paths that
    define the subsystem: a single-shard grant/release, a cross-shard
    composite grant/release, an action routed by its resource
    parameter, and a shard kill mid-fleet — the cross-shard request must
    be rejected, the compensation queued, and one flush after restart
    must leave every shard's doctor audit clean.
    """
    import tempfile

    from .protocol.retry import RetryPolicy

    checks: list[tuple[str, bool]] = []

    def check(label: str, ok: bool) -> None:
        checks.append((label, ok))
        print(f"{label}: {'ok' if ok else 'FAILED'}", file=out)

    with tempfile.TemporaryDirectory(prefix="repro-cluster-") as wal_dir:
        fleet = ClusterFleet(
            shards,
            endpoint=endpoint,
            provision=provision_products(products, stock),
            wal_dir=wal_dir,
            host=host,
            admission=admission,
        )
        with fleet:
            addresses = fleet.addresses()
            print(
                f"self-test: {shards} shards on "
                + ", ".join(f"{h}:{p}" for h, p in addresses),
                file=out,
            )
            pair = _cross_shard_pair(fleet, products)
            if pair is None:
                print(
                    f"self-test FAILED: the ring placed all {products} "
                    "products on one shard; rerun with more --products",
                    file=out,
                )
                return 1
            near, far = pair
            with fleet.gateway(
                timeout=2.0,
                retry=RetryPolicy.none(),
                breaker_threshold=breaker_threshold,
                breaker_reset=0.2,
            ) as gateway:
                client = PromiseClient(
                    "cluster-self-test", gateway, retry=RetryPolicy.none()
                )

                response = client.request_promise(
                    endpoint, [P(f"quantity('{near}') >= 1")], 30
                )
                check("single-shard grant", response.accepted)
                check(
                    "single-shard release",
                    client.release(endpoint, response.promise_id) == (),
                )

                response = client.request_promise(
                    endpoint,
                    [P(f"quantity('{near}') >= 2"), P(f"quantity('{far}') >= 1")],
                    30,
                )
                check(
                    "cross-shard composite grant",
                    response.accepted
                    and response.promise_id.startswith("cluster/"),
                )
                check(
                    "composite release fan-out",
                    client.release(endpoint, response.promise_id) == (),
                )

                outcome = client.call(
                    endpoint, "merchant", "sell",
                    {"product": far, "quantity": 1},
                )
                check("action routed to resource shard", outcome.success)

                victim = fleet.ring.shard_of(far)
                fleet.kill(victim)
                response = client.request_promise(
                    endpoint,
                    [P(f"quantity('{near}') >= 2"), P(f"quantity('{far}') >= 1")],
                    30,
                )
                check(
                    "cross-shard request rejected while shard down",
                    not response.accepted,
                )
                check(
                    "compensation queued for dead shard",
                    gateway.pending_compensations == 1,
                )
                fleet.restart(victim)
                if breaker_threshold is not None:
                    # Give a tripped per-shard breaker time to half-open
                    # so the flush probe reaches the restarted shard.
                    import time

                    time.sleep(0.25)
                check("queued compensation flushed", gateway.flush_pending() == 1)

                counts = fleet.live_promises()
                findings = fleet.audit()
                check(
                    "no orphaned sub-promises",
                    all(count == 0 for count in counts.values()),
                )
                check(
                    "per-shard doctor audit clean",
                    all(not found for found in findings.values()),
                )
    healthy = all(ok for __, ok in checks)
    print("cluster self-test " + ("ok" if healthy else "FAILED"), file=out)
    return 0 if healthy else 1


def _cross_shard_pair(
    fleet: ClusterFleet, products: int
) -> tuple[str, str] | None:
    """Two product pools the fleet's ring places on different shards."""
    first = "product-0"
    home = fleet.ring.shard_of(first)
    for number in range(1, products):
        candidate = f"product-{number}"
        if fleet.ring.shard_of(candidate) != home:
            return first, candidate
    return None


def _parse_addresses(text: str) -> list[tuple[str, int]] | None:
    """``host:port,host:port,...`` → address list, or None when bad."""
    addresses: list[tuple[str, int]] = []
    for part in text.split(","):
        host, _, port_text = part.strip().rpartition(":")
        if not host or not port_text.isdigit():
            return None
        addresses.append((host, int(port_text)))
    return addresses or None


def _obs_scrape(transport, recipient: str, params=None):
    """One ``_metrics``/``_spans`` probe; None when the peer is down
    (or predates the observability endpoints)."""
    probe = Message(
        message_id=f"cli-obs:{os.getpid()}:{os.urandom(4).hex()}",
        sender="cli-obs",
        recipient=recipient,
        action=ActionPayload(
            service="_obs", operation="scrape", params=dict(params or {})
        ),
    )
    try:
        reply = transport.send(probe)
    except ProtocolError:
        return None
    outcome = reply.action_outcome
    if outcome is None or not outcome.success:
        return None
    return outcome.value


def _obs_addresses(
    connect: str | None, cluster: str | None, out
) -> list[tuple[str, int]] | None:
    """Resolve the top/trace address flags; None (and a message) on bad
    input.  ``--cluster`` wins; the default is one local server."""
    if cluster is not None:
        addresses = _parse_addresses(cluster)
        if addresses is None:
            print(
                f"bad --cluster address list {cluster!r} "
                "(want host:port,host:port,...)",
                file=out,
            )
            return None
        return addresses
    text = connect if connect is not None else f"127.0.0.1:{DEFAULT_PORT}"
    addresses = _parse_addresses(text)
    if addresses is None or len(addresses) != 1:
        print(f"bad --connect address {text!r} (want host:port)", file=out)
        return None
    return addresses


def _render_metrics(snapshot, indent: str = "  ") -> list[str]:
    """One scrape as ``name = value`` lines (counters, gauges, then
    histogram count/mean pairs), sorted for stable output."""
    lines: list[str] = []
    counters = snapshot.get("counters", {})
    for name in sorted(counters):
        lines.append(f"{indent}{name} = {counters[name]}")
    gauges = snapshot.get("gauges", {})
    for name in sorted(gauges):
        lines.append(f"{indent}{name} = {gauges[name]:g}")
    histograms = snapshot.get("histograms", {})
    for name in sorted(histograms):
        hist = histograms[name]
        count = int(hist.get("count", 0))
        total = float(hist.get("sum", 0.0))
        mean = total / count if count else 0.0
        lines.append(
            f"{indent}{name} = count {count}, mean {mean * 1000:.2f} ms"
        )
    return lines


def run_top(
    connect: str | None,
    cluster: str | None,
    watch: float | None,
    as_json: bool,
    timeout: float,
    iterations: int | None = None,
    out=sys.stdout,
) -> int:
    """Scrape and render fleet metrics; 0 when every shard answered."""
    import json
    import time

    addresses = _obs_addresses(connect, cluster, out)
    if addresses is None:
        return 2
    transports = [
        NetworkTransport(address, timeout=timeout) for address in addresses
    ]

    def scrape_all():
        return [
            _obs_scrape(transport, METRICS_ENDPOINT)
            for transport in transports
        ]

    def emit(snapshots, label: str) -> bool:
        all_up = True
        if as_json:
            print(
                json.dumps(
                    {
                        "at": label,
                        "shards": [
                            {"address": f"{h}:{p}", "metrics": snap}
                            for (h, p), snap in zip(addresses, snapshots)
                        ],
                    },
                    sort_keys=True,
                ),
                file=out,
            )
            return all(snap is not None for snap in snapshots)
        for index, ((host, port), snap) in enumerate(
            zip(addresses, snapshots)
        ):
            if snap is None:
                print(f"shard {index} @ {host}:{port}: DOWN", file=out)
                all_up = False
                continue
            print(f"shard {index} @ {host}:{port} ({label})", file=out)
            for line in _render_metrics(snap):
                print(line, file=out)
        return all_up

    try:
        snapshots = scrape_all()
        ok = emit(snapshots, "totals")
        if watch is None:
            return 0 if ok else 1
        ticks = 0
        while iterations is None or ticks < iterations:
            time.sleep(watch)
            ticks += 1
            fresh = scrape_all()
            deltas = [
                snapshot_delta(previous, current)
                if previous is not None and current is not None
                else current
                for previous, current in zip(snapshots, fresh)
            ]
            print(f"--- +{watch * ticks:g}s ---", file=out)
            ok = emit(deltas, f"last {watch:g}s") and ok
            snapshots = fresh
        return 0 if ok else 1
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 0
    finally:
        for transport in transports:
            transport.close()


def _scrape_spans(transports, trace_id: str | None) -> list[Span]:
    """Every shard's exported spans (optionally one trace's)."""
    params = {"trace_id": trace_id} if trace_id is not None else {}
    spans: list[Span] = []
    for transport in transports:
        value = _obs_scrape(transport, SPANS_ENDPOINT, params)
        if isinstance(value, list):
            for item in value:
                if isinstance(item, dict):
                    spans.append(Span.from_dict(item))
    return spans


def run_trace(
    trace_id: str,
    connect: str | None,
    cluster: str | None,
    spans_file: str | None,
    timeout: float,
    out=sys.stdout,
) -> int:
    """Render one trace's span tree; 1 when no spans were found."""
    if spans_file is not None:
        if not os.path.exists(spans_file):
            print(f"no such span export: {spans_file}", file=out)
            return 2
        with open(spans_file, "r", encoding="utf-8") as handle:
            spans = spans_from_jsonl(handle.read())
    else:
        addresses = _obs_addresses(connect, cluster, out)
        if addresses is None:
            return 2
        transports = [
            NetworkTransport(address, timeout=timeout)
            for address in addresses
        ]
        try:
            spans = _scrape_spans(transports, trace_id)
        finally:
            for transport in transports:
                transport.close()
    matching = [span for span in spans if span.trace_id == trace_id]
    if not matching:
        print(f"no spans for trace {trace_id}", file=out)
        return 1
    print(render_trace(matching, trace_id), file=out)
    return 0


def run_call(
    connect: str,
    endpoint: str,
    client_name: str | None,
    predicates: Sequence[str],
    duration: int,
    service: str | None,
    operation: str | None,
    params: Sequence[str],
    timeout: float,
    cluster: str | None = None,
    trace: bool = False,
    trace_export: str | None = None,
    out=sys.stdout,
) -> int:
    """One promise request and/or action against a running server."""
    if not predicates and not (service and operation):
        print(
            "nothing to do: give --predicate and/or --service + --operation",
            file=out,
        )
        return 2
    if trace_export is not None:
        trace = True
    if cluster is not None:
        addresses = _parse_addresses(cluster)
        if addresses is None:
            print(
                f"bad --cluster address list {cluster!r} "
                "(want host:port,host:port,...)",
                file=out,
            )
            return 2
    else:
        addresses = _parse_addresses(connect)
        if addresses is None or len(addresses) != 1:
            print(
                f"bad --connect address {connect!r} (want host:port)", file=out
            )
            return 2
    if client_name is None:
        # Every invocation is a fresh process whose message-id counter
        # restarts at 1; the server deduplicates on message id (§6), so
        # the identity itself must make the namespace process-unique.
        client_name = f"cli-{os.getpid()}-{os.urandom(3).hex()}"
    recorder = SpanRecorder() if trace else None

    def open_transport():
        if cluster is not None:
            return ClusterGateway(
                [
                    NetworkTransport(address, timeout=timeout)
                    for address in addresses
                ],
                tracer=recorder,
            )
        return NetworkTransport(addresses[0], timeout=timeout)

    trace_ids: list[str] = []

    def note_trace(client: PromiseClient) -> None:
        if recorder is not None and client.last_trace_id is not None:
            trace_ids.append(client.last_trace_id)

    try:
        with open_transport() as transport:
            client = PromiseClient(client_name, transport, tracer=recorder)
            environment = None
            code = 0
            if predicates:
                response = client.request_promise(
                    endpoint, [P(text) for text in predicates], duration
                )
                note_trace(client)
                if response.accepted:
                    print(f"promise GRANTED as {response.promise_id} "
                          f"for {response.duration} ticks", file=out)
                    environment = Environment.of(response.promise_id)
                else:
                    print(f"promise REJECTED: {response.reason}", file=out)
                    if response.counter is not None:
                        print(f"counter-offer: {response.counter.describe()}",
                              file=out)
                    code = 1
            if service and operation and code == 0:
                outcome = client.call(
                    endpoint, service, operation,
                    _parse_params(params), environment=environment,
                )
                note_trace(client)
                status = (
                    "ok" if outcome.success else f"failed: {outcome.reason}"
                )
                print(f"{service}.{operation}: {status}", file=out)
                if outcome.value is not None:
                    print(f"result: {outcome.value}", file=out)
                code = 0 if outcome.success else 1
            if recorder is not None:
                _report_call_traces(
                    transport, recorder, trace_ids, cluster is not None,
                    trace_export, out,
                )
    except PredicateSyntaxError as error:
        print(f"bad predicate: {error}", file=out)
        return 2
    except ProtocolError as error:
        print(f"error: {error}", file=out)
        return 2
    return code


def _report_call_traces(
    transport,
    recorder: SpanRecorder,
    trace_ids: Sequence[str],
    via_gateway: bool,
    trace_export: str | None,
    out,
) -> None:
    """Assemble and print the traces one ``call --trace`` produced.

    Local spans come from the client's (and gateway's) shared recorder;
    the server-side halves are scraped over the same connection the call
    just used — ``spans_snapshot`` when the transport is a gateway, a
    direct ``_spans`` probe otherwise.
    """
    import json

    spans = list(recorder.spans())
    if via_gateway:
        # The gateway shares ``recorder``; its snapshot adds the
        # per-shard scrapes (render_trace dedups the overlap).
        for trace_id in trace_ids:
            spans.extend(
                Span.from_dict(item)
                for item in transport.spans_snapshot(trace_id)
                if isinstance(item, dict)
            )
    else:
        spans.extend(_scrape_spans([transport], None))
    for trace_id in trace_ids:
        print(f"trace: {trace_id}", file=out)
        print(render_trace(spans, trace_id), file=out)
    if trace_export is not None:
        wanted = set(trace_ids)
        exported: dict[str, Span] = {}
        for span in spans:
            if span.trace_id in wanted:
                exported.setdefault(span.span_id, span)
        with open(trace_export, "w", encoding="utf-8") as handle:
            for span in exported.values():
                handle.write(
                    json.dumps(span.to_dict(), sort_keys=True) + "\n"
                )
        print(
            f"exported {len(exported)} spans to {trace_export}", file=out
        )


def run_doctor(
    wal: str, endpoint: str, repair: bool, out=sys.stdout
) -> int:
    """Recover a WAL-backed deployment and audit it; 0 when healthy."""
    if not os.path.exists(wal):
        print(f"no such WAL: {wal}", file=out)
        return 2
    try:
        deployment = Deployment(name=endpoint, wal_path=wal)
    except RecoveryError as error:
        print(f"unrecoverable WAL: {error}", file=out)
        return 2
    try:
        deployment.add_service(MerchantService())
        deployment.use_pool_strategy("widgets")
        report = deployment.recover(repair=repair)
        print(report.summary(), file=out)
        for note in report.notes:
            print(f"note: {note}", file=out)
        for finding in report.repaired:
            print(f"repaired: {finding}", file=out)
        for finding in report.findings:
            print(f"finding: {finding}", file=out)
        return 0 if report.healthy else 1
    finally:
        deployment.close()


def run_chaos(
    seed: int,
    duration: float | None,
    steps: int,
    shards: int,
    products: int,
    stock: int,
    self_test: bool,
    replicas: int = 0,
    heartbeat_interval: float = 0.05,
    out=sys.stdout,
) -> int:
    """One seeded nemesis schedule (or the auditors' self-test).

    Prints the run's audit report as JSON; exit code 0 only when every
    invariant held *and* every fault class demonstrably fired.
    """
    import json

    # Imported here, not at module top: the nemesis pulls in the whole
    # cluster/net stack and is deliberately not exported from
    # ``repro.faults`` (see its module docstring).
    from .faults.nemesis import ChaosNemesis, self_test as nemesis_self_test

    if self_test:
        ok = nemesis_self_test()
        print(
            "auditor self-test "
            + ("ok: planted leak was flagged" if ok else "FAILED"),
            file=out,
        )
        return 0 if ok else 1
    if shards < 2:
        print(f"chaos needs at least two shards, got {shards}", file=out)
        return 2
    nemesis = ChaosNemesis(
        seed,
        shards=shards,
        products=products,
        stock=stock,
        steps=steps,
        time_budget=duration,
        replicas=replicas,
        heartbeat_interval=heartbeat_interval,
    )
    report = nemesis.run()
    print(json.dumps(report.summary(), indent=2), file=out)
    print("chaos " + ("ok" if report.ok else "FAILED"), file=out)
    return 0 if report.ok else 1


def _parse_params(pairs: Sequence[str]) -> dict[str, object]:
    """``key=value`` CLI pairs, with ints parsed as ints."""
    params: dict[str, object] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep:
            raise SystemExit(f"bad --param {pair!r} (want key=value)")
        params[key] = int(value) if value.lstrip("-").isdigit() else value
    return params


def main(argv: Sequence[str] | None = None, out=sys.stdout) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "figure1":
        return run_figure1(args.stock, args.need, args.rival_appetite, out=out)
    if args.command == "compare":
        return run_compare(
            args.clients,
            args.products,
            args.products_per_order,
            args.tightness,
            args.seed,
            args.regimes,
            out=out,
        )
    if args.command == "serve":
        return run_serve(
            args.host, args.port, args.endpoint, args.stock,
            args.self_test, args.wal, args.fsync, args.checkpoint_every,
            max_queue=args.max_queue, rate_limit=args.rate_limit,
            breaker_threshold=args.breaker_threshold,
            workers=args.workers,
            group_commit=_group_commit_from_flags(
                args.group_commit, args.batch_max, args.batch_hold_ms
            ),
            out=out,
        )
    if args.command == "serve-cluster":
        return run_serve_cluster(
            args.shards, args.host, args.port, args.endpoint,
            args.products, args.stock, args.self_test,
            args.wal_dir, args.fsync,
            max_queue=args.max_queue, rate_limit=args.rate_limit,
            breaker_threshold=args.breaker_threshold,
            replicas=args.replicas,
            heartbeat_interval=args.heartbeat_interval,
            workers=args.workers,
            group_commit=_group_commit_from_flags(
                args.group_commit, args.batch_max, args.batch_hold_ms
            ),
            out=out,
        )
    if args.command == "call":
        return run_call(
            args.connect, args.endpoint, args.client_name,
            args.predicate, args.duration, args.service, args.operation,
            args.param, args.timeout, cluster=args.cluster,
            trace=args.trace, trace_export=args.trace_export, out=out,
        )
    if args.command == "top":
        return run_top(
            args.connect, args.cluster, args.watch, args.json,
            args.timeout, iterations=args.iterations, out=out,
        )
    if args.command == "trace":
        return run_trace(
            args.trace_id, args.connect, args.cluster, args.spans,
            args.timeout, out=out,
        )
    if args.command == "doctor":
        return run_doctor(args.wal, args.endpoint, args.repair, out=out)
    if args.command == "chaos":
        return run_chaos(
            args.seed, args.duration, args.steps, args.shards,
            args.products, args.stock, args.self_test,
            replicas=args.replicas,
            heartbeat_interval=args.heartbeat_interval, out=out,
        )
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
