"""The commit-time-validation baseline (IMS Fast Path analogue).

"There are interesting parallels between promises and the IMS/VS Fast
Path mechanism.  In Fast Path, each operation is structured as a predicate
check and a transformation on the data.  The predicate is checked when the
operation is submitted, and then at commit-time, the check is repeated,
and the transformation is performed (provided the check succeeded) ...
however, in Fast Path, other operations do not worry about outstanding
predicates, and so the commit check might fail because of concurrent
activity." (paper, §9)

Compared with the optimistic baseline, validation never partially applies
a multi-product purchase — the whole predicate set is re-checked before
any transformation — but it fails at exactly the same (late) point, which
is the paper's argument for promises over Fast Path.
"""

from __future__ import annotations

from ..sim.metrics import Metrics
from ..sim.workload import OrderJob
from .common import Regime, World


class ValidationRegime(Regime):
    """Submit-time check, commit-time re-check, then transform."""

    name = "validation"

    def client_process(self, world: World, job: OrderJob, metrics: Metrics):
        start = world.sim.now

        # Submit: the operation's predicate is checked on entry.
        with world.store.begin() as txn:
            admitted = all(
                world.resources.pool(txn, pool_id).available >= quantity
                for pool_id, quantity in job.demands
            )
        if not admitted:
            metrics.count("early_reject")
            return

        yield job.work_ticks

        # Commit: repeat the check; transform only when it still holds.
        with world.store.begin() as txn:
            still_valid = all(
                world.resources.pool(txn, pool_id).available >= quantity
                for pool_id, quantity in job.demands
            )
            if not still_valid:
                metrics.count("late_failure")
                metrics.count("validation_failure")
                metrics.observe("wasted_work", job.work_ticks)
                return
            for pool_id, quantity in job.demands:
                world.resources.remove_stock(txn, pool_id, quantity)
        metrics.count("success")
        metrics.count("units_sold", job.total_quantity)
        metrics.observe("latency", world.sim.now - start)
