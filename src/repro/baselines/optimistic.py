"""The optimistic (unprotected check-then-act) baseline.

This is the world the paper's introduction describes: without isolation,
"the methodology of [4] requires a merchant service to have code for the
situation where payment arrives for an accepted order when there is
insufficient stock on hand" (§1).  The client checks availability, spends
its work ticks arranging payment and shipping, and only discovers at
purchase time that a concurrent order drained the stock — a *late*
failure, with all the invested work wasted.
"""

from __future__ import annotations

from ..resources.manager import InsufficientResources
from ..sim.metrics import Metrics
from ..sim.workload import OrderJob
from .common import Regime, World


class OptimisticRegime(Regime):
    """Check, work, act — and hope."""

    name = "optimistic"

    def client_process(self, world: World, job: OrderJob, metrics: Metrics):
        start = world.sim.now

        # Check: is everything I need available right now?
        with world.store.begin() as txn:
            available = all(
                world.resources.pool(txn, pool_id).available >= quantity
                for pool_id, quantity in job.demands
            )
        if not available:
            metrics.count("early_reject")
            return

        # Work: organise payment, shippers... while others race us.
        yield job.work_ticks

        # Act: purchase; any shortfall now is a late failure.
        txn = world.store.begin()
        try:
            for pool_id, quantity in job.demands:
                world.resources.remove_stock(txn, pool_id, quantity)
        except InsufficientResources:
            txn.abort()
            metrics.count("late_failure")
            metrics.observe("wasted_work", job.work_ticks)
            return
        txn.commit()
        metrics.count("success")
        metrics.count("units_sold", job.total_quantity)
        metrics.observe("latency", world.sim.now - start)
