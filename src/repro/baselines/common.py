"""Shared harness for the isolation-regime comparison.

A *regime* is one answer to the question the paper opens with: how does a
long-running business process make sure the resources it checked are still
there when it finally acts?  Four regimes run over identical workloads:

* ``promises`` — the paper's contribution: request a promise at check
  time, act under it (§2, §7);
* ``optimistic`` — unprotected check-then-act: what service applications
  do today (§1's "insufficient stock on hand" normal-path failure);
* ``validation`` — commit-time re-validation, the IMS Fast Path analogue
  (§9): the act re-checks the condition before applying, failing cleanly
  but *late*;
* ``locking`` — long-duration strict 2PL held across the whole process:
  the traditional regime the paper argues is unusable between autonomous
  services (§1, §9), included to measure what it would cost.

Outcome taxonomy shared by all regimes:

* ``early_reject`` — the client learnt at *check* time that it cannot
  win; no work invested.
* ``late_failure`` — the client invested its work ticks and then failed
  at *act* time (the failure mode promises eliminate).
* ``success`` — completed purchase.
* ``deadlock`` / ``retry`` — locking-only pathologies.

Series: ``latency`` (arrival→completion), ``wasted_work`` (work ticks
invested by late failures), ``wait`` (ticks blocked on locks).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..core.clock import LogicalClock
from ..core.environment import Environment
from ..core.errors import PromiseExpired
from ..core.manager import PromiseManager
from ..core.predicates import quantity_at_least
from ..resources.manager import ResourceManager
from ..storage.locks import LockManager
from ..storage.store import Store
from ..strategies.registry import StrategyRegistry
from ..strategies.resource_pool import ResourcePoolStrategy
from ..strategies.satisfiability import SatisfiabilityStrategy
from ..sim.metrics import Metrics
from ..sim.simulator import Simulator
from ..sim.workload import OrderJob, WorkloadSpec, generate_orders

EXPIRY_SLACK = 10
"""Extra ticks added to promise durations beyond the client's work time."""


@dataclass
class World:
    """Shared state all clients of one run operate on."""

    spec: WorkloadSpec
    sim: Simulator
    store: Store
    resources: ResourceManager
    manager: PromiseManager
    locks: LockManager

    @classmethod
    def build(cls, spec: WorkloadSpec, pool_strategy: str = "resource_pool") -> "World":
        """Stand up stores, pools and a promise manager for ``spec``.

        ``pool_strategy`` selects how the promise regime implements its
        promises: ``resource_pool`` (escrow) or ``satisfiability``.
        """
        clock = LogicalClock()
        sim = Simulator(clock)
        store = Store()
        resources = ResourceManager(store)
        registry = StrategyRegistry()
        if pool_strategy == "resource_pool":
            registry.assign_many(spec.pool_ids, ResourcePoolStrategy())
        elif pool_strategy == "satisfiability":
            registry.assign_many(spec.pool_ids, SatisfiabilityStrategy())
        else:
            raise ValueError(f"unknown pool strategy {pool_strategy!r}")
        manager = PromiseManager(
            store=store,
            resources=resources,
            clock=clock,
            registry=registry,
            name="bench",
        )
        with store.begin() as txn:
            for pool_id in spec.pool_ids:
                resources.create_pool(txn, pool_id, spec.stock_per_product)
        return cls(
            spec=spec,
            sim=sim,
            store=store,
            resources=resources,
            manager=manager,
            locks=LockManager(),
        )

    def availability(self, pool_id: str) -> int:
        """Current available units of one pool."""
        with self.store.begin() as txn:
            return self.resources.pool(txn, pool_id).available

    def total_on_hand(self) -> int:
        """Physical units remaining across all pools."""
        with self.store.begin() as txn:
            return sum(
                self.resources.pool(txn, pool_id).on_hand
                for pool_id in self.spec.pool_ids
            )


class Regime(ABC):
    """One isolation discipline, runnable over a workload."""

    name: str = "abstract"

    @abstractmethod
    def client_process(self, world: World, job: OrderJob, metrics: Metrics):
        """Generator process for one client's order."""

    def run(
        self, spec: WorkloadSpec, pool_strategy: str = "resource_pool"
    ) -> Metrics:
        """Run the full workload under this regime; returns its metrics."""
        world = World.build(spec, pool_strategy)
        metrics = Metrics()
        for job in generate_orders(spec):
            world.sim.spawn(
                self.client_process(world, job, metrics), delay=job.arrival
            )
        world.sim.run()
        metrics.count("clients", spec.clients)
        metrics.observe("makespan", world.sim.now)
        self._verify_conservation(world, metrics)
        return metrics

    def _verify_conservation(self, world: World, metrics: Metrics) -> None:
        """Units sold + units remaining must equal units stocked.

        An oversell (negative remainder) would mean the regime let the
        §3.1 invariant break; recorded as a counter so tests can assert
        it stays at zero for every regime.
        """
        stocked = world.spec.stock_per_product * world.spec.products
        remaining = world.total_on_hand()
        sold = metrics.counter("units_sold")
        if sold + remaining != stocked:
            metrics.count("conservation_violations")


class PromiseRegime(Regime):
    """The paper's system: promise at check time, act under it."""

    name = "promises"

    def client_process(self, world: World, job: OrderJob, metrics: Metrics):
        start = world.sim.now
        predicates = [
            quantity_at_least(pool_id, quantity)
            for pool_id, quantity in job.demands
        ]
        response = world.manager.request_promise_for(
            predicates,
            duration=job.work_ticks + EXPIRY_SLACK,
            client_id=job.client_id,
        )
        if not response.accepted or response.promise_id is None:
            metrics.count("early_reject")
            return
        yield job.work_ticks

        promise_id = response.promise_id
        try:
            outcome = world.manager.execute(
                lambda ctx: "purchased",
                Environment.of(promise_id, release=[promise_id]),
                client_id=job.client_id,
            )
        except PromiseExpired:
            metrics.count("expired")
            metrics.observe("wasted_work", job.work_ticks)
            return
        if outcome.success:
            metrics.count("success")
            metrics.count("units_sold", job.total_quantity)
            metrics.observe("latency", world.sim.now - start)
        else:
            metrics.count("late_failure")
            metrics.observe("wasted_work", job.work_ticks)
