"""The long-duration locking baseline.

"Conventional database locking provides the semantic effect of ensuring
that data is not altered between the time a condition is checked and the
time it is needed ... but the locking mechanism assumes an environment
where activities run very quickly and all participants can be trusted to
hold locks.  These assumptions are inflexible and not suited for data
under high contention or for today's service-based applications." (§9)

Each client takes exclusive locks on every pool it needs and *holds them
across its entire work phase* — the semantics distributed ACID
transactions would impose on a long-running business process.  The costs
the paper predicts appear directly in the metrics: clients serialise on
hot pools (``wait`` ticks), multi-resource orders deadlock
(``deadlock``/``retry`` counters), and latency inflates — whereas the
promise regime rejects unfulfillable requests immediately and never
blocks or deadlocks (§9).

Lock acquisition order is deliberately randomised per client: autonomous
services composed ad hoc have no global resource-ordering convention to
rely on, which is precisely why deadlock is endemic in this regime.
"""

from __future__ import annotations

import itertools

from ..resources.manager import InsufficientResources
from ..sim.metrics import Metrics
from ..sim.random import RandomStream
from ..sim.workload import OrderJob
from ..storage.errors import DeadlockDetected
from ..storage.locks import LockMode, LockStatus
from .common import Regime, World

MAX_RETRIES = 3
"""Attempts per order before the client gives up after deadlocks."""


class LockingRegime(Regime):
    """Hold exclusive locks across the whole business process."""

    name = "locking"

    def __init__(self) -> None:
        self._lock_txn_ids = itertools.count(1)

    def client_process(self, world: World, job: OrderJob, metrics: Metrics):
        start = world.sim.now
        order_stream = RandomStream(
            hash((world.spec.seed, job.client_id)) & 0x7FFFFFFF, "lock-order"
        )
        backoff = RandomStream(
            hash((world.spec.seed, job.client_id)) & 0x7FFFFFFF, "backoff"
        )

        for attempt in range(1 + MAX_RETRIES):
            if attempt:
                metrics.count("retry")
                yield backoff.uniform_int(1, 4 * attempt)
            txn_id = next(self._lock_txn_ids)
            lock_order = order_stream.shuffle(
                [pool_id for pool_id, __ in job.demands]
            )
            try:
                deadlocked = False
                for pool_id in lock_order:
                    status = world.locks.acquire(
                        txn_id, pool_id, LockMode.EXCLUSIVE
                    )
                    while status is LockStatus.WAITING and (
                        pool_id not in world.locks.locks_held(txn_id)
                    ):
                        metrics.observe("wait", 1)
                        yield 1
                        status = LockStatus.WAITING  # re-test holder set
            except DeadlockDetected:
                metrics.count("deadlock")
                world.locks.release_all(txn_id)
                deadlocked = True
            if deadlocked:
                continue

            # Locks held: the check is now reliable for the whole process.
            with world.store.begin() as txn:
                available = all(
                    world.resources.pool(txn, pool_id).available >= quantity
                    for pool_id, quantity in job.demands
                )
            if not available:
                world.locks.release_all(txn_id)
                metrics.count("early_reject")
                return

            # Work while holding every lock — the §9 autonomy problem.
            yield job.work_ticks

            txn = world.store.begin()
            try:
                for pool_id, quantity in job.demands:
                    world.resources.remove_stock(txn, pool_id, quantity)
            except InsufficientResources:  # pragma: no cover - locks prevent it
                txn.abort()
                world.locks.release_all(txn_id)
                metrics.count("late_failure")
                metrics.observe("wasted_work", job.work_ticks)
                return
            txn.commit()
            world.locks.release_all(txn_id)
            metrics.count("success")
            metrics.count("units_sold", job.total_quantity)
            metrics.observe("latency", world.sim.now - start)
            return

        metrics.count("aborted_after_retries")
        metrics.observe("wasted_work", job.work_ticks)
