"""Isolation-regime baselines for the comparison experiments.

The promise regime plus the three comparators the paper discusses:
unprotected check-then-act (optimistic), commit-time validation (the IMS
Fast Path analogue of Section 9), and long-duration strict two-phase
locking (the traditional mechanism Section 9 argues is unusable between
autonomous services).
"""

from .common import EXPIRY_SLACK, PromiseRegime, Regime, World
from .locking import LockingRegime, MAX_RETRIES
from .optimistic import OptimisticRegime
from .validation import ValidationRegime

ALL_REGIMES = (PromiseRegime, OptimisticRegime, ValidationRegime, LockingRegime)

__all__ = [
    "ALL_REGIMES",
    "EXPIRY_SLACK",
    "LockingRegime",
    "MAX_RETRIES",
    "OptimisticRegime",
    "PromiseRegime",
    "Regime",
    "ValidationRegime",
    "World",
]
