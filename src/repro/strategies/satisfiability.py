"""Pure satisfiability-checking strategy.

"The promise manager keeps a record of all the promises it is currently
committed to honouring and also has access to the current state of all
resources covered by these promises.  Whenever a new promise request is
received, the manager checks that it and all relevant existing promises
can be honoured, based on the current state of the resources involved.
Similarly, a check is performed after every client-requested operation has
completed." (paper, §5)

Nothing is mutated in the Resource Manager at grant time: availability is
"indicated by the presence (or absence) of a covering predicate".  The
decision of which concrete instance honours a property promise "can be
delayed until the execution of the operation which takes the resource" —
so this strategy maximises flexibility at the cost of re-running the
satisfiability check (sum checks + bipartite matching) on every grant and
after every action.  This is the technique the paper's prototype used
(§8), and the one the reproduction's promise manager defaults to.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.checking import Demand, check_satisfiable, demands_of_promises
from ..core.errors import PromiseViolation
from ..core.predicates import QuantityAtLeast
from ..core.promise import Promise
from ..resources.manager import ResourceManager
from ..resources.records import InstanceStatus
from ..storage.transactions import Transaction
from .base import GrantDecision, IsolationStrategy, Violation


class SatisfiabilityStrategy(IsolationStrategy):
    """Grant iff candidate + all existing promises remain jointly
    satisfiable; detect violations by re-checking after actions."""

    name = "satisfiability"

    def can_grant(
        self,
        txn: Transaction,
        resources: ResourceManager,
        promise_id: str,
        duration: int,
        predicates: Sequence,
        active_promises: Sequence[Promise],
        tagged_instances: Mapping[str, str],
    ) -> GrantDecision:
        """Check mutual satisfiability of existing promises + candidate."""
        demands = demands_of_promises(active_promises)
        demands.append(Demand(owner_id=promise_id, predicates=tuple(predicates)))
        result = check_satisfiable(
            demands, resources.reader(txn), tagged_instances=tagged_instances
        )
        if not result.ok:
            return GrantDecision.rejected(result.reason)
        return GrantDecision.granted()

    def on_release(
        self,
        txn: Transaction,
        resources: ResourceManager,
        promise: Promise,
        consumed: bool,
        active_promises: Sequence[Promise] = (),
        tagged_instances: Mapping[str, str] | None = None,
    ) -> None:
        """Release is free; consumption takes the promised resources.

        A plain release has nothing to undo: the grant made no
        resource-state changes, availability was only ever 'indicated by
        the presence of a covering predicate' (§5), and the manager's
        status update removes that predicate.

        A *consumed* release takes the resources on the client's behalf:
        "the decision about which resource will be used to honour a
        granted promise can be delayed until the execution of the
        operation which takes the resource" (§5) — this is that delayed
        decision.  We re-solve the joint matching over every live promise
        (so the instances we take cannot strand anyone else), mark this
        promise's assigned instances 'taken', and drain its quantity
        demands from their pools.
        """
        if not consumed:
            return
        others = [
            other
            for other in active_promises
            if other.promise_id != promise.promise_id
        ]
        demands = demands_of_promises(others + [promise])
        result = check_satisfiable(
            demands,
            resources.reader(txn),
            tagged_instances=tagged_instances or {},
        )
        if not result.ok:
            raise PromiseViolation(
                [promise.promise_id],
                f"cannot consume promised resources: {result.reason}",
            )
        for instance_id in result.instances_for(promise.promise_id):
            resources.set_instance_status(txn, instance_id, InstanceStatus.TAKEN)
        branch_index = result.chosen_branches.get(promise.promise_id, 0)
        demand = demands[-1]
        branch = demand.branch_choices()[branch_index]
        for atom in branch:
            if isinstance(atom, QuantityAtLeast):
                resources.remove_stock(txn, atom.pool_id, atom.amount)

    def check_consistency(
        self,
        txn: Transaction,
        resources: ResourceManager,
        active_promises: Sequence[Promise],
        tagged_instances: Mapping[str, str],
    ) -> list[Violation]:
        """Re-run the joint satisfiability check against current state."""
        if not active_promises:
            return []
        result = check_satisfiable(
            demands_of_promises(active_promises),
            resources.reader(txn),
            tagged_instances=tagged_instances,
        )
        if result.ok:
            return []
        failed = result.failed_owners or tuple(
            promise.promise_id for promise in active_promises
        )
        return [Violation(owner, result.reason) for owner in failed]
