"""Allocated-tags strategy for named (and first-fit property) access.

"In the case of resources that are accessed via a named view, we can keep
an availability status field as part of the data used to describe the
resource instance.  This field would be set to something like 'available'
initially and then to 'promised' when the instance was provisionally
allocated to a client as a result of making a promise.  It would then be
either set to 'taken' by a subsequent action, or would be reset back to
'available' if the promise is released." (paper, §5)

This is the business world's 'soft lock' (§2).  Named demands tag exactly
the requested instance.  Property demands are supported with deterministic
*first-fit* tagging — pick the lowest-id matching available instance and
tag it permanently.  First-fit is deliberately naive: experiment E5
contrasts it with the tentative-allocation strategy, which may re-arrange
tags, and with pure satisfiability checking, which delays the choice.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.errors import PredicateUnsupported, UnknownResource
from ..core.predicates import InstanceAvailable, PropertyMatch
from ..core.promise import Promise
from ..resources.manager import ResourceManager
from ..resources.records import InstanceStatus
from ..storage.transactions import Transaction
from .base import GrantDecision, IsolationStrategy, Violation

_INSTANCES_KEY = "instances"


class AllocatedTagsStrategy(IsolationStrategy):
    """Tag promised instances with a status field and the promise id."""

    name = "allocated_tags"

    def can_grant(
        self,
        txn: Transaction,
        resources: ResourceManager,
        promise_id: str,
        duration: int,
        predicates: Sequence,
        active_promises: Sequence[Promise],
        tagged_instances: Mapping[str, str],
    ) -> GrantDecision:
        """Tag each demanded instance as promised; reject on any miss."""
        chosen: list[str] = []
        taken_here: set[str] = set()
        reader = resources.reader(txn)
        for atom in self.flatten_atoms(predicates):
            if isinstance(atom, InstanceAvailable):
                decision = self._tag_named(
                    txn, resources, promise_id, atom, taken_here
                )
            elif isinstance(atom, PropertyMatch):
                decision = self._tag_first_fit(
                    txn, resources, promise_id, atom, taken_here, reader
                )
            else:
                raise PredicateUnsupported(
                    f"allocated-tags strategy cannot promise {atom.describe()}"
                )
            if not decision.ok:
                return decision
            ids = decision.meta.get(_INSTANCES_KEY, [])
            chosen.extend(ids)  # type: ignore[arg-type]
            taken_here.update(ids)  # type: ignore[arg-type]
        return GrantDecision.granted(**{_INSTANCES_KEY: chosen})

    def _tag_named(
        self,
        txn: Transaction,
        resources: ResourceManager,
        promise_id: str,
        atom: InstanceAvailable,
        taken_here: set[str],
    ) -> GrantDecision:
        try:
            record = resources.instance(txn, atom.instance_id)
        except UnknownResource:
            return GrantDecision.rejected(
                f"unknown instance {atom.instance_id!r}"
            )
        if record.status is not InstanceStatus.AVAILABLE or (
            atom.instance_id in taken_here
        ):
            return GrantDecision.rejected(
                f"instance {atom.instance_id!r} is {record.status.value}"
            )
        resources.set_instance_status(
            txn, atom.instance_id, InstanceStatus.PROMISED, promise_id
        )
        return GrantDecision.granted(**{_INSTANCES_KEY: [atom.instance_id]})

    def _tag_first_fit(
        self,
        txn: Transaction,
        resources: ResourceManager,
        promise_id: str,
        atom: PropertyMatch,
        taken_here: set[str],
        reader,
    ) -> GrantDecision:
        candidates = sorted(
            (
                record.instance_id
                for record in resources.instances_in(txn, atom.collection_id)
                if record.status is InstanceStatus.AVAILABLE
                and record.instance_id not in taken_here
                and atom.matches_instance(
                    _as_state(record), reader
                )
            ),
        )
        if len(candidates) < atom.count:
            return GrantDecision.rejected(
                f"only {len(candidates)} available instances match "
                f"{atom.describe()}, {atom.count} needed"
            )
        chosen = candidates[: atom.count]
        for instance_id in chosen:
            resources.set_instance_status(
                txn, instance_id, InstanceStatus.PROMISED, promise_id
            )
        return GrantDecision.granted(**{_INSTANCES_KEY: chosen})

    def on_release(
        self,
        txn: Transaction,
        resources: ResourceManager,
        promise: Promise,
        consumed: bool,
        active_promises: Sequence[Promise] = (),
        tagged_instances: Mapping[str, str] | None = None,
    ) -> None:
        """Reset tags to available, or advance them to taken on consume."""
        for instance_id in self._owned_instances(promise):
            try:
                record = resources.instance(txn, instance_id)
            except UnknownResource:
                continue
            if record.promise_id != promise.promise_id:
                continue
            if consumed:
                resources.set_instance_status(
                    txn, instance_id, InstanceStatus.TAKEN
                )
            else:
                resources.set_instance_status(
                    txn, instance_id, InstanceStatus.AVAILABLE
                )

    def check_consistency(
        self,
        txn: Transaction,
        resources: ResourceManager,
        active_promises: Sequence[Promise],
        tagged_instances: Mapping[str, str],
    ) -> list[Violation]:
        """Every tagged instance must still exist and carry our tag."""
        violations: list[Violation] = []
        for promise in active_promises:
            for instance_id in self._owned_instances(promise):
                try:
                    record = resources.instance(txn, instance_id)
                except UnknownResource:
                    violations.append(
                        Violation(
                            promise.promise_id,
                            f"promised instance {instance_id!r} was removed",
                        )
                    )
                    continue
                if (
                    record.status is not InstanceStatus.PROMISED
                    or record.promise_id != promise.promise_id
                ):
                    violations.append(
                        Violation(
                            promise.promise_id,
                            f"promised instance {instance_id!r} is now "
                            f"{record.status.value}",
                        )
                    )
        return violations

    def _owned_instances(self, promise: Promise) -> list[str]:
        ids = self.meta_of(promise).get(_INSTANCES_KEY, [])
        return [str(instance_id) for instance_id in ids]  # type: ignore[union-attr]


def _as_state(record):
    """Adapt an InstanceRecord to the InstanceState shape predicates use."""
    from ..core.predicates import InstanceState

    return InstanceState(
        instance_id=record.instance_id,
        collection_id=record.collection_id,
        status=record.status.value,
        properties=dict(record.properties),
    )
