"""Tentative-allocation strategy (paper, §5).

"This is a hybrid mechanism, where property-based promise requests are met
by marking the chosen resource instances as 'promised', and also
remembering the specific predicate that resulted in this resource
allocation.  If a later promise request is not satisfiable from the pool
of unallocated instances, the manager can consider rearranging these
tentative allocations to allow it continue to meet all previous promises
as well as granting the new request."

The paper's example: a request for 'a room with a view' tentatively takes
room 512; a later request for 'a 5th-floor room' may steal 512 as long as
a different room with a view still covers the first promise.  Concretely,
every grant re-solves the joint matching problem over *all* of this
strategy's live promises (their predicates are remembered in the promise
table) plus the candidate, treating tentatively tagged instances as
movable; the resulting assignment is written back to the instance tags.

The post-action consistency check is self-healing the same way: if an
action consumed a tentatively assigned instance, the check tries to
re-arrange before declaring a violation.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.checking import CheckResult, Demand, check_satisfiable
from ..core.errors import PredicateUnsupported
from ..core.predicates import Predicate, QuantityAtLeast
from ..core.promise import Promise
from ..resources.manager import ResourceManager
from ..resources.records import InstanceStatus
from ..storage.transactions import Transaction
from .base import GrantDecision, IsolationStrategy, Violation


class TentativeAllocationStrategy(IsolationStrategy):
    """Tag chosen instances but re-arrange tags when it admits more."""

    name = "tentative"

    def can_grant(
        self,
        txn: Transaction,
        resources: ResourceManager,
        promise_id: str,
        duration: int,
        predicates: Sequence[Predicate],
        active_promises: Sequence[Promise],
        tagged_instances: Mapping[str, str],
    ) -> GrantDecision:
        """Solve the joint matching (with rearrangement) and retag."""
        _reject_quantity_atoms(predicates)
        demands = [
            Demand(promise.promise_id, tuple(promise.predicates))
            for promise in active_promises
        ]
        demands.append(Demand(promise_id, tuple(predicates)))
        result = self._solve(txn, resources, demands, tagged_instances)
        if not result.ok:
            return GrantDecision.rejected(result.reason)
        self._apply_assignment(
            txn,
            resources,
            result,
            owners={demand.owner_id for demand in demands},
        )
        return GrantDecision.granted(
            assigned=result.instances_for(promise_id)
        )

    def on_release(
        self,
        txn: Transaction,
        resources: ResourceManager,
        promise: Promise,
        consumed: bool,
        active_promises: Sequence[Promise] = (),
        tagged_instances: Mapping[str, str] | None = None,
    ) -> None:
        """Free (or take) every instance tentatively tagged to us."""
        for record in self._instances_of(txn, resources, promise.promise_id):
            if consumed:
                resources.set_instance_status(
                    txn, record.instance_id, InstanceStatus.TAKEN
                )
            else:
                resources.set_instance_status(
                    txn, record.instance_id, InstanceStatus.AVAILABLE
                )

    def check_consistency(
        self,
        txn: Transaction,
        resources: ResourceManager,
        active_promises: Sequence[Promise],
        tagged_instances: Mapping[str, str],
    ) -> list[Violation]:
        """Re-solve the joint matching; rearrange if possible, else report."""
        if not active_promises:
            return []
        demands = [
            Demand(promise.promise_id, tuple(promise.predicates))
            for promise in active_promises
        ]
        result = self._solve(txn, resources, demands, tagged_instances)
        if result.ok:
            self._apply_assignment(
                txn,
                resources,
                result,
                owners={demand.owner_id for demand in demands},
            )
            return []
        failed = result.failed_owners or tuple(
            promise.promise_id for promise in active_promises
        )
        return [Violation(owner, result.reason) for owner in failed]

    # ------------------------------------------------------------ internals

    def _solve(
        self,
        txn: Transaction,
        resources: ResourceManager,
        demands: Sequence[Demand],
        tagged_instances: Mapping[str, str],
    ) -> CheckResult:
        """Joint satisfiability with this strategy's tags treated as movable."""
        owners = {demand.owner_id for demand in demands}
        movable_tags = {
            instance_id: owner
            for instance_id, owner in tagged_instances.items()
            if owner not in owners
            and not self._is_tentative(txn, resources, instance_id)
        }
        return check_satisfiable(
            list(demands), resources.reader(txn), tagged_instances=movable_tags
        )

    def _is_tentative(
        self, txn: Transaction, resources: ResourceManager, instance_id: str
    ) -> bool:
        try:
            return resources.instance(txn, instance_id).tentative
        except Exception:
            return False

    def _apply_assignment(
        self,
        txn: Transaction,
        resources: ResourceManager,
        result: CheckResult,
        owners: set[str],
    ) -> None:
        """Write the new assignment back into the instance tags."""
        new_owner_of: dict[str, str] = {}
        for slot, instance_id in result.assignment.items():
            new_owner_of[instance_id] = slot.owner_id

        # Free instances previously tentatively tagged to one of our owners
        # but no longer assigned to them.
        for owner in owners:
            for record in self._instances_of(txn, resources, owner):
                if new_owner_of.get(record.instance_id) != owner:
                    resources.set_instance_status(
                        txn, record.instance_id, InstanceStatus.AVAILABLE
                    )

        # Tag (or re-tag) every assigned instance.
        for instance_id, owner in new_owner_of.items():
            record = resources.instance(txn, instance_id)
            if (
                record.status is InstanceStatus.PROMISED
                and record.promise_id == owner
                and record.tentative
            ):
                continue
            resources.set_instance_status(
                txn,
                instance_id,
                InstanceStatus.PROMISED,
                promise_id=owner,
                tentative=True,
            )

    def _instances_of(
        self, txn: Transaction, resources: ResourceManager, promise_id: str
    ):
        """All instance records tentatively tagged to ``promise_id``."""
        from ..resources.records import INSTANCES_TABLE, InstanceRecord

        return [
            InstanceRecord.from_dict(payload)  # type: ignore[arg-type]
            for __, payload in txn.scan(
                INSTANCES_TABLE,
                lambda __, record: record.get("promise_id") == promise_id
                and record.get("tentative"),
            )
        ]


def _reject_quantity_atoms(predicates: Sequence[Predicate]) -> None:
    """Tentative allocation manages instances, never counters."""
    for predicate in predicates:
        for branch in predicate.dnf():
            for atom in branch:
                if isinstance(atom, QuantityAtLeast):
                    raise PredicateUnsupported(
                        "tentative allocation cannot promise pool "
                        f"quantities ({atom.describe()})"
                    )
