"""Delegation strategy (paper, §5).

"Promises are made that rely on the promises of third parties.  For
example, a purchase order can be accepted by the merchant if it has
received a promise from the distributor that a backorder will be fulfilled
on time.  In this scenario, the promise is delegated from the merchant to
the merchant's supplier."

A :class:`DelegationStrategy` owns resources whose real state lives behind
another promise maker.  Granting forwards the predicates upstream as a
promise request of their own; the local promise is backed by the upstream
promise id recorded in its metadata.  Releases and consumption propagate
upstream, and the consistency check verifies the upstream promise is still
in force — a third party defaulting on its promise is precisely the
"serious exception" the paper says promise violation becomes (§2).
"""

from __future__ import annotations

from typing import Mapping, Protocol, Sequence

from ..core.predicates import Predicate
from ..core.promise import Promise
from ..resources.manager import ResourceManager
from ..storage.transactions import Transaction
from .base import GrantDecision, IsolationStrategy, Violation

_UPSTREAM_KEY = "upstream_promise"


class UpstreamPromiseMaker(Protocol):
    """What delegation needs from the party it delegates to.

    :class:`~repro.core.manager.PromiseManager` satisfies this protocol
    directly; a remote deployment would satisfy it with a protocol client.
    """

    def request_promise_for(
        self,
        predicates: Sequence[Predicate],
        duration: int,
        client_id: str,
    ):
        """Request a promise; returns a PromiseResponse-like object."""
        ...

    def release(self, promise_id: str, consume: bool = False) -> None:
        """Release (optionally consuming) a previously granted promise."""
        ...

    def is_promise_active(self, promise_id: str) -> bool:
        """True while the promise still binds the upstream maker."""
        ...


class DelegationStrategy(IsolationStrategy):
    """Back local promises with promises from an upstream maker."""

    name = "delegation"

    def __init__(
        self, upstream: UpstreamPromiseMaker, delegate_as: str = "delegator"
    ) -> None:
        self._upstream = upstream
        self._delegate_as = delegate_as

    @property
    def upstream(self) -> UpstreamPromiseMaker:
        """The promise maker this strategy delegates to."""
        return self._upstream

    def can_grant(
        self,
        txn: Transaction,
        resources: ResourceManager,
        promise_id: str,
        duration: int,
        predicates: Sequence[Predicate],
        active_promises: Sequence[Promise],
        tagged_instances: Mapping[str, str],
    ) -> GrantDecision:
        """Forward the predicates upstream; grant iff upstream grants.

        Note the trust boundary: the upstream request is a *separate*
        interaction in the upstream's own trust domain.  If our local
        transaction later rolls back (another strategy in the same request
        rejected), the manager compensates by releasing the upstream
        promise — see the manager's grant path.
        """
        response = self._upstream.request_promise_for(
            predicates=list(predicates),
            duration=duration,
            client_id=self._delegate_as,
        )
        if not response.accepted:
            return GrantDecision.rejected(
                f"upstream rejected delegation: {response.reason}"
            )
        return GrantDecision.granted(**{_UPSTREAM_KEY: response.promise_id})

    external = True

    def on_release(
        self,
        txn: Transaction,
        resources: ResourceManager,
        promise: Promise,
        consumed: bool,
        active_promises: Sequence[Promise] = (),
        tagged_instances: Mapping[str, str] | None = None,
    ):
        """Propagate the release (and consumption) upstream — deferred.

        The upstream release happens in the *upstream's* trust domain and
        cannot be rolled back by our local transaction, so it must only
        run once that transaction has committed; we return a callable for
        the manager to invoke post-commit.  A *consumed* release of the
        upstream resources is validated eagerly (the upstream promise
        must still be live — if the third party defaulted, that is a
        promise violation and the local request must fail, §2), while the
        release itself still runs post-commit.
        """
        from ..core.errors import (
            PromiseExpired,
            PromiseStateError,
            PromiseViolation,
            UnknownPromise,
        )

        upstream_id = self.meta_of(promise).get(_UPSTREAM_KEY)
        if not isinstance(upstream_id, str) or not upstream_id:
            return None
        if consumed and not self._upstream.is_promise_active(upstream_id):
            raise PromiseViolation(
                [promise.promise_id],
                f"upstream promise {upstream_id} defaulted",
            )

        def release_upstream() -> None:
            try:
                self._upstream.release(upstream_id, consume=consumed)
            except (PromiseExpired, UnknownPromise, PromiseStateError):
                # Already gone upstream: nothing left to hand back.
                pass

        return release_upstream

    def compensate(self, decision: GrantDecision) -> None:
        """Release the upstream promise after a local rollback."""
        upstream_id = decision.meta.get(_UPSTREAM_KEY)
        if isinstance(upstream_id, str) and upstream_id:
            self._upstream.release(upstream_id, consume=False)

    def check_consistency(
        self,
        txn: Transaction,
        resources: ResourceManager,
        active_promises: Sequence[Promise],
        tagged_instances: Mapping[str, str],
    ) -> list[Violation]:
        """Every live local promise needs a live upstream promise."""
        violations: list[Violation] = []
        for promise in active_promises:
            upstream_id = self.meta_of(promise).get(_UPSTREAM_KEY)
            if not isinstance(upstream_id, str) or not upstream_id:
                violations.append(
                    Violation(
                        promise.promise_id,
                        "delegated promise lost its upstream reference",
                    )
                )
            elif not self._upstream.is_promise_active(upstream_id):
                violations.append(
                    Violation(
                        promise.promise_id,
                        f"upstream promise {upstream_id} is no longer active",
                    )
                )
        return violations

