"""Resource-pool (escrow-style) strategy for anonymous resources.

"In managing anonymous interchangeable resources, it is common to keep the
available instances of each resource in a pool, and move them to a
separate 'allocated' pool to ensure that a promise can be honoured. ...
This technique is similar to escrow locking." (paper, §5)

Granting moves the promised quantity from the pool's *available* counter
into *allocated*; releasing moves it back (or consumes it when the release
rides on a purchase).  Because promised units physically leave the
available pool, concurrent activity can never violate such a promise — the
post-action consistency check only guards against application code
tampering with the allocated counter directly.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.errors import PredicateUnsupported, UnknownResource
from ..core.predicates import QuantityAtLeast
from ..core.promise import Promise
from ..resources.manager import InsufficientResources, ResourceManager
from ..storage.transactions import Transaction
from .base import GrantDecision, IsolationStrategy, Violation

_ESCROW_KEY = "escrow"


class ResourcePoolStrategy(IsolationStrategy):
    """Escrow promised quantities into the pool's allocated counter."""

    name = "resource_pool"

    def can_grant(
        self,
        txn: Transaction,
        resources: ResourceManager,
        promise_id: str,
        duration: int,
        predicates: Sequence,
        active_promises: Sequence[Promise],
        tagged_instances: Mapping[str, str],
    ) -> GrantDecision:
        """Reserve the demanded quantities; reject on any shortfall."""
        escrow: dict[str, int] = {}
        for atom in self.flatten_atoms(predicates):
            if not isinstance(atom, QuantityAtLeast):
                raise PredicateUnsupported(
                    f"resource-pool strategy cannot promise {atom.describe()}"
                )
            escrow[atom.pool_id] = escrow.get(atom.pool_id, 0) + atom.amount
        for pool_id, amount in escrow.items():
            try:
                resources.reserve(txn, pool_id, amount)
            except InsufficientResources as exc:
                return GrantDecision.rejected(
                    f"pool {pool_id!r} has {exc.available} units, "
                    f"promise needs {exc.requested}"
                )
            except UnknownResource:
                return GrantDecision.rejected(f"unknown pool {pool_id!r}")
        return GrantDecision.granted(**{_ESCROW_KEY: escrow})

    def on_release(
        self,
        txn: Transaction,
        resources: ResourceManager,
        promise: Promise,
        consumed: bool,
        active_promises: Sequence[Promise] = (),
        tagged_instances: Mapping[str, str] | None = None,
    ) -> None:
        """Return escrowed units to the pool, or consume them."""
        escrow = self.meta_of(promise).get(_ESCROW_KEY, {})
        if not isinstance(escrow, Mapping):
            return
        for pool_id, amount in escrow.items():
            if consumed:
                resources.consume_allocated(txn, pool_id, int(amount))
            else:
                resources.unreserve(txn, pool_id, int(amount))

    def check_consistency(
        self,
        txn: Transaction,
        resources: ResourceManager,
        active_promises: Sequence[Promise],
        tagged_instances: Mapping[str, str],
    ) -> list[Violation]:
        """Allocated counters must still cover every escrowed promise."""
        needed: dict[str, int] = {}
        owners: dict[str, list[str]] = {}
        for promise in active_promises:
            escrow = self.meta_of(promise).get(_ESCROW_KEY, {})
            if not isinstance(escrow, Mapping):
                continue
            for pool_id, amount in escrow.items():
                needed[pool_id] = needed.get(pool_id, 0) + int(amount)
                owners.setdefault(pool_id, []).append(promise.promise_id)
        violations: list[Violation] = []
        for pool_id, amount in needed.items():
            try:
                allocated = resources.pool(txn, pool_id).allocated
            except UnknownResource:
                allocated = 0
            if allocated < amount:
                violations.extend(
                    Violation(
                        promise_id,
                        f"pool {pool_id!r} allocation {allocated} no longer "
                        f"covers escrowed total {amount}",
                    )
                    for promise_id in owners[pool_id]
                )
        return violations
