"""Strategy registry and selection heuristics.

The registry maps each resource (pool id, instance id, or collection id)
to the :class:`IsolationStrategy` that implements promises over it.  The
promise manager consults it to route every predicate.

:func:`choose_strategy` implements the "simple heuristics to choose an
appropriate implementation technique for each class of resources" the
paper lists as future work (§10):

* pure counters (anonymous pools) → resource-pool escrow, because the sum
  check is O(1) and structurally violation-proof;
* individually named instances → allocated tags ('soft locks'), matching
  standard business practice (§2, §5);
* property-described collections → tentative allocation while the
  collection is small enough that re-matching stays cheap, otherwise pure
  satisfiability checking, which defers instance choice entirely (§5).
"""

from __future__ import annotations

from typing import Iterable

from .allocated_tags import AllocatedTagsStrategy
from .base import IsolationStrategy
from .resource_pool import ResourcePoolStrategy
from .satisfiability import SatisfiabilityStrategy
from .tentative import TentativeAllocationStrategy

TENTATIVE_COLLECTION_LIMIT = 200
"""Above this many instances, re-matching on every grant stops paying for
itself and the heuristic prefers pure satisfiability checking."""


class StrategyRegistry:
    """Resource → strategy routing table.

    Unassigned resources fall back to the default strategy (pure
    satisfiability checking, the technique of the paper's prototype, §8).
    """

    def __init__(self, default: IsolationStrategy | None = None) -> None:
        self._default = default or SatisfiabilityStrategy()
        self._by_resource: dict[str, IsolationStrategy] = {}
        self._strategies: dict[str, IsolationStrategy] = {
            self._default.name: self._default
        }

    @property
    def default(self) -> IsolationStrategy:
        """The fallback strategy for unassigned resources."""
        return self._default

    def assign(self, resource_id: str, strategy: IsolationStrategy) -> None:
        """Route promises over ``resource_id`` to ``strategy``."""
        self._by_resource[resource_id] = strategy
        self._strategies[strategy.name] = strategy

    def assign_many(
        self, resource_ids: Iterable[str], strategy: IsolationStrategy
    ) -> None:
        """Route several resources to the same strategy."""
        for resource_id in resource_ids:
            self.assign(resource_id, strategy)

    def strategy_for(self, resource_id: str) -> IsolationStrategy:
        """The strategy owning ``resource_id`` (default when unassigned)."""
        return self._by_resource.get(resource_id, self._default)

    def assigned(self, resource_id: str) -> IsolationStrategy | None:
        """The explicitly assigned strategy, or ``None``.

        The promise manager uses this to fall through from an instance id
        to its collection's strategy: the same instances support named and
        anonymous/property views simultaneously (§3.2), so a promise for
        'seat 24G' must be handled by whatever technique owns the seat
        collection.
        """
        return self._by_resource.get(resource_id)

    def strategies(self) -> list[IsolationStrategy]:
        """Every distinct strategy the registry knows, default included."""
        return list(self._strategies.values())

    def assignments(self) -> dict[str, str]:
        """Resource id → strategy name (introspection/debugging)."""
        return {
            resource_id: strategy.name
            for resource_id, strategy in sorted(self._by_resource.items())
        }


def choose_strategy(
    resource_kind: str,
    collection_size: int | None = None,
) -> IsolationStrategy:
    """Pick an implementation technique for a class of resources.

    ``resource_kind`` is ``"pool"``, ``"named"`` or ``"collection"``;
    ``collection_size`` tunes the tentative-vs-satisfiability trade-off
    for collections.
    """
    if resource_kind == "pool":
        return ResourcePoolStrategy()
    if resource_kind == "named":
        return AllocatedTagsStrategy()
    if resource_kind == "collection":
        if collection_size is not None and collection_size > TENTATIVE_COLLECTION_LIMIT:
            return SatisfiabilityStrategy()
        return TentativeAllocationStrategy()
    raise ValueError(
        f"unknown resource kind {resource_kind!r} "
        "(expected 'pool', 'named' or 'collection')"
    )
