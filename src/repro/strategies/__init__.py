"""Implementation techniques for promises (paper, Section 5).

Five pluggable strategies — resource pools (escrow), allocated tags (soft
locks), pure satisfiability checking, tentative allocation with
rearrangement, and delegation to upstream promise makers — plus the
registry that routes each resource to its technique.
"""

from .allocated_tags import AllocatedTagsStrategy
from .base import GrantDecision, IsolationStrategy, Violation
from .delegation import DelegationStrategy, UpstreamPromiseMaker
from .registry import StrategyRegistry, choose_strategy, TENTATIVE_COLLECTION_LIMIT
from .resource_pool import ResourcePoolStrategy
from .satisfiability import SatisfiabilityStrategy
from .tentative import TentativeAllocationStrategy

__all__ = [
    "AllocatedTagsStrategy",
    "DelegationStrategy",
    "GrantDecision",
    "IsolationStrategy",
    "ResourcePoolStrategy",
    "SatisfiabilityStrategy",
    "StrategyRegistry",
    "TENTATIVE_COLLECTION_LIMIT",
    "TentativeAllocationStrategy",
    "UpstreamPromiseMaker",
    "Violation",
]
