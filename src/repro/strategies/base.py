"""Strategy interface for promise implementation techniques.

Section 5 of the paper catalogues implementation techniques — resource
pools, allocated tags, satisfiability checking, tentative allocation,
delegation — and insists they stay *invisible to clients*: "clients can
express their resource requirements by using abstract predicates ... and
the promise manager that receives these requests can then use whatever
techniques it wants to implement the promises".

Accordingly, each technique is an :class:`IsolationStrategy` plugged into
the promise manager per resource.  The manager routes each predicate's
atoms to the strategy owning the resources they mention; all strategy work
happens inside the manager's per-request store transaction, so a failed
grant (or a post-action violation) rolls back every side effect at once.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from ..core.predicates import AtomicPredicate, Predicate
from ..core.promise import Promise
from ..resources.manager import ResourceManager
from ..storage.transactions import Transaction


@dataclass
class GrantDecision:
    """Outcome of a strategy's attempt to grant its share of a request.

    ``meta`` is strategy bookkeeping recorded in ``promise.meta[strategy
    name]`` — escrowed amounts, tagged instance ids, upstream promise ids —
    whatever the strategy needs at release/expiry/consistency time.
    """

    ok: bool
    reason: str = ""
    meta: dict[str, object] = field(default_factory=dict)

    @classmethod
    def granted(cls, **meta: object) -> "GrantDecision":
        """Build a successful decision."""
        return cls(ok=True, meta=dict(meta))

    @classmethod
    def rejected(cls, reason: str) -> "GrantDecision":
        """Build a rejection (never blocks — §9)."""
        return cls(ok=False, reason=reason)


@dataclass(frozen=True)
class Violation:
    """A granted promise an action's state changes have broken (§8)."""

    promise_id: str
    detail: str


class IsolationStrategy(ABC):
    """One implementation technique from §5.

    Lifecycle hooks (all run inside the manager's transaction):

    * :meth:`can_grant` — evaluate (and, for techniques that mutate
      resource state at grant time, *apply*) a candidate's atoms.  Failure
      simply aborts the surrounding transaction, undoing any mutations.
    * :meth:`on_release` — the client handed the promise back; ``consumed``
      is True when the release rode atomically on a successful action that
      used up the resources (§4, second atomicity requirement).
    * :meth:`on_expire` — duration elapsed; by default identical to an
      unconsumed release.
    * :meth:`check_consistency` — the post-action sweep (§8 'Executing
      Actions'): verify every active promise this strategy owns is still
      honourable, returning violations for the manager to roll back.
    """

    name: str = "abstract"

    @abstractmethod
    def can_grant(
        self,
        txn: Transaction,
        resources: ResourceManager,
        promise_id: str,
        duration: int,
        predicates: Sequence[Predicate],
        active_promises: Sequence[Promise],
        tagged_instances: Mapping[str, str],
    ) -> GrantDecision:
        """Try to grant ``predicates`` for ``promise_id``.

        ``active_promises`` are the live promises owned by this strategy;
        ``tagged_instances`` maps every instance currently carrying a
        promise tag to the owning promise id (across *all* strategies).
        Strategies that cannot handle disjunctions flatten each predicate
        with ``conjuncts()`` and let :class:`PredicateUnsupported`
        propagate.
        """

    @abstractmethod
    def on_release(
        self,
        txn: Transaction,
        resources: ResourceManager,
        promise: Promise,
        consumed: bool,
        active_promises: Sequence[Promise] = (),
        tagged_instances: Mapping[str, str] | None = None,
    ) -> Callable[[], None] | None:
        """Undo (or finalise, when ``consumed``) the grant-time effects.

        A consumed release *takes* the promised resources on the client's
        behalf: escrowed units are drained, tagged instances become
        'taken', and the satisfiability strategy picks and takes concrete
        instances that keep every other promise honourable.  This keeps
        the implementation technique invisible to application code, as
        §5 requires.  ``active_promises`` are the other live promises this
        strategy owns (needed to take resources safely).

        Effects *outside* the local transaction (delegation's upstream
        release) must not happen here — the surrounding transaction may
        still abort, and an upstream release cannot be rolled back.
        Return a callable instead; the manager runs it only after the
        local transaction commits.
        """

    def on_expire(
        self,
        txn: Transaction,
        resources: ResourceManager,
        promise: Promise,
    ) -> Callable[[], None] | None:
        """Default expiry behaviour: an unconsumed release."""
        return self.on_release(txn, resources, promise, consumed=False)

    def compensate(self, decision: GrantDecision) -> None:
        """Undo grant effects that live *outside* the local transaction.

        Only relevant to strategies with external side effects
        (delegation): when a sibling strategy rejects after this one
        granted, the local transaction rolls back automatically but the
        upstream promise must be released explicitly.
        """

    external = False
    """True when grant effects escape the local transaction (delegation)."""

    @abstractmethod
    def check_consistency(
        self,
        txn: Transaction,
        resources: ResourceManager,
        active_promises: Sequence[Promise],
        tagged_instances: Mapping[str, str],
    ) -> list[Violation]:
        """Post-action check: are all owned promises still honourable?"""

    # ------------------------------------------------------------ helpers

    def meta_of(self, promise: Promise) -> dict[str, object]:
        """This strategy's bookkeeping slice of a promise's metadata."""
        meta = promise.meta.get(self.name, {})
        return dict(meta) if isinstance(meta, Mapping) else {}

    @staticmethod
    def flatten_atoms(predicates: Sequence[Predicate]) -> list[AtomicPredicate]:
        """Flatten pure conjunctions to their atoms.

        Raises :class:`~repro.core.errors.PredicateUnsupported` when any
        predicate contains Or/Not — techniques that commit concrete
        resources at grant time cannot hedge across alternatives.
        """
        atoms: list[AtomicPredicate] = []
        for predicate in predicates:
            atoms.extend(predicate.conjuncts())
        return atoms

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"
