"""repro.obs — unified observability: metrics, tracing, introspection.

The paper defines the Promises protocol purely by message flows
(Figures 1 and 2); this package makes those flows *observable* at
production scale: a thread-safe :class:`MetricsRegistry` every
subsystem's counters live in, envelope-propagated trace contexts that
stitch one client request across retries, scatter-gather legs, shard
transactions and the replication ack gate, and the export surfaces
(``_metrics`` / ``_spans`` endpoints, ``repro top``, ``repro trace``)
that let an operator watch a fleet live.
"""

from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    StatsView,
    merge_counters,
    snapshot_delta,
    wal_observer,
)
from .trace import (
    Span,
    SpanRecorder,
    TraceContext,
    new_span_id,
    new_trace_id,
    render_trace,
    spans_from_jsonl,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "StatsView",
    "DEFAULT_LATENCY_BUCKETS",
    "merge_counters",
    "snapshot_delta",
    "wal_observer",
    "Span",
    "SpanRecorder",
    "TraceContext",
    "new_trace_id",
    "new_span_id",
    "render_trace",
    "spans_from_jsonl",
]
