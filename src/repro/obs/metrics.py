"""Thread-safe metrics registry: counters, gauges, latency histograms.

The substrate grew one ad-hoc ``stats`` dataclass per subsystem
(client, server, gateway, admission, transport) — each a bag of plain
``int`` fields bumped with unsynchronized ``+=``.  That was tolerable
while every component lived on one thread; it stopped being true the
moment the asyncio server, the gateway's scatter-gather pool and the
replication shipper started touching the same numbers.  This module
replaces them all with one primitive:

* a :class:`MetricsRegistry` of named instruments with hierarchical
  dotted names (``server.shed``, ``gateway.breaker_fast_failures``,
  ``repl.ship_lag_lsn``) — every mutation happens under one registry
  lock, so concurrent increments never lose updates;
* :class:`Counter` (monotonic), :class:`Gauge` (set/add), and
  fixed-bucket :class:`Histogram` (latency distributions with a stable
  bucket layout, so snapshots from different processes merge);
* :meth:`MetricsRegistry.snapshot` / :meth:`MetricsRegistry.delta`
  export everything as plain JSON-able dicts — the payload the server's
  ``_metrics`` endpoint returns and ``repro top`` renders;
* :class:`NullRegistry`, a no-op drop-in whose mutation methods do
  nothing, so a benchmark can measure the instrumented pipeline with
  observability priced at (almost) zero.

The old ``stats`` attributes survive as :class:`StatsView` subclasses:
attribute reads pass through to the registry, so every pre-existing
``server.stats.shed`` call site keeps working — now backed by an
atomic counter instead of a racy field.
"""

from __future__ import annotations

import json
import threading
from typing import Callable, Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "StatsView",
    "DEFAULT_LATENCY_BUCKETS",
    "merge_counters",
]

#: Fixed upper bounds (seconds) for latency histograms.  Chosen to span
#: in-process dispatch (~100 µs) through cross-shard scatter-gathers and
#: failover stalls (~1 s+); the terminal +inf bucket is implicit.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


class Counter:
    """A monotonically increasing count, mutated under the registry lock."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._value = 0
        self._lock = lock

    def inc(self, amount: int = 1) -> None:
        """Atomically add ``amount`` (must be >= 0)."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time level (queue depth, replication lag, tokens)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket distribution; the layout never changes after creation.

    ``buckets`` are inclusive upper bounds; one implicit overflow bucket
    catches everything larger.  Stable bucket layouts are what let
    ``repro top`` merge scrapes from every shard of a fleet.
    """

    __slots__ = ("name", "buckets", "counts", "count", "total", "_lock")

    def __init__(
        self,
        name: str,
        lock: threading.Lock,
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        self.name = name
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("a histogram needs at least one bucket bound")
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self._lock = lock

    def observe(self, value: float) -> None:
        """Record one sample."""
        with self._lock:
            self.count += 1
            self.total += value
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self.counts[index] += 1
                    return
            self.counts[-1] += 1

    def to_dict(self) -> dict[str, object]:
        with self._lock:
            return {
                "count": self.count,
                "sum": self.total,
                "buckets": {
                    repr(bound): self.counts[index]
                    for index, bound in enumerate(self.buckets)
                },
                "overflow": self.counts[-1],
            }


class MetricsRegistry:
    """A named, thread-safe collection of counters, gauges and histograms.

    One lock covers instrument creation *and* every mutation: the
    fleet's hot paths increment a handful of counters per request, and
    a single uncontended lock acquisition costs far less than the XML
    codec work surrounding it.  Instruments are created on first use,
    so call sites never pre-declare anything.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    @property
    def enabled(self) -> bool:
        """False only on the no-op registry."""
        return True

    # ----------------------------------------------------------- instruments

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = Counter(name, self._lock)
                self._counters[name] = instrument
            return instrument

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = Gauge(name, self._lock)
                self._gauges[name] = instrument
            return instrument

    def histogram(
        self, name: str, buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        """Get or create the histogram called ``name``."""
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = Histogram(name, self._lock, buckets)
                self._histograms[name] = instrument
            return instrument

    # ------------------------------------------------------------- shortcuts

    def inc(self, name: str, amount: int = 1) -> None:
        """Atomically increment the counter called ``name``."""
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set the gauge called ``name``."""
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        """Record one histogram sample under ``name``."""
        self.histogram(name).observe(value)

    def value(self, name: str) -> float:
        """Current value of a counter or gauge (0 when never touched)."""
        with self._lock:
            counter = self._counters.get(name)
            if counter is not None:
                return counter._value
            gauge = self._gauges.get(name)
            if gauge is not None:
                return gauge._value
        return 0

    # --------------------------------------------------------------- export

    def snapshot(self) -> dict[str, object]:
        """Everything, as a plain JSON-able dict.

        Shape: ``{"counters": {name: int}, "gauges": {name: float},
        "histograms": {name: {count, sum, buckets, overflow}}}`` —
        exactly what the SOAP value codec can carry, so the server's
        ``_metrics`` endpoint returns this verbatim.
        """
        with self._lock:
            counters = {name: c._value for name, c in self._counters.items()}
            gauges = {name: g._value for name, g in self._gauges.items()}
            histograms = list(self._histograms.values())
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": {h.name: h.to_dict() for h in histograms},
        }

    def delta(self, previous: Mapping[str, object]) -> dict[str, object]:
        """Counters and histogram counts since ``previous`` snapshot.

        Gauges are levels, not totals — the delta reports their current
        value unchanged.  ``repro top --watch`` uses this to turn two
        scrapes into a rates table.
        """
        current = self.snapshot()
        return snapshot_delta(previous, current)

    def to_json(self, indent: int | None = None) -> str:
        """The snapshot, serialised."""
        return json.dumps(self.snapshot(), sort_keys=True, indent=indent)


def snapshot_delta(
    previous: Mapping[str, object], current: Mapping[str, object]
) -> dict[str, object]:
    """Difference of two :meth:`MetricsRegistry.snapshot` dicts."""
    prev_counters = previous.get("counters", {})
    assert isinstance(prev_counters, Mapping)
    counters = {
        name: value - int(prev_counters.get(name, 0))  # type: ignore[call-overload]
        for name, value in current.get("counters", {}).items()  # type: ignore[union-attr]
    }
    prev_hists = previous.get("histograms", {})
    assert isinstance(prev_hists, Mapping)
    histograms = {}
    for name, hist in current.get("histograms", {}).items():  # type: ignore[union-attr]
        prev = prev_hists.get(name, {})
        assert isinstance(prev, Mapping)
        histograms[name] = {
            "count": hist["count"] - int(prev.get("count", 0)),  # type: ignore[call-overload]
            "sum": hist["sum"] - float(prev.get("sum", 0.0)),  # type: ignore[arg-type]
        }
    return {
        "counters": counters,
        "gauges": dict(current.get("gauges", {})),  # type: ignore[call-overload]
        "histograms": histograms,
    }


def merge_counters(snapshots: Iterable[Mapping[str, object]]) -> dict[str, int]:
    """Sum the counters of several snapshots (fleet-wide totals)."""
    totals: dict[str, int] = {}
    for snapshot in snapshots:
        counters = snapshot.get("counters", {})
        if not isinstance(counters, Mapping):
            continue
        for name, value in counters.items():
            totals[name] = totals.get(name, 0) + int(value)  # type: ignore[call-overload]
    return totals


class _NullInstrument:
    """One shared do-nothing counter/gauge/histogram."""

    __slots__ = ()
    name = "null"
    value = 0
    count = 0
    total = 0.0
    buckets: tuple[float, ...] = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def to_dict(self) -> dict[str, object]:
        return {"count": 0, "sum": 0.0, "buckets": {}, "overflow": 0}


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """A registry whose mutations cost one attribute lookup and a pass.

    Benchmarks hand this to the stack to measure what observability
    itself costs; components treat it exactly like the real thing.
    """

    @property
    def enabled(self) -> bool:
        return False

    def counter(self, name: str):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def gauge(self, name: str):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def histogram(self, name: str, buckets=DEFAULT_LATENCY_BUCKETS):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def inc(self, name: str, amount: int = 1) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass


#: Shared no-op registry for callers that just want metrics switched off.
NULL_REGISTRY = NullRegistry()


class StatsView:
    """Attribute-compatible facade over a registry's counters.

    Subclasses declare ``_prefix`` and ``_fields``; reading
    ``view.<field>`` returns the live value of the counter
    ``"<prefix>.<field>"``.  This is what keeps five PRs' worth of
    ``server.stats.shed`` / ``gateway.stats.compensations`` call sites
    working after the migration — the numbers now come from atomic
    registry counters instead of racy dataclass fields.
    """

    _prefix: str = ""
    _fields: tuple[str, ...] = ()

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        # A standalone view (no registry supplied) gets its own private
        # registry, so ``ServerStats()`` still constructs and reads as
        # all-zeros exactly like the old dataclass default.
        self.registry = registry if registry is not None else MetricsRegistry()

    def __getattr__(self, name: str):
        if name in type(self)._fields:
            return int(self.registry.value(f"{type(self)._prefix}.{name}"))
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def as_dict(self) -> dict[str, int]:
        """All fields at once (handy for logs and tests)."""
        return {name: getattr(self, name) for name in type(self)._fields}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(
            f"{name}={getattr(self, name)}" for name in type(self)._fields
        )
        return f"{type(self).__name__}({fields})"


def wal_observer(registry: MetricsRegistry) -> Callable[[object], None]:
    """A WAL ``subscribe`` observer that counts appends into ``registry``.

    Counts every appended record as ``wal.appends`` and breaks out the
    two operationally interesting boundaries: ``wal.commits`` (the unit
    of durable work) and ``wal.checkpoints`` (log truncations).  Duck-
    typed against :class:`~repro.storage.wal.LogRecord` so the storage
    layer needs no observability import.
    """

    def observe(record: object) -> None:
        registry.inc("wal.appends")
        name = getattr(getattr(record, "record_type", None), "name", "")
        if name == "COMMIT":
            registry.inc("wal.commits")
        elif name == "CHECKPOINT":
            registry.inc("wal.checkpoints")

    return observe
