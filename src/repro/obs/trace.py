"""Envelope-propagated distributed tracing for the promise pipeline.

One client request touches many components before its reply comes back:
the client's retry loop, the gateway's scatter-gather legs, each shard
server's transaction, the replication ack gate.  This module stitches
those into one causally ordered history:

* :class:`TraceContext` — the ``(trace-id, span-id, parent-span-id)``
  triple carried on every :class:`~repro.protocol.messages.Message` as
  a ``<trace>`` element in the SOAP header.  Each hop derives a *child*
  context for its own span and stamps outgoing messages with it, so a
  receiver's spans parent to the sender's.
* :class:`SpanRecorder` — a bounded in-memory ring of finished
  :class:`Span` records with JSONL export.  Recording is cheap (one
  deque append under a lock) and bounded, so servers can leave a
  recorder attached permanently and expose it via the ``_spans``
  endpoint.
* :func:`render_trace` — the assembled span tree ``repro trace
  <trace-id>`` prints.

Spans record start/end, outcome, the request's remaining deadline, the
server's replication epoch, and crash-point annotations — enough to
re-verify protocol invariants (no double grant across epochs) from the
trace history alone, which is exactly what the nemesis span auditor
does.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Mapping

from ..faults.crashpoints import SimulatedCrash

__all__ = [
    "TraceContext",
    "Span",
    "SpanRecorder",
    "new_trace_id",
    "new_span_id",
    "render_trace",
    "spans_from_jsonl",
]


def new_trace_id() -> str:
    """A fresh 128-bit trace id (hex)."""
    return uuid.uuid4().hex


def new_span_id() -> str:
    """A fresh 64-bit span id (hex)."""
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class TraceContext:
    """The propagation triple carried in the ``<trace>`` header element."""

    trace_id: str
    span_id: str
    parent_span_id: str | None = None

    @classmethod
    def root(cls) -> "TraceContext":
        """A fresh context starting a new trace."""
        return cls(trace_id=new_trace_id(), span_id=new_span_id())

    def child(self) -> "TraceContext":
        """A context for a span caused by this one (same trace)."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=new_span_id(),
            parent_span_id=self.span_id,
        )


@dataclass
class Span:
    """One finished (or failed) unit of work inside a trace."""

    name: str
    trace_id: str
    span_id: str
    parent_span_id: str | None = None
    start: float = 0.0          # wall clock, seconds since epoch
    duration: float = 0.0       # seconds
    outcome: str = "ok"
    attributes: dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
            "start": self.start,
            "duration": self.duration,
            "outcome": self.outcome,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Span":
        attributes = payload.get("attributes", {})
        return cls(
            name=str(payload.get("name", "")),
            trace_id=str(payload.get("trace_id", "")),
            span_id=str(payload.get("span_id", "")),
            parent_span_id=(
                str(payload["parent_span_id"])
                if payload.get("parent_span_id") is not None
                else None
            ),
            start=float(payload.get("start", 0.0)),  # type: ignore[arg-type]
            duration=float(payload.get("duration", 0.0)),  # type: ignore[arg-type]
            outcome=str(payload.get("outcome", "ok")),
            attributes=dict(attributes) if isinstance(attributes, Mapping) else {},
        )


class ActiveSpan:
    """A span being recorded; annotate it and set its outcome as you go."""

    __slots__ = ("context", "span", "_recorder", "_started")

    def __init__(
        self, recorder: "SpanRecorder", context: TraceContext, span: Span
    ) -> None:
        self.context = context
        self.span = span
        self._recorder = recorder
        self._started = time.perf_counter()

    def annotate(self, **attributes: object) -> None:
        """Attach attributes (epoch, shard, crash point, …) to the span."""
        self.span.attributes.update(
            {k: v for k, v in attributes.items() if v is not None}
        )

    def set_outcome(self, outcome: str) -> None:
        self.span.outcome = outcome

    def finish(self) -> None:
        self.span.duration = time.perf_counter() - self._started
        self._recorder.record(self.span)


class SpanRecorder:
    """Bounded in-memory span sink: ring buffer plus JSONL export.

    ``capacity`` bounds memory the way the wire log and reply cache are
    bounded — a server under heavy traced traffic simply forgets its
    oldest spans.  Thread-safe: the asyncio loop, the gateway's
    scatter pool and blocking clients can all record concurrently.
    """

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = capacity
        self._spans: deque[Span] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    # ------------------------------------------------------------ recording

    def record(self, span: Span) -> None:
        """Append one finished span."""
        with self._lock:
            self._spans.append(span)

    @contextmanager
    def span(
        self,
        name: str,
        parent: TraceContext | None = None,
        context: TraceContext | None = None,
        **attributes: object,
    ) -> Iterator[ActiveSpan]:
        """Record one span around a block.

        ``parent`` is the *carried* context (from the message) — the new
        span becomes its child.  Pass ``context`` instead to record the
        span at that exact context (the caller already derived it).
        With neither, the span roots a brand-new trace.

        A :class:`SimulatedCrash` escaping the block marks the span
        ``crash`` and annotates the crash point — the span is recorded
        *before* the exception unwinds, exactly like a crashing process
        whose trace buffer survives in a core dump.
        """
        if context is None:
            context = parent.child() if parent is not None else TraceContext.root()
        span = Span(
            name=name,
            trace_id=context.trace_id,
            span_id=context.span_id,
            parent_span_id=context.parent_span_id,
            start=time.time(),
            attributes={k: v for k, v in attributes.items() if v is not None},
        )
        active = ActiveSpan(self, context, span)
        try:
            yield active
        except SimulatedCrash as exc:
            active.set_outcome("crash")
            active.annotate(crash_point=exc.point)
            raise
        except Exception as exc:
            if span.outcome == "ok":
                active.set_outcome(f"error:{type(exc).__name__}")
            raise
        finally:
            active.finish()

    # -------------------------------------------------------------- reading

    def spans(self, trace_id: str | None = None) -> list[Span]:
        """Recorded spans, oldest first, optionally filtered by trace."""
        with self._lock:
            spans = list(self._spans)
        if trace_id is None:
            return spans
        return [span for span in spans if span.trace_id == trace_id]

    def trace_ids(self) -> list[str]:
        """Distinct trace ids currently held, oldest first."""
        return list(dict.fromkeys(span.trace_id for span in self.spans()))

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    # -------------------------------------------------------------- export

    def export_jsonl(self, path: str | Path, trace_id: str | None = None) -> int:
        """Write spans to ``path`` as JSON lines; returns how many."""
        spans = self.spans(trace_id)
        with open(path, "w", encoding="utf-8") as handle:
            for span in spans:
                handle.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
        return len(spans)

    def dump_jsonl(self, trace_id: str | None = None) -> str:
        """The JSONL export as a string."""
        return "".join(
            json.dumps(span.to_dict(), sort_keys=True) + "\n"
            for span in self.spans(trace_id)
        )


def spans_from_jsonl(text: str) -> list[Span]:
    """Parse a JSONL export back into spans (blank lines ignored)."""
    spans = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            spans.append(Span.from_dict(json.loads(line)))
    return spans


def render_trace(spans: Iterable[Span], trace_id: str | None = None) -> str:
    """The assembled span tree, one line per span.

    Spans whose parent is missing from the set (dropped by a ring
    buffer, or a component that was never scraped) are promoted to
    roots, so a partial scrape still renders.
    """
    pool = [
        span
        for span in spans
        if trace_id is None or span.trace_id == trace_id
    ]
    if not pool:
        return "(no spans)"
    # Deduplicate by span id (the same span can arrive from both a local
    # export and a server scrape), keeping the first occurrence.
    seen: dict[str, Span] = {}
    for span in pool:
        seen.setdefault(span.span_id, span)
    pool = sorted(seen.values(), key=lambda span: span.start)
    by_parent: dict[str | None, list[Span]] = {}
    ids = {span.span_id for span in pool}
    for span in pool:
        parent = span.parent_span_id if span.parent_span_id in ids else None
        by_parent.setdefault(parent, []).append(span)

    lines: list[str] = []
    trace_ids = list(dict.fromkeys(span.trace_id for span in pool))
    for tid in trace_ids:
        lines.append(f"trace {tid}")
        roots = [s for s in by_parent.get(None, []) if s.trace_id == tid]
        for root in roots:
            _render_subtree(root, by_parent, lines, depth=1)
    return "\n".join(lines)


def _render_subtree(
    span: Span,
    by_parent: Mapping[str | None, list[Span]],
    lines: list[str],
    depth: int,
) -> None:
    extras = []
    for key in ("shard", "epoch", "deadline_remaining", "crash_point"):
        value = span.attributes.get(key)
        if value is not None:
            if isinstance(value, float):
                extras.append(f"{key}={value:.3f}")
            else:
                extras.append(f"{key}={value}")
    detail = f"  [{', '.join(extras)}]" if extras else ""
    lines.append(
        f"{'  ' * depth}{span.name}  {span.duration * 1000:.2f} ms  "
        f"{span.outcome}{detail}"
    )
    for child in by_parent.get(span.span_id, []):
        _render_subtree(child, by_parent, lines, depth + 1)
