"""Promise, promise-request and promise-response model.

"A Promise is an agreement between a client application (a 'promise
client') and a service (a 'promise maker').  By accepting a promise
request, a service guarantees that some set of conditions ('predicates')
will be maintained over a set of resources for a specified period of
time." (paper, §2)

The shapes here mirror the protocol elements of §6 one-to-one: a
:class:`PromiseRequest` carries a request identifier, predicates, the
resources they cover, a requested duration, and optionally the identifiers
of existing promises to hand back atomically; a :class:`PromiseResponse`
carries the promise identifier, the accept/reject result, the granted
duration, and the correlation back to the request.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from .errors import PredicateError
from .predicates import Predicate


class PromiseStatus(enum.Enum):
    """Lifecycle of a granted promise."""

    ACTIVE = "active"
    RELEASED = "released"
    EXPIRED = "expired"

    @property
    def is_live(self) -> bool:
        """True while the promise still binds the promise maker."""
        return self is PromiseStatus.ACTIVE


class PromiseResult(enum.Enum):
    """Outcome of a promise request (§6: accepted or rejected).

    The paper notes that richer results ('pending', conditional accepts)
    "have still to be investigated"; this reproduction implements the two
    the protocol defines.
    """

    ACCEPTED = "accepted"
    REJECTED = "rejected"


@dataclass(frozen=True)
class PromiseRequest:
    """A ``<promise-request>`` header element (§6).

    ``releases`` names existing promises to hand back *atomically* with
    this grant: "if these new promises cannot be granted, the existing
    promises must continue to hold" (§6) — the third atomicity requirement
    of §4.
    """

    request_id: str
    predicates: tuple[Predicate, ...]
    duration: int
    client_id: str = "anonymous"
    releases: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.predicates:
            raise PredicateError("a promise request needs at least one predicate")
        if self.duration <= 0:
            raise PredicateError("promise duration must be positive")

    @property
    def resources(self) -> frozenset[str]:
        """The set of resources the request's predicates cover (§6)."""
        gathered: frozenset[str] = frozenset()
        for predicate in self.predicates:
            gathered |= predicate.resources()
        return gathered

    def to_dict(self) -> dict[str, object]:
        """Serialise for the protocol layer."""
        return {
            "request_id": self.request_id,
            "client_id": self.client_id,
            "predicates": [predicate.to_dict() for predicate in self.predicates],
            "duration": self.duration,
            "releases": list(self.releases),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "PromiseRequest":
        """Inverse of :meth:`to_dict`."""
        raw_predicates = payload.get("predicates")
        if not isinstance(raw_predicates, list):
            raise PredicateError("promise request predicates must be a list")
        return cls(
            request_id=str(payload["request_id"]),
            client_id=str(payload.get("client_id", "anonymous")),
            predicates=tuple(
                Predicate.from_dict(entry) for entry in raw_predicates
            ),
            duration=int(payload["duration"]),  # type: ignore[arg-type]
            releases=tuple(str(p) for p in payload.get("releases", ())),  # type: ignore[union-attr]
        )


@dataclass(frozen=True)
class PromiseResponse:
    """A ``<promise-response>`` header element (§6).

    ``counter`` carries a counter-offer on rejection — the 'accepted with
    the condition XX' style of response §6 flags as uninvestigated: the
    weakest strengthening of "we cannot promise that" into "but we *can*
    promise this".  Clients accept by re-requesting the counter predicate.
    """

    promise_id: str | None
    result: PromiseResult
    duration: int
    correlation: str
    reason: str = ""
    counter: Predicate | None = None

    @property
    def accepted(self) -> bool:
        """True when the request was granted."""
        return self.result is PromiseResult.ACCEPTED

    def to_dict(self) -> dict[str, object]:
        """Serialise for the protocol layer."""
        payload: dict[str, object] = {
            "promise_id": self.promise_id,
            "result": self.result.value,
            "duration": self.duration,
            "correlation": self.correlation,
            "reason": self.reason,
        }
        if self.counter is not None:
            payload["counter"] = self.counter.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "PromiseResponse":
        """Inverse of :meth:`to_dict`."""
        promise_id = payload.get("promise_id")
        raw_counter = payload.get("counter")
        counter = None
        if isinstance(raw_counter, Mapping):
            counter = Predicate.from_dict(raw_counter)
        return cls(
            promise_id=None if promise_id is None else str(promise_id),
            result=PromiseResult(str(payload["result"])),
            duration=int(payload.get("duration", 0)),  # type: ignore[arg-type]
            correlation=str(payload.get("correlation", "")),
            reason=str(payload.get("reason", "")),
            counter=counter,
        )

    @classmethod
    def rejected(
        cls,
        correlation: str,
        reason: str,
        counter: Predicate | None = None,
    ) -> "PromiseResponse":
        """Build a rejection response, optionally with a counter-offer."""
        return cls(
            promise_id=None,
            result=PromiseResult.REJECTED,
            duration=0,
            correlation=correlation,
            reason=reason,
            counter=counter,
        )


@dataclass
class Promise:
    """A granted promise as the promise manager records it (§8's
    'promise table' row).

    ``meta`` holds strategy bookkeeping — escrowed amounts, tagged or
    tentatively assigned instance ids, upstream promise ids for delegation
    — keyed by strategy name so different strategies never collide.
    """

    promise_id: str
    client_id: str
    predicates: tuple[Predicate, ...]
    granted_at: int
    expires_at: int
    status: PromiseStatus = PromiseStatus.ACTIVE
    meta: dict[str, object] = field(default_factory=dict)

    @property
    def is_active(self) -> bool:
        """True while the promise binds the promise maker."""
        return self.status is PromiseStatus.ACTIVE

    def is_expired_at(self, now: int) -> bool:
        """Would this promise be expired at tick ``now``?"""
        return now >= self.expires_at

    @property
    def resources(self) -> frozenset[str]:
        """Resources covered by the promise's predicates."""
        gathered: frozenset[str] = frozenset()
        for predicate in self.predicates:
            gathered |= predicate.resources()
        return gathered

    def to_dict(self) -> dict[str, object]:
        """Serialise for the promise table."""
        return {
            "promise_id": self.promise_id,
            "client_id": self.client_id,
            "predicates": [predicate.to_dict() for predicate in self.predicates],
            "granted_at": self.granted_at,
            "expires_at": self.expires_at,
            "status": self.status.value,
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Promise":
        """Inverse of :meth:`to_dict`."""
        raw_predicates = payload.get("predicates")
        if not isinstance(raw_predicates, list):
            raise PredicateError("promise predicates must be a list")
        meta = payload.get("meta", {})
        if not isinstance(meta, Mapping):
            raise PredicateError("promise meta must be a mapping")
        return cls(
            promise_id=str(payload["promise_id"]),
            client_id=str(payload.get("client_id", "anonymous")),
            predicates=tuple(
                Predicate.from_dict(entry) for entry in raw_predicates
            ),
            granted_at=int(payload["granted_at"]),  # type: ignore[arg-type]
            expires_at=int(payload["expires_at"]),  # type: ignore[arg-type]
            status=PromiseStatus(str(payload.get("status", "active"))),
            meta=dict(meta),
        )


class IdGenerator:
    """Deterministic id source for requests and promises.

    Sequential ids keep simulations reproducible and logs readable; a
    deployment would swap in UUIDs without touching anything else.
    """

    def __init__(self, prefix: str) -> None:
        self._prefix = prefix
        self._issued = 0

    def next_id(self) -> str:
        """Produce the next id, e.g. ``prm-42``."""
        self._issued += 1
        return f"{self._prefix}-{self._issued}"

    def ensure_past(self, used_id: str) -> None:
        """Advance the counter past a previously issued id.

        Recovery feeds every id found on disk through this so a
        restarted manager never re-issues one; ids with a foreign prefix
        (client-generated dedup keys, say) are ignored.
        """
        prefix = f"{self._prefix}-"
        if not used_id.startswith(prefix):
            return
        suffix = used_id[len(prefix):]
        if suffix.isdigit():
            self._issued = max(self._issued, int(suffix))

    def take(self, count: int) -> list[str]:
        """Produce ``count`` consecutive ids."""
        return [self.next_id() for __ in range(count)]


def total_quantity_demand(
    promises: Iterable[Promise], pool_id: str
) -> int:
    """Sum every live promise's quantity demand on ``pool_id``.

    Used by the anonymous-view invariant of §3.1: the sum of all promised
    quantities must never exceed what is actually on hand.  Only pure
    conjunctions contribute; Or-promises are resolved by the checker.
    """
    total = 0
    for promise in promises:
        if not promise.is_active:
            continue
        for predicate in promise.predicates:
            for branch in predicate.dnf()[:1]:
                for atom in branch:
                    pool = getattr(atom, "pool_id", None)
                    if pool == pool_id:
                        total += atom.amount  # type: ignore[attr-defined]
    return total
