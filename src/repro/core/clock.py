"""Logical time for promise durations and expiry.

Promises "do not last forever" (paper, §2): every grant carries a duration
agreed between client and promise manager.  The reproduction measures time
in integer *ticks* of a logical clock so that simulations are deterministic
and expiry behaviour can be tested exactly.  A tick maps to whatever real
interval a deployment chooses; nothing in the protocol depends on the unit.
"""

from __future__ import annotations

from typing import Callable


class LogicalClock:
    """Monotonic integer clock.

    The discrete-event simulator advances it; unit tests advance it by
    hand.  ``on_advance`` callbacks let a promise table sweep expired
    promises as time moves.
    """

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError("clock cannot start before tick 0")
        self._now = start
        self._observers: list[Callable[[int], None]] = []

    @property
    def now(self) -> int:
        """Current tick."""
        return self._now

    def advance(self, ticks: int = 1) -> int:
        """Move time forward by ``ticks`` (>= 0) and notify observers."""
        if ticks < 0:
            raise ValueError("time cannot move backwards")
        if ticks:
            self._now += ticks
            for observer in list(self._observers):
                observer(self._now)
        return self._now

    def advance_to(self, tick: int) -> int:
        """Move time forward to an absolute ``tick`` (no-op when past)."""
        if tick > self._now:
            self.advance(tick - self._now)
        return self._now

    def subscribe(self, observer: Callable[[int], None]) -> None:
        """Register ``observer(now)`` to run after every advance."""
        self._observers.append(observer)

    def unsubscribe(self, observer: Callable[[int], None]) -> None:
        """Remove a previously registered observer (idempotent)."""
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LogicalClock(now={self._now})"


FOREVER = 2**31
"""Sentinel duration for promises that should effectively never expire.

Used by tests and baselines; real clients always pass finite durations, as
the paper requires.
"""
