"""Promise checking: mutual satisfiability of a set of promises.

"The most critical part of the promise manager is the code that guarantees
the validity of non-expired promises by ensuring that sufficient resources
are available to satisfy every active predicate." (paper, §8)

The engine answers one question: *can every demand in this set be honoured
simultaneously from disjoint resources, given the current resource state?*
Section 9 stresses the disjointness: two promises ``balance>100`` and
``balance>50`` jointly require 150 — unlike integrity constraints, demands
add up.

Per the paper's per-view algorithms (§8):

* anonymous pools — "sums the quantities of the specified resource required
  by all unexpired promises" and compares with availability;
* named instances — "no duplicate promises for the resource" and the
  instance is not taken;
* property views — "bipartite graph matching" between demand slots and
  untaken instances (§5), via Hopcroft–Karp.

All three interact on instance collections (a named promise for seat 24G
must be excluded from the pool backing an 'any economy seat' promise —
§3.2), so instance-level demands are solved as one matching problem.

``Or`` predicates are handled by trying DNF branch combinations, bounded by
:data:`MAX_COMBINATIONS`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from .errors import PredicateUnsupported
from .matching import is_perfect_for_left, unmatched_lefts
from .predicates import (
    AtomicPredicate,
    InstanceAvailable,
    Predicate,
    PropertyMatch,
    QuantityAtLeast,
    ResourceStateView,
)

MAX_COMBINATIONS = 256
"""Upper bound on Or-branch combinations tried across a demand set."""


@dataclass(frozen=True)
class Demand:
    """One participant in a satisfiability check.

    ``owner_id`` is the promise id (or, for a candidate not yet granted,
    its request id); diagnostics point back at it.
    """

    owner_id: str
    predicates: tuple[Predicate, ...]

    def branch_choices(self) -> list[list[AtomicPredicate]]:
        """All DNF branch combinations of this demand's predicates.

        Each element is one way to satisfy the whole demand (a conjunction
        of atoms).
        """
        per_predicate = [predicate.dnf() for predicate in self.predicates]
        combos: list[list[AtomicPredicate]] = []
        for combo in itertools.product(*per_predicate):
            merged: list[AtomicPredicate] = []
            for branch in combo:
                merged.extend(branch)
            combos.append(merged)
            if len(combos) > MAX_COMBINATIONS:
                raise PredicateUnsupported(
                    f"demand {self.owner_id} expands to more than "
                    f"{MAX_COMBINATIONS} branch combinations"
                )
        return combos


@dataclass(frozen=True)
class Slot:
    """One unit of instance demand: ``owner_id`` needs one instance.

    ``index`` distinguishes the k slots of a count-k property demand;
    ``atom_index`` distinguishes atoms within the owner's conjunction.
    """

    owner_id: str
    atom_index: int
    index: int


@dataclass
class CheckResult:
    """Outcome of a satisfiability check."""

    ok: bool
    reason: str = ""
    failed_owners: tuple[str, ...] = ()
    assignment: dict[Slot, str] = field(default_factory=dict)
    pool_usage: dict[str, int] = field(default_factory=dict)
    chosen_branches: dict[str, int] = field(default_factory=dict)

    @classmethod
    def failure(
        cls, reason: str, failed_owners: Iterable[str] = ()
    ) -> "CheckResult":
        """Build a failed result."""
        return cls(ok=False, reason=reason, failed_owners=tuple(failed_owners))

    def instances_for(self, owner_id: str) -> list[str]:
        """Instances the satisfying assignment gave to ``owner_id``."""
        return sorted(
            instance_id
            for slot, instance_id in self.assignment.items()
            if slot.owner_id == owner_id
        )


def check_satisfiable(
    demands: Sequence[Demand],
    state: ResourceStateView,
    tagged_instances: Mapping[str, str] | None = None,
    pool_offsets: Mapping[str, int] | None = None,
) -> CheckResult:
    """Can all ``demands`` be honoured simultaneously from ``state``?

    ``tagged_instances`` maps instance ids to the owner id they are
    already promised to (allocated-tags / tentative strategies); such an
    instance may only back its owner's slots.  ``pool_offsets`` adds
    capacity per pool that is known to be held outside ``available`` (the
    escrowed units of pool-strategy promises included in the check).

    Tries Or-branch combinations in order and returns the first fully
    satisfiable one; when none fits, the result's diagnostics describe the
    *last* combination's failure.
    """
    tagged = dict(tagged_instances or {})
    offsets = dict(pool_offsets or {})

    per_demand_branches: list[list[list[AtomicPredicate]]] = [
        demand.branch_choices() for demand in demands
    ]
    total = 1
    for branches in per_demand_branches:
        total *= len(branches)
        if total > MAX_COMBINATIONS:
            raise PredicateUnsupported(
                f"demand set expands to more than {MAX_COMBINATIONS} "
                f"branch combinations"
            )

    last_failure = CheckResult.failure("no demands to check")
    for combo_indices in itertools.product(
        *[range(len(branches)) for branches in per_demand_branches]
    ):
        branch_atoms = [
            per_demand_branches[i][combo_indices[i]]
            for i in range(len(demands))
        ]
        result = _check_one_combination(demands, branch_atoms, state, tagged, offsets)
        if result.ok:
            result.chosen_branches = {
                demands[i].owner_id: combo_indices[i]
                for i in range(len(demands))
            }
            return result
        last_failure = result
    return last_failure


def _check_one_combination(
    demands: Sequence[Demand],
    branch_atoms: Sequence[Sequence[AtomicPredicate]],
    state: ResourceStateView,
    tagged: Mapping[str, str],
    offsets: Mapping[str, int],
) -> CheckResult:
    """Check a single conjunction-per-demand combination."""
    # ---- anonymous pools: per-pool demand sums -------------------------
    pool_usage: dict[str, int] = {}
    pool_owners: dict[str, list[str]] = {}
    for demand, atoms in zip(demands, branch_atoms):
        for atom in atoms:
            if isinstance(atom, QuantityAtLeast):
                pool_usage[atom.pool_id] = (
                    pool_usage.get(atom.pool_id, 0) + atom.amount
                )
                pool_owners.setdefault(atom.pool_id, []).append(demand.owner_id)
    for pool_id, needed in pool_usage.items():
        capacity = state.pool_available(pool_id) + offsets.get(pool_id, 0)
        if needed > capacity:
            return CheckResult.failure(
                f"pool {pool_id!r}: promises demand {needed} units but only "
                f"{capacity} are available",
                failed_owners=pool_owners[pool_id],
            )

    # ---- instances: one matching problem across named + property -------
    adjacency: dict[Slot, list[str]] = {}
    slot_descriptions: dict[Slot, str] = {}
    for demand, atoms in zip(demands, branch_atoms):
        for atom_index, atom in enumerate(atoms):
            if isinstance(atom, InstanceAvailable):
                slot = Slot(demand.owner_id, atom_index, 0)
                instance = state.instance(atom.instance_id)
                candidates: list[str] = []
                if (
                    instance is not None
                    and not instance.is_taken
                    and tagged.get(instance.instance_id, demand.owner_id)
                    == demand.owner_id
                ):
                    candidates = [instance.instance_id]
                adjacency[slot] = candidates
                slot_descriptions[slot] = atom.describe()
            elif isinstance(atom, PropertyMatch):
                candidates = [
                    instance.instance_id
                    for instance in state.instances_in(atom.collection_id)
                    if not instance.is_taken
                    and tagged.get(instance.instance_id, demand.owner_id)
                    == demand.owner_id
                    and atom.matches_instance(instance, state)
                ]
                for unit in range(atom.count):
                    slot = Slot(demand.owner_id, atom_index, unit)
                    adjacency[slot] = candidates
                    slot_descriptions[slot] = atom.describe()

    if adjacency:
        saturated, matching = is_perfect_for_left(adjacency)
        if not saturated:
            missing = unmatched_lefts(adjacency, matching)
            owners = sorted({slot.owner_id for slot in missing})
            details = "; ".join(
                f"{slot.owner_id} needs {slot_descriptions[slot]}"
                for slot in missing[:3]
            )
            return CheckResult.failure(
                f"cannot assign disjoint instances: {details}",
                failed_owners=owners,
            )
        assignment = {slot: str(instance) for slot, instance in matching.items()}
    else:
        assignment = {}

    return CheckResult(
        ok=True,
        assignment=assignment,
        pool_usage=pool_usage,
    )


def demands_of_promises(promises: Iterable) -> list[Demand]:
    """Build demands from promise objects (anything with
    ``promise_id``/``predicates``)."""
    return [
        Demand(owner_id=promise.promise_id, predicates=tuple(promise.predicates))
        for promise in promises
    ]
