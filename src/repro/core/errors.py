"""Exception hierarchy for the promise core.

The paper distinguishes several failure modes a promise-aware application
must see: rejection at grant time (the *only* normal-path failure — §9),
expiry ('promise-expired' errors, §2), violation detected after an action
(§8, triggers rollback), and protocol misuse.  Each gets its own exception
so client code can treat rejection as flow control and everything else as a
serious error, exactly as §2 prescribes.
"""

from __future__ import annotations


class PromiseError(Exception):
    """Base class for all promise-layer errors."""


class PromiseRejected(PromiseError):
    """The promise manager declined to grant a promise request.

    Rejection is immediate — never blocking — which is what frees the
    promise model from deadlock concerns (paper, §9).
    """

    def __init__(self, request_id: str, reason: str) -> None:
        super().__init__(f"promise request {request_id} rejected: {reason}")
        self.request_id = request_id
        self.reason = reason


class PromiseExpired(PromiseError):
    """An operation referenced a promise whose duration has elapsed.

    "Promise managers return 'promise-expired' errors to clients that
    attempt to perform operations under the protection of expired
    promises." (paper, §2)
    """

    def __init__(self, promise_id: str) -> None:
        super().__init__(f"promise {promise_id} has expired")
        self.promise_id = promise_id


class PromiseViolation(PromiseError):
    """An action's state changes would break one or more granted promises.

    The promise manager detects this in the post-action check and rolls the
    action back (paper, §8).
    """

    def __init__(self, promise_ids: list[str], detail: str = "") -> None:
        listing = ", ".join(promise_ids)
        message = f"action would violate promises [{listing}]"
        if detail:
            message += f": {detail}"
        super().__init__(message)
        self.promise_ids = promise_ids
        self.detail = detail


class UnknownPromise(PromiseError):
    """A promise id does not correspond to any known promise."""

    def __init__(self, promise_id: str) -> None:
        super().__init__(f"unknown promise {promise_id}")
        self.promise_id = promise_id


class PromiseStateError(PromiseError):
    """A promise was used in a state that does not allow the operation."""

    def __init__(self, promise_id: str, state: str, operation: str) -> None:
        super().__init__(
            f"promise {promise_id} is {state}; cannot {operation}"
        )
        self.promise_id = promise_id
        self.state = state
        self.operation = operation


class PredicateError(PromiseError):
    """Base class for predicate construction/evaluation problems."""


class PredicateSyntaxError(PredicateError):
    """The predicate expression language parser rejected the input."""

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class PredicateUnsupported(PredicateError):
    """A structurally valid predicate is outside what checking supports.

    The model "imposes no restrictions on the form these expressions can
    take" (§3), but any concrete promise manager supports a concrete
    checkable subset; this error marks the boundary explicitly rather than
    silently granting unverifiable promises.
    """


class UnknownResource(PromiseError):
    """A predicate referenced a pool, instance or collection that is absent."""

    def __init__(self, resource_id: str) -> None:
        super().__init__(f"unknown resource {resource_id!r}")
        self.resource_id = resource_id


class ActionFailed(PromiseError):
    """The application reported failure while executing an action.

    When an action fails, any promise releases bundled with it are NOT
    applied: "the promise release and the application request form an
    atomic unit" (paper, §2 and §4).
    """

    def __init__(self, action: str, reason: str) -> None:
        super().__init__(f"action {action!r} failed: {reason}")
        self.action = action
        self.reason = reason
