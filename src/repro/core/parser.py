"""A small expression language for promise predicates.

Section 3 of the paper envisages clients "constructing suitable predicates
in the agreed standard syntax" that a *general-purpose* promise manager can
maintain and evaluate without application knowledge.  This module supplies
such a syntax, so predicates can travel as text inside SOAP headers:

.. code-block:: text

    quantity('pink_widgets') >= 5
    available('room-212@sydney-hilton@2007-03-12')
    match('hotel_rooms', floor == 5 and view == true, count=1)
    match('seats', cabin == 'economy'~, count=2)        # ~ means "or better"
    quantity('acct:alice') >= 100 or quantity('acct:alice-savings') >= 100
    not available('lot-17')

Grammar (informal)::

    predicate  := or_expr
    or_expr    := and_expr ( 'or' and_expr )*
    and_expr   := unary ( 'and' unary )*
    unary      := 'not' unary | atom
    atom       := quantity | available | match | '(' predicate ')'
    quantity   := 'quantity' '(' STRING ')' CMP NUMBER
    available  := 'available' '(' STRING ')'
    match      := 'match' '(' STRING [',' prop_expr] [',' 'count' '=' NUMBER] ')'
    prop_expr  := prop_atom ( 'and' prop_atom )*
    prop_atom  := IDENT CMP literal ['~'] | IDENT 'in' '[' literal (',' literal)* ']'
    literal    := NUMBER | STRING | 'true' | 'false'

Property expressions are conjunctive by design; alternatives are expressed
with a predicate-level ``or`` (which the checker handles via DNF).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from .errors import PredicateSyntaxError
from .predicates import (
    And,
    InstanceAvailable,
    Not,
    Op,
    Or,
    Predicate,
    PropertyCondition,
    PropertyMatch,
    QuantityAtLeast,
)

_TOKEN_SPEC = [
    ("NUMBER", r"-?\d+(?:\.\d+)?"),
    ("STRING", r"'(?:[^'\\]|\\.)*'|\"(?:[^\"\\]|\\.)*\""),
    ("CMP", r"==|!=|<=|>=|<|>"),
    ("TILDE", r"~"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("LBRACKET", r"\["),
    ("RBRACKET", r"\]"),
    ("COMMA", r","),
    ("ASSIGN", r"="),
    ("IDENT", r"[A-Za-z_][A-Za-z0-9_]*"),
    ("WS", r"\s+"),
]

_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))

_KEYWORDS = {"and", "or", "not", "quantity", "available", "match", "count", "in", "true", "false"}


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    kind: str
    text: str
    position: int


def tokenize(source: str) -> list[Token]:
    """Split ``source`` into tokens, rejecting anything unrecognised."""
    tokens: list[Token] = []
    position = 0
    for match in _TOKEN_RE.finditer(source):
        if match.start() != position:
            raise PredicateSyntaxError(
                f"unexpected character {source[position]!r}", position
            )
        kind = match.lastgroup or ""
        text = match.group()
        if kind == "IDENT" and text in _KEYWORDS:
            kind = text.upper()
        if kind != "WS":
            tokens.append(Token(kind, text, match.start()))
        position = match.end()
    if position != len(source):
        raise PredicateSyntaxError(
            f"unexpected character {source[position]!r}", position
        )
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: list[Token], source: str) -> None:
        self._tokens = tokens
        self._index = 0
        self._source = source

    # ------------------------------------------------------------ plumbing

    def _peek(self) -> Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise PredicateSyntaxError("unexpected end of input", len(self._source))
        self._index += 1
        return token

    def _expect(self, kind: str) -> Token:
        token = self._next()
        if token.kind != kind:
            raise PredicateSyntaxError(
                f"expected {kind}, found {token.text!r}", token.position
            )
        return token

    def _peek_kind(self, offset: int) -> str | None:
        index = self._index + offset
        if index < len(self._tokens):
            return self._tokens[index].kind
        return None

    def _accept(self, kind: str) -> Token | None:
        token = self._peek()
        if token is not None and token.kind == kind:
            self._index += 1
            return token
        return None

    # ------------------------------------------------------------- grammar

    def parse(self) -> Predicate:
        predicate = self._or_expr()
        trailing = self._peek()
        if trailing is not None:
            raise PredicateSyntaxError(
                f"unexpected trailing input {trailing.text!r}", trailing.position
            )
        return predicate

    def _or_expr(self) -> Predicate:
        left = self._and_expr()
        children = [left]
        while self._accept("OR"):
            children.append(self._and_expr())
        if len(children) == 1:
            return left
        return Or.of(*children)

    def _and_expr(self) -> Predicate:
        left = self._unary()
        children = [left]
        while self._accept("AND"):
            children.append(self._unary())
        if len(children) == 1:
            return left
        return And.of(*children)

    def _unary(self) -> Predicate:
        if self._accept("NOT"):
            return Not(self._unary())
        return self._atom()

    def _atom(self) -> Predicate:
        token = self._peek()
        if token is None:
            raise PredicateSyntaxError("unexpected end of input", len(self._source))
        if token.kind == "QUANTITY":
            return self._quantity()
        if token.kind == "AVAILABLE":
            return self._available()
        if token.kind == "MATCH":
            return self._match()
        if token.kind == "LPAREN":
            self._next()
            inner = self._or_expr()
            self._expect("RPAREN")
            return inner
        raise PredicateSyntaxError(
            f"expected a predicate, found {token.text!r}", token.position
        )

    def _quantity(self) -> Predicate:
        self._expect("QUANTITY")
        self._expect("LPAREN")
        pool = self._string()
        self._expect("RPAREN")
        cmp_token = self._expect("CMP")
        amount_token = self._expect("NUMBER")
        amount = _number(amount_token)
        if not isinstance(amount, int):
            raise PredicateSyntaxError(
                "quantity demands must be integers", amount_token.position
            )
        if cmp_token.text != ">=":
            raise PredicateSyntaxError(
                "quantity predicates support only '>=' "
                "(availability is a lower bound)",
                cmp_token.position,
            )
        return QuantityAtLeast(pool, amount)

    def _available(self) -> Predicate:
        self._expect("AVAILABLE")
        self._expect("LPAREN")
        instance = self._string()
        self._expect("RPAREN")
        return InstanceAvailable(instance)

    def _match(self) -> Predicate:
        self._expect("MATCH")
        self._expect("LPAREN")
        collection = self._string()
        conditions: list[PropertyCondition] = []
        count = 1
        while self._accept("COMMA"):
            token = self._peek()
            # `count=` introduces the count clause; a bare `count` is a
            # property name like any other (keywords are context-
            # sensitive inside property expressions).
            if (
                token is not None
                and token.kind == "COUNT"
                and self._peek_kind(1) == "ASSIGN"
            ):
                self._next()
                self._expect("ASSIGN")
                count_token = self._expect("NUMBER")
                parsed = _number(count_token)
                if not isinstance(parsed, int):
                    raise PredicateSyntaxError(
                        "count must be an integer", count_token.position
                    )
                count = parsed
                break
            conditions.extend(self._prop_expr())
        self._expect("RPAREN")
        return PropertyMatch(collection, tuple(conditions), count)

    def _prop_expr(self) -> list[PropertyCondition]:
        conditions = [self._prop_atom()]
        while self._accept("AND"):
            conditions.append(self._prop_atom())
        return conditions

    # Keywords usable as property names inside property expressions —
    # only the boolean operators and literals stay reserved there.
    _NAME_KINDS = ("IDENT", "QUANTITY", "AVAILABLE", "MATCH", "COUNT")

    def _prop_atom(self) -> PropertyCondition:
        name_token = self._next()
        if name_token.kind not in self._NAME_KINDS:
            raise PredicateSyntaxError(
                f"expected a property name, found {name_token.text!r}",
                name_token.position,
            )
        token = self._peek()
        if token is not None and token.kind == "IN":
            self._next()
            self._expect("LBRACKET")
            values = [self._literal()]
            while self._accept("COMMA"):
                values.append(self._literal())
            self._expect("RBRACKET")
            return PropertyCondition(name_token.text, Op.IN, tuple(values))
        cmp_token = self._expect("CMP")
        value = self._literal()
        or_better = self._accept("TILDE") is not None
        if or_better and cmp_token.text != "==":
            raise PredicateSyntaxError(
                "'~' (or better) requires an equality condition",
                cmp_token.position,
            )
        return PropertyCondition(
            name_token.text, Op.from_symbol(cmp_token.text), value, or_better
        )

    # ------------------------------------------------------------ literals

    def _string(self) -> str:
        token = self._expect("STRING")
        return _unquote(token.text)

    def _literal(self) -> object:
        token = self._next()
        if token.kind == "NUMBER":
            return _number(token)
        if token.kind == "STRING":
            return _unquote(token.text)
        if token.kind == "TRUE":
            return True
        if token.kind == "FALSE":
            return False
        raise PredicateSyntaxError(
            f"expected a literal, found {token.text!r}", token.position
        )


def _number(token: Token) -> int | float:
    text = token.text
    if "." in text:
        return float(text)
    return int(text)


def _unquote(text: str) -> str:
    body = text[1:-1]
    return body.replace("\\'", "'").replace('\\"', '"').replace("\\\\", "\\")


def parse_predicate(source: str) -> Predicate:
    """Parse ``source`` into a :class:`Predicate`.

    This is the entry point a general-purpose promise manager uses to
    accept predicates in "the agreed standard syntax" (§3).
    """
    return _Parser(tokenize(source), source).parse()


# Short alias for interactive/fluent use: ``P("quantity('x') >= 5")``.
P = parse_predicate


def render_predicate(predicate: Predicate) -> str:
    """Render a predicate back to parseable source text.

    ``parse_predicate(render_predicate(p))`` yields a predicate equal to
    ``p`` for every construct the language covers (property-tested).
    """
    return _render(predicate, top=True)


def _render(predicate: Predicate, top: bool = False) -> str:
    if isinstance(predicate, QuantityAtLeast):
        return f"quantity('{predicate.pool_id}') >= {predicate.amount}"
    if isinstance(predicate, InstanceAvailable):
        return f"available('{predicate.instance_id}')"
    if isinstance(predicate, PropertyMatch):
        parts = [f"'{predicate.collection_id}'"]
        if predicate.conditions:
            parts.append(" and ".join(_render_condition(c) for c in predicate.conditions))
        parts.append(f"count={predicate.count}")
        return f"match({', '.join(parts)})"
    if isinstance(predicate, And):
        body = " and ".join(_render(child) for child in predicate.children)
        return body if top else f"({body})"
    if isinstance(predicate, Or):
        body = " or ".join(_render(child) for child in predicate.children)
        return body if top else f"({body})"
    if isinstance(predicate, Not):
        return f"not {_render(predicate.child)}"
    raise PredicateSyntaxError(f"cannot render {type(predicate).__name__}")


def _render_condition(condition: PropertyCondition) -> str:
    if condition.op is Op.IN:
        values = ", ".join(_render_literal(value) for value in condition.value)  # type: ignore[union-attr]
        return f"{condition.name} in [{values}]"
    suffix = "~" if condition.or_better else ""
    return f"{condition.name} {condition.op.value} {_render_literal(condition.value)}{suffix}"


def _render_literal(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace("'", "\\'")
        return f"'{escaped}'"
    raise PredicateSyntaxError(f"cannot render literal {value!r}")

