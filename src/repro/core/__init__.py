"""The promise core: the paper's primary contribution.

Predicates over resources, the promise/request/response model, the
promise table, the satisfiability checking engine, and the Promise
Manager pipeline of Figure 2.
"""

from .checking import Demand, CheckResult, check_satisfiable, demands_of_promises
from .clock import FOREVER, LogicalClock
from .environment import Environment
from .events import EventHub, EventKind, PromiseEvent
from .errors import (
    ActionFailed,
    PredicateError,
    PredicateSyntaxError,
    PredicateUnsupported,
    PromiseError,
    PromiseExpired,
    PromiseRejected,
    PromiseStateError,
    PromiseViolation,
    UnknownPromise,
    UnknownResource,
)
from .manager import (
    Action,
    ActionContext,
    ActionResult,
    ExecuteOutcome,
    PromiseManager,
)
from .matching import maximum_bipartite_matching
from .parser import P, parse_predicate, render_predicate
from .predicates import (
    And,
    InstanceAvailable,
    InstanceState,
    Not,
    Op,
    Or,
    Predicate,
    PropertyCondition,
    PropertyMatch,
    QuantityAtLeast,
    ResourceStateView,
    named_available,
    property_match,
    quantity_at_least,
    where,
)
from .promise import (
    IdGenerator,
    Promise,
    PromiseRequest,
    PromiseResponse,
    PromiseResult,
    PromiseStatus,
)
from .table import PROMISES_TABLE, PromiseTable

__all__ = [
    "Action",
    "ActionContext",
    "ActionFailed",
    "ActionResult",
    "And",
    "CheckResult",
    "Demand",
    "Environment",
    "EventHub",
    "EventKind",
    "PromiseEvent",
    "ExecuteOutcome",
    "FOREVER",
    "IdGenerator",
    "InstanceAvailable",
    "InstanceState",
    "LogicalClock",
    "Not",
    "Op",
    "Or",
    "P",
    "PROMISES_TABLE",
    "Predicate",
    "PredicateError",
    "PredicateSyntaxError",
    "PredicateUnsupported",
    "Promise",
    "PromiseError",
    "PromiseExpired",
    "PromiseManager",
    "PromiseRejected",
    "PromiseRequest",
    "PromiseResponse",
    "PromiseResult",
    "PromiseStateError",
    "PromiseStatus",
    "PromiseTable",
    "PromiseViolation",
    "PropertyCondition",
    "PropertyMatch",
    "QuantityAtLeast",
    "ResourceStateView",
    "UnknownPromise",
    "UnknownResource",
    "check_satisfiable",
    "demands_of_promises",
    "maximum_bipartite_matching",
    "named_available",
    "parse_predicate",
    "property_match",
    "quantity_at_least",
    "render_predicate",
    "where",
]
