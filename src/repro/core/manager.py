"""The Promise Manager (paper, §2, §5, §8 — the centre of Figure 2).

"A promise manager sits between clients and application services and
implements Promise functionality on behalf of a number of services and
resource managers.  The job of a promise manager is to work with
application services and resource managers to grant or deny promise
requests, check on resource availability and ensure that promises are not
violated."

The request pipeline reproduces §8 exactly:

1. each client request runs inside **one store transaction** covering the
   promise work, the application action, and the post-action check;
2. new promise requests are checked against all existing promises and
   current resource availability, and granted or rejected immediately
   (never blocking — §9);
3. actions are passed to the application; afterwards the manager re-checks
   every strategy's promises and **rolls the action back** if any promise
   was violated;
4. promise releases bundled with an action are applied only when the
   action succeeds — the action and the release are atomic (§4).

The three atomicity requirements of §4 fall out of the single-transaction
design: multi-predicate requests grant all-or-nothing, action+release is a
unit, and exchanging old promises for new ones (``PromiseRequest.releases``)
restores the old promises automatically when the new grant fails, because
the release ran inside the aborted transaction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from ..faults.crashpoints import crash_point
from ..resources.manager import ResourceManager
from ..resources.records import INSTANCES_TABLE
from ..storage.store import Store
from ..storage.transactions import Transaction
from ..strategies.base import IsolationStrategy, Violation
from ..strategies.registry import StrategyRegistry
from .clock import LogicalClock
from .environment import Environment
from .events import EventHub, EventKind, PromiseEvent
from .errors import (
    ActionFailed,
    PromiseExpired,
    PromiseStateError,
    PromiseViolation,
    UnknownPromise,
)
from .predicates import Predicate
from .promise import (
    IdGenerator,
    Promise,
    PromiseRequest,
    PromiseResponse,
    PromiseResult,
    PromiseStatus,
)
from .table import PromiseTable

_STRATEGIES_KEY = "strategies"
_SPLIT_KEY = "split"

#: Table holding manager runtime state that must survive a restart
#: (currently the logical-clock tick).  Lives beside the promise table so
#: WAL replay restores it for free.
MANAGER_META_TABLE = "promise_manager_meta"
CLOCK_KEY = "clock"


@dataclass
class ActionResult:
    """What an application action reports back to the promise manager."""

    success: bool
    value: object = None
    reason: str = ""

    @classmethod
    def ok(cls, value: object = None) -> "ActionResult":
        """A successful action."""
        return cls(success=True, value=value)

    @classmethod
    def failed(cls, reason: str) -> "ActionResult":
        """A failed action (the whole request rolls back)."""
        return cls(success=False, reason=reason)


@dataclass
class ActionContext:
    """Everything an application action may touch while executing.

    Actions run *inside* the manager's transaction; mutating resources
    through ``resources``/``txn`` is how applications change state, and the
    post-action promise check guards those changes (§8: "the promise
    manager cannot rely on the application code being always
    well-behaved").
    """

    txn: Transaction
    resources: ResourceManager
    environment: Environment
    now: int
    client_id: str

    @property
    def reader(self):
        """Transactional read view of resource state."""
        return self.resources.reader(self.txn)

    def sell(self, pool_id: str, amount: int) -> int:
        """Remove unpromised stock; shortfalls fail the action cleanly.

        This is the unprotected check-then-act operation; stock consumed
        under a promise flows through release-on-success environments
        instead, so the implementation technique stays invisible (§5).
        """
        from ..resources.manager import InsufficientResources

        try:
            self.resources.remove_stock(self.txn, pool_id, amount)
        except InsufficientResources as exc:
            raise ActionFailed("sell", str(exc)) from exc
        return amount

    def take_instance(self, instance_id: str) -> str:
        """Take an available instance; anything else fails the action."""
        from ..resources.records import InstanceStatus

        record = self.resources.instance(self.txn, instance_id)
        if record.status is not InstanceStatus.AVAILABLE:
            raise ActionFailed(
                "take_instance",
                f"{instance_id} is {record.status.value}",
            )
        self.resources.set_instance_status(
            self.txn, instance_id, InstanceStatus.TAKEN
        )
        return instance_id


Action = Callable[[ActionContext], object]
"""An application action: may return an :class:`ActionResult`, any other
value (treated as success), or raise :class:`ActionFailed`."""


@dataclass
class ExecuteOutcome:
    """Result of processing one application request (§8 pipeline)."""

    success: bool
    value: object = None
    reason: str = ""
    released: tuple[str, ...] = ()
    violations: tuple[Violation, ...] = ()

    @property
    def violated(self) -> bool:
        """True when the action was rolled back for violating promises."""
        return bool(self.violations)

    def to_dict(self) -> dict[str, object]:
        """Serialise for the reply journal."""
        return {
            "success": self.success,
            "value": self.value,
            "reason": self.reason,
            "released": list(self.released),
            "violations": [
                [violation.promise_id, violation.detail]
                for violation in self.violations
            ],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ExecuteOutcome":
        """Inverse of :meth:`to_dict`."""
        return cls(
            success=bool(payload.get("success")),
            value=payload.get("value"),
            reason=str(payload.get("reason", "")),
            released=tuple(str(item) for item in payload.get("released", ())),  # type: ignore[union-attr]
            violations=tuple(
                Violation(str(promise_id), str(detail))
                for promise_id, detail in payload.get("violations", ())  # type: ignore[union-attr]
            ),
        )


class PromiseManager:
    """Grants, tracks, enforces and releases promises.

    Satisfies the :class:`~repro.strategies.delegation.UpstreamPromiseMaker`
    protocol, so one manager can delegate to another (§5, delegation).
    """

    def __init__(
        self,
        store: Store | None = None,
        resources: ResourceManager | None = None,
        clock: LogicalClock | None = None,
        registry: StrategyRegistry | None = None,
        name: str = "promise-manager",
        max_duration: int | None = None,
        counter_offers: bool = False,
    ) -> None:
        # Imported here, not at module level: repro.recovery imports this
        # module (the recover() entry point takes a PromiseManager).
        from ..recovery.journal import ReplyJournal

        self.name = name
        self._store = store or Store()
        self._resources = resources or ResourceManager(self._store)
        self.clock = clock or LogicalClock()
        self.registry = registry or StrategyRegistry()
        self._table = PromiseTable(self._store)
        self._store.create_table(MANAGER_META_TABLE)
        self.journal = ReplyJournal(self._store)
        self._promise_ids = IdGenerator(f"{name}:prm")
        self._request_ids = IdGenerator(f"{name}:req")
        self.max_duration = max_duration
        self.counter_offers = counter_offers
        self.events = EventHub()

    # ------------------------------------------------------------ accessors

    @property
    def store(self) -> Store:
        """The transactional store behind this manager."""
        return self._store

    @property
    def resources(self) -> ResourceManager:
        """The resource manager this promise manager guards."""
        return self._resources

    @property
    def fault_scope(self) -> str | None:
        """The store's crash-injection scope (scoped fault plans)."""
        return self._store.fault_scope

    @property
    def table(self) -> PromiseTable:
        """The promise table (read-mostly; tests and tooling)."""
        return self._table

    def new_request_id(self) -> str:
        """A fresh correlation id for a promise request."""
        return self._request_ids.next_id()

    def observe_issued_id(self, used_id: str) -> None:
        """Advance the id pools past an id recovered from disk."""
        self._promise_ids.ensure_past(used_id)
        self._request_ids.ensure_past(used_id)

    # -------------------------------------------------------- promise API

    def request_promise(
        self, request: PromiseRequest, *, dedup_key: str | None = None
    ) -> PromiseResponse:
        """Process a ``<promise-request>`` (§6): grant or reject atomically.

        All predicates grant together or the request is rejected (§4 first
        requirement).  When ``request.releases`` names existing promises,
        they are exchanged atomically: "if these new promises cannot be
        granted, the existing promises must continue to hold" (§6) — the
        rollback of the enclosing transaction restores them.

        With ``dedup_key`` set (the protocol endpoint passes the request
        id), the response is journaled *inside the grant transaction* and
        a redelivered request — even one arriving after a crash and
        restart — returns the original response instead of granting
        twice (§4: granting and replying are one atomic unit).
        """
        now = self.clock.now
        txn = self._store.begin()
        compensations: list[tuple[IsolationStrategy, object]] = []
        post_commit: list[Callable[[], None]] = []
        try:
            if dedup_key is not None:
                replayed = self.journal.get(txn, dedup_key)
                if replayed is not None:
                    txn.abort()
                    return PromiseResponse.from_dict(replayed)  # type: ignore[arg-type]
            swept = self._sweep(txn, now, post_commit)
            for promise_id in request.releases:
                self._release_in_txn(
                    txn, promise_id, consume=False, now=now,
                    post_commit=post_commit,
                )

            promise_id = self._promise_ids.next_id()
            duration = request.duration
            if self.max_duration is not None:
                duration = min(duration, self.max_duration)
            meta: dict[str, object] = {}
            strategy_names: list[str] = []
            split_record: dict[str, list[dict[str, object]]] = {}

            for strategy, predicates in self._split(txn, request.predicates):
                split_record[strategy.name] = [
                    predicate.to_dict() for predicate in predicates
                ]
                active = self._active_for(txn, strategy, now)
                decision = strategy.can_grant(
                    txn,
                    self._resources,
                    promise_id,
                    duration,
                    predicates,
                    active,
                    self._tagged(txn),
                )
                if strategy.external:
                    compensations.append((strategy, decision))
                if not decision.ok:
                    txn.abort()
                    self._compensate(compensations)
                    self._emit(
                        EventKind.REJECTED,
                        now,
                        client_id=request.client_id,
                        detail=decision.reason,
                    )
                    counter = (
                        self._counter_offer(request, duration)
                        if self.counter_offers
                        else None
                    )
                    response = PromiseResponse.rejected(
                        request.request_id, decision.reason, counter=counter
                    )
                    if dedup_key is not None:
                        # The grant transaction aborted, so there is no
                        # effect to be atomic with; a crash before this
                        # records merely lets a retry re-evaluate.
                        self.journal.record_alone(dedup_key, response.to_dict())
                    return response
                strategy_names.append(strategy.name)
                meta[strategy.name] = decision.meta

            meta[_STRATEGIES_KEY] = strategy_names
            meta[_SPLIT_KEY] = split_record
            promise = Promise(
                promise_id=promise_id,
                client_id=request.client_id,
                predicates=request.predicates,
                granted_at=now,
                expires_at=now + duration,
                status=PromiseStatus.ACTIVE,
                meta=meta,
            )
            self._table.insert(txn, promise)
            response = PromiseResponse(
                promise_id=promise_id,
                result=PromiseResult.ACCEPTED,
                duration=duration,
                correlation=request.request_id,
            )
            if dedup_key is not None:
                self.journal.record(txn, dedup_key, response.to_dict())
            self._persist_clock(txn, now)
            txn.commit()
            crash_point("manager.after-grant-before-reply", self.fault_scope)
            self._run_post_commit(post_commit)
            self._emit_expired(swept, now)
            for released_id in request.releases:
                self._emit(
                    EventKind.RELEASED,
                    now,
                    promise_id=released_id,
                    client_id=request.client_id,
                    detail=f"exchanged for {promise_id}",
                )
            self._emit(
                EventKind.GRANTED,
                now,
                promise_id=promise_id,
                client_id=request.client_id,
            )
            return response
        except Exception:
            if txn.is_active:
                txn.abort()
            self._compensate(compensations)
            raise

    def request_promise_for(
        self,
        predicates: Sequence[Predicate],
        duration: int,
        client_id: str = "anonymous",
        releases: Sequence[str] = (),
    ) -> PromiseResponse:
        """Convenience wrapper building the :class:`PromiseRequest`."""
        request = PromiseRequest(
            request_id=self.new_request_id(),
            predicates=tuple(predicates),
            duration=duration,
            client_id=client_id,
            releases=tuple(releases),
        )
        return self.request_promise(request)

    def request_first_grantable(
        self,
        alternatives: Sequence[Sequence[Predicate]],
        duration: int,
        client_id: str = "anonymous",
        releases: Sequence[str] = (),
    ) -> tuple[int, PromiseResponse]:
        """Negotiation (§3.3): try ranked alternatives, grant the best.

        "The interplay between essential and desirable properties when
        obtaining a promise may be complicated and could lead to systems
        where the promise requestor and the promise maker negotiate to
        find a promise that is both satisfiable and maximally desirable."

        ``alternatives`` is ordered most- to least-desirable; the first
        grantable predicate set wins.  Returns ``(index, response)`` where
        ``index`` is the chosen alternative (or -1 with the last rejection
        when nothing could be granted — in which case any ``releases``
        remain untouched, per the §4 exchange rule).
        """
        if not alternatives:
            raise ValueError("negotiation needs at least one alternative")
        response = PromiseResponse.rejected("", "no alternatives tried")
        for index, predicates in enumerate(alternatives):
            response = self.request_promise_for(
                predicates, duration, client_id, releases=releases
            )
            if response.accepted:
                return index, response
        return -1, response

    def release(
        self,
        promise_id: str,
        consume: bool = False,
        *,
        dedup_key: str | None = None,
    ) -> None:
        """Release a promise; with ``consume``, take its resources too.

        With ``dedup_key`` set, a redelivered release (same key) is a
        no-op instead of a promise-state fault: the journal remembers it
        already ran, across restarts included.
        """
        now = self.clock.now
        post_commit: list[Callable[[], None]] = []
        with self._store.begin() as txn:
            if dedup_key is not None and self.journal.get(txn, dedup_key) is not None:
                txn.abort()
                return
            swept = self._sweep(txn, now, post_commit)
            self._release_in_txn(
                txn, promise_id, consume=consume, now=now,
                post_commit=post_commit,
            )
            if consume:
                violations = self._check_all(txn, now)
                if violations:
                    raise PromiseViolation(
                        sorted({v.promise_id for v in violations}),
                        "; ".join(v.detail for v in violations[:3]),
                    )
            if dedup_key is not None:
                self.journal.record(txn, dedup_key, {"released": promise_id})
            self._persist_clock(txn, now)
        self._run_post_commit(post_commit)
        self._emit_expired(swept, now)
        self._emit(
            EventKind.CONSUMED if consume else EventKind.RELEASED,
            now,
            promise_id=promise_id,
        )

    def is_promise_active(self, promise_id: str) -> bool:
        """True while ``promise_id`` binds this manager."""
        with self._store.begin() as txn:
            promise = self._table.get_or_none(txn, promise_id)
            if promise is None:
                return False
            return promise.is_active and not promise.is_expired_at(self.clock.now)

    def promise(self, promise_id: str) -> Promise:
        """Load one promise (raises :class:`UnknownPromise` when absent)."""
        with self._store.begin() as txn:
            return self._table.get(txn, promise_id)

    def active_promises(self) -> list[Promise]:
        """All currently live promises."""
        with self._store.begin() as txn:
            return self._table.active(txn, self.clock.now)

    # --------------------------------------------------------- action API

    def execute(
        self,
        action: Action,
        environment: Environment | None = None,
        client_id: str = "anonymous",
        *,
        dedup_key: str | None = None,
    ) -> ExecuteOutcome:
        """Run an application action under a promise environment (§8).

        The §8 pipeline: validate the environment, run the action, apply
        the bundled releases, then re-check every promise.  Any failure
        rolls back the whole transaction, so the action and its releases
        are atomic and violated promises force the action to be undone.

        With ``dedup_key`` set, the outcome of a *committed* action is
        journaled in the same transaction, so a redelivery — before or
        after a restart — replays the original outcome instead of
        running the action twice (§4: performing an action and updating
        promise state are one atomic unit).
        """
        environment = environment or Environment.empty()
        now = self.clock.now
        txn = self._store.begin()
        post_commit: list[Callable[[], None]] = []
        try:
            if dedup_key is not None:
                replayed = self.journal.get(txn, dedup_key)
                if replayed is not None:
                    txn.abort()
                    return ExecuteOutcome.from_dict(replayed)  # type: ignore[arg-type]
            swept = self._sweep(txn, now, post_commit)
            self._validate_environment(txn, environment, now)

            try:
                raw = action(
                    ActionContext(
                        txn=txn,
                        resources=self._resources,
                        environment=environment,
                        now=now,
                        client_id=client_id,
                    )
                )
            except ActionFailed as failure:
                txn.abort()
                return self._journal_failure(
                    dedup_key, ExecuteOutcome(success=False, reason=str(failure))
                )
            result = self._normalise(raw)
            if not result.success:
                txn.abort()
                return self._journal_failure(
                    dedup_key, ExecuteOutcome(success=False, reason=result.reason)
                )

            crash_point("manager.after-action-before-release", self.fault_scope)
            released: list[str] = []
            for promise_id in environment.releases():
                self._release_in_txn(
                    txn, promise_id, consume=True, now=now,
                    post_commit=post_commit,
                )
                released.append(promise_id)

            violations = self._check_all(txn, now)
            if violations:
                txn.abort()
                for violation in violations:
                    self._emit(
                        EventKind.VIOLATED,
                        now,
                        promise_id=violation.promise_id,
                        client_id=client_id,
                        detail=violation.detail,
                    )
                return self._journal_failure(
                    dedup_key,
                    ExecuteOutcome(
                        success=False,
                        reason="action rolled back: promises violated",
                        violations=tuple(violations),
                    ),
                )

            outcome = ExecuteOutcome(
                success=True, value=result.value, released=tuple(released)
            )
            if dedup_key is not None:
                self.journal.record(txn, dedup_key, outcome.to_dict())
            self._persist_clock(txn, now)
            txn.commit()
            crash_point("manager.after-execute-commit", self.fault_scope)
            self._run_post_commit(post_commit)
            self._emit_expired(swept, now)
            for consumed_id in released:
                self._emit(
                    EventKind.CONSUMED,
                    now,
                    promise_id=consumed_id,
                    client_id=client_id,
                )
            return outcome
        except PromiseViolation as violation:
            if txn.is_active:
                txn.abort()
            return self._journal_failure(
                dedup_key,
                ExecuteOutcome(
                    success=False,
                    reason=str(violation),
                    violations=tuple(
                        Violation(pid, violation.detail)
                        for pid in violation.promise_ids
                    ),
                ),
            )
        except Exception:
            if txn.is_active:
                txn.abort()
            raise

    def check_all(self) -> list[Violation]:
        """On-demand global consistency check (no action involved)."""
        with self._store.begin() as txn:
            return self._check_all(txn, self.clock.now)

    # --------------------------------------------------------- expiry API

    def expire_due(self) -> list[str]:
        """Expire promises whose duration has elapsed; returns their ids.

        "Promise managers return 'promise-expired' errors to clients that
        attempt to perform operations under the protection of expired
        promises" (§2) — the sweep is also run implicitly at the start of
        every grant/execute, so a promise can never be used past its
        expiry even when nobody calls this explicitly.
        """
        now = self.clock.now
        post_commit: list[Callable[[], None]] = []
        with self._store.begin() as txn:
            swept = self._sweep(txn, now, post_commit)
            self._persist_clock(txn, now)
        self._run_post_commit(post_commit)
        self._emit_expired(swept, now)
        return swept

    def vacuum(self) -> int:
        """Drop released/expired promise rows; returns rows removed."""
        with self._store.begin() as txn:
            return self._table.vacuum(txn)

    # ------------------------------------------------------------ internals

    def _persist_clock(self, txn: Transaction, now: int) -> None:
        """Record the clock tick so recovery can resume logical time."""
        stored = txn.get_or_none(MANAGER_META_TABLE, CLOCK_KEY)
        if not isinstance(stored, Mapping) or stored.get("now") != now:
            txn.put(MANAGER_META_TABLE, CLOCK_KEY, {"now": now})

    def _journal_failure(
        self, dedup_key: str | None, outcome: ExecuteOutcome
    ) -> ExecuteOutcome:
        """Journal a failed outcome (its transaction already aborted).

        Nothing committed, so there is no effect to be atomic with; the
        separate journal write just keeps a redelivery from re-running
        the action once the failure has been reported.
        """
        if dedup_key is not None:
            self.journal.record_alone(dedup_key, outcome.to_dict())
        return outcome

    def _normalise(self, raw: object) -> ActionResult:
        if isinstance(raw, ActionResult):
            return raw
        return ActionResult.ok(raw)

    def _validate_environment(
        self, txn: Transaction, environment: Environment, now: int
    ) -> None:
        for promise_id in environment.promise_ids:
            promise = self._table.get_or_none(txn, promise_id)
            if promise is None:
                txn.abort()
                raise UnknownPromise(promise_id)
            if promise.status is PromiseStatus.EXPIRED or (
                promise.is_active and promise.is_expired_at(now)
            ):
                txn.abort()
                raise PromiseExpired(promise_id)
            if not promise.is_active:
                txn.abort()
                raise PromiseStateError(
                    promise_id, promise.status.value, "execute under"
                )

    def _release_in_txn(
        self,
        txn: Transaction,
        promise_id: str,
        consume: bool,
        now: int,
        post_commit: list[Callable[[], None]],
    ) -> None:
        promise = self._table.get_or_none(txn, promise_id)
        if promise is None:
            raise UnknownPromise(promise_id)
        if promise.status is PromiseStatus.EXPIRED or (
            promise.is_active and promise.is_expired_at(now)
        ):
            raise PromiseExpired(promise_id)
        if not promise.is_active:
            raise PromiseStateError(
                promise_id, promise.status.value, "release"
            )
        tagged = self._tagged(txn)
        for strategy in self._strategies_of(promise):
            active = self._active_for(txn, strategy, now)
            deferred = strategy.on_release(
                txn,
                self._resources,
                self._view_for(promise, strategy),
                consumed=consume,
                active_promises=active,
                tagged_instances=tagged,
            )
            if deferred is not None:
                post_commit.append(deferred)
        self._table.mark(txn, promise_id, PromiseStatus.RELEASED)

    def _sweep(
        self,
        txn: Transaction,
        now: int,
        post_commit: list[Callable[[], None]] | None = None,
    ) -> list[str]:
        expired: list[str] = []
        for promise in self._table.due_for_expiry(txn, now):
            for strategy in self._strategies_of(promise):
                deferred = strategy.on_expire(
                    txn, self._resources, self._view_for(promise, strategy)
                )
                if deferred is not None and post_commit is not None:
                    post_commit.append(deferred)
            self._table.mark(txn, promise.promise_id, PromiseStatus.EXPIRED)
            expired.append(promise.promise_id)
        return expired

    def _check_all(self, txn: Transaction, now: int) -> list[Violation]:
        violations: list[Violation] = []
        tagged = self._tagged(txn)
        all_active = self._table.active(txn, now)
        for strategy in self.registry.strategies():
            active = [
                self._view_for(promise, strategy)
                for promise in all_active
                if strategy.name in self._strategy_names_of(promise)
            ]
            violations.extend(
                strategy.check_consistency(txn, self._resources, active, tagged)
            )
        return violations

    def _resolve_strategy(self, txn: Transaction, resource_id: str) -> IsolationStrategy:
        """Strategy owning one resource id.

        Instance ids fall through to their collection's strategy: the
        same instances support named and anonymous/property views at once
        (§3.2), so 'seat 24G' must be handled by whatever technique owns
        the seat collection.
        """
        direct = self.registry.assigned(resource_id)
        if direct is not None:
            return direct
        if self._resources.instance_exists(txn, resource_id):
            record = self._resources.instance(txn, resource_id)
            return self.registry.strategy_for(record.collection_id)
        return self.registry.strategy_for(resource_id)

    def _split(
        self, txn: Transaction, predicates: Sequence[Predicate]
    ) -> list[tuple[IsolationStrategy, list[Predicate]]]:
        """Group predicates by the strategy owning their resources.

        A predicate whose resources span strategies must be a pure
        conjunction; its atoms are routed individually (``conjuncts``
        raises :class:`PredicateUnsupported` otherwise, keeping Or-hedging
        within a single technique).
        """
        groups: dict[str, tuple[IsolationStrategy, list[Predicate]]] = {}

        def add(strategy: IsolationStrategy, predicate: Predicate) -> None:
            entry = groups.setdefault(strategy.name, (strategy, []))
            entry[1].append(predicate)

        for predicate in predicates:
            owners = {
                strategy.name: strategy
                for strategy in (
                    self._resolve_strategy(txn, resource)
                    for resource in predicate.resources()
                )
            }
            if len(owners) <= 1:
                strategy = next(iter(owners.values()), self.registry.default)
                add(strategy, predicate)
            else:
                for atom in predicate.conjuncts():
                    resource_owner = {
                        self._resolve_strategy(txn, resource)
                        for resource in atom.resources()
                    }
                    add(next(iter(resource_owner)), atom)

        # Local strategies first so external (delegation) grants only
        # happen when everything local already succeeded — minimising
        # cross-domain compensation.
        return sorted(
            groups.values(), key=lambda entry: (entry[0].external, entry[0].name)
        )

    def _active_for(
        self, txn: Transaction, strategy: IsolationStrategy, now: int
    ) -> list[Promise]:
        return [
            self._view_for(promise, strategy)
            for promise in self._table.active(txn, now)
            if strategy.name in self._strategy_names_of(promise)
        ]

    @staticmethod
    def _view_for(promise: Promise, strategy: IsolationStrategy) -> Promise:
        """A copy of ``promise`` carrying only ``strategy``'s predicates.

        A request may span strategies (stock via escrow + a suite via
        satisfiability); each strategy must only ever see — and on
        consumption, take — its own share, or quantity atoms would be
        consumed twice and foreign escrowed demands would look violated.
        """
        split = promise.meta.get(_SPLIT_KEY)
        if not isinstance(split, Mapping):
            return promise
        raw = split.get(strategy.name)
        if not isinstance(raw, list):
            return promise
        predicates = tuple(Predicate.from_dict(entry) for entry in raw)
        return Promise(
            promise_id=promise.promise_id,
            client_id=promise.client_id,
            predicates=predicates,
            granted_at=promise.granted_at,
            expires_at=promise.expires_at,
            status=promise.status,
            meta=promise.meta,
        )

    def _strategies_of(self, promise: Promise) -> list[IsolationStrategy]:
        by_name = {
            strategy.name: strategy for strategy in self.registry.strategies()
        }
        return [
            by_name[name]
            for name in self._strategy_names_of(promise)
            if name in by_name
        ]

    @staticmethod
    def _strategy_names_of(promise: Promise) -> list[str]:
        names = promise.meta.get(_STRATEGIES_KEY, [])
        if isinstance(names, list):
            return [str(name) for name in names]
        return []

    def _tagged(self, txn: Transaction) -> dict[str, str]:
        """instance id → owning promise id, for every tagged instance."""
        tagged: dict[str, str] = {}
        for __, payload in txn.scan(
            INSTANCES_TABLE,
            lambda __, record: bool(record.get("promise_id")),
        ):
            if isinstance(payload, Mapping):
                tagged[str(payload["instance_id"])] = str(payload["promise_id"])
        return tagged

    def _compensate(
        self, compensations: list[tuple[IsolationStrategy, object]]
    ) -> None:
        for strategy, decision in compensations:
            if getattr(decision, "ok", False):
                strategy.compensate(decision)  # type: ignore[arg-type]

    # ------------------------------------------------------ counter-offers

    def probe(self, predicates: Sequence[Predicate], duration: int) -> bool:
        """Would these predicates be grantable right now?

        Runs the full grant path inside a sacrificial transaction and
        aborts it, so nothing is recorded and no resource state changes.
        Resources owned by *external* strategies (delegation) cannot be
        probed — an upstream request is not reversible by a local abort —
        so any predicate touching them reports False.
        """
        now = self.clock.now
        txn = self._store.begin()
        try:
            self._sweep(txn, now)
            probe_id = f"{self.name}:probe"
            for strategy, group in self._split(txn, list(predicates)):
                if strategy.external:
                    return False
                active = self._active_for(txn, strategy, now)
                decision = strategy.can_grant(
                    txn,
                    self._resources,
                    probe_id,
                    duration,
                    group,
                    active,
                    self._tagged(txn),
                )
                if not decision.ok:
                    return False
            return True
        finally:
            if txn.is_active:
                txn.abort()

    def _counter_offer(
        self, request: PromiseRequest, duration: int
    ) -> Predicate | None:
        """The strongest weakening of a rejected request that would grant.

        Implements §6's uninvestigated 'accepted with the condition XX'
        response for the two monotone predicate families: quantity demands
        (binary-search the largest grantable amount) and property-count
        demands (binary-search the largest grantable count).  Requests
        with several predicates or non-monotone shapes get no offer.
        """
        from .predicates import PropertyMatch, QuantityAtLeast

        if request.releases or len(request.predicates) != 1:
            return None
        predicate = request.predicates[0]
        if isinstance(predicate, QuantityAtLeast):
            best = self._binary_search(
                predicate.amount - 1,
                lambda amount: self.probe(
                    [QuantityAtLeast(predicate.pool_id, amount)], duration
                ),
            )
            if best is None:
                return None
            return QuantityAtLeast(predicate.pool_id, best)
        if isinstance(predicate, PropertyMatch) and predicate.count > 1:
            best = self._binary_search(
                predicate.count - 1,
                lambda count: self.probe(
                    [
                        PropertyMatch(
                            predicate.collection_id,
                            predicate.conditions,
                            count,
                        )
                    ],
                    duration,
                ),
            )
            if best is None:
                return None
            return PropertyMatch(
                predicate.collection_id, predicate.conditions, best
            )
        return None

    @staticmethod
    def _binary_search(upper: int, grantable) -> int | None:
        """Largest value in [1, upper] for which ``grantable`` holds."""
        low, high = 1, upper
        best: int | None = None
        while low <= high:
            middle = (low + high) // 2
            if grantable(middle):
                best = middle
                low = middle + 1
            else:
                high = middle - 1
        return best

    @staticmethod
    def _run_post_commit(post_commit: list[Callable[[], None]]) -> None:
        """Run effects that had to wait for the local commit.

        These are cross-trust-domain actions (delegated upstream releases)
        that a local rollback could never undo — deferring them is what
        keeps a failed local request from leaking releases upstream.
        """
        for effect in post_commit:
            effect()

    # ------------------------------------------------------------- events

    def _emit(
        self,
        kind: EventKind,
        at: int,
        promise_id: str | None = None,
        client_id: str = "",
        detail: str = "",
    ) -> None:
        """Publish one lifecycle event (only for committed outcomes —
        rejection and violation describe the abort itself)."""
        self.events.emit(
            PromiseEvent(
                kind=kind,
                at=at,
                promise_id=promise_id,
                client_id=client_id,
                detail=detail,
            )
        )

    def _emit_expired(self, promise_ids: list[str], at: int) -> None:
        for promise_id in promise_ids:
            self._emit(EventKind.EXPIRED, at, promise_id=promise_id)
