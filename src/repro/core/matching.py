"""Bipartite matching for property-view promise checking.

"This might be done by finding a matching in a bipartite graph where edges
link the untaken resources to the promise predicates that they can
satisfy." (paper, §5)

The checker builds a graph whose left nodes are *demand slots* (one per
requested instance) and whose right nodes are candidate instances, then
asks for a maximum matching; a promise set is jointly satisfiable exactly
when the matching saturates every slot.  The implementation is
Hopcroft–Karp, O(E·√V), written from scratch; tests cross-check it against
networkx on random graphs.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Mapping

_INFINITY = float("inf")


def maximum_bipartite_matching(
    adjacency: Mapping[Hashable, Iterable[Hashable]],
) -> dict[Hashable, Hashable]:
    """Maximum matching of a bipartite graph.

    ``adjacency`` maps each left node to the right nodes it may match.
    Returns a dict assigning matched left nodes to right nodes (unmatched
    left nodes are absent).
    """
    # Freeze adjacency so repeated passes are cheap and deterministic.
    graph: dict[Hashable, list[Hashable]] = {
        left: list(rights) for left, rights in adjacency.items()
    }
    match_left: dict[Hashable, Hashable] = {}
    match_right: dict[Hashable, Hashable] = {}

    def bfs() -> bool:
        """Layer the graph from free left nodes; True if an augmenting
        path exists."""
        queue: deque[Hashable] = deque()
        for left in graph:
            if left not in match_left:
                distance[left] = 0
                queue.append(left)
            else:
                distance[left] = _INFINITY
        found = False
        while queue:
            left = queue.popleft()
            for right in graph[left]:
                nxt = match_right.get(right)
                if nxt is None:
                    found = True
                elif distance[nxt] is _INFINITY:
                    distance[nxt] = distance[left] + 1
                    queue.append(nxt)
        return found

    def dfs(left: Hashable) -> bool:
        """Try to extend an augmenting path from ``left``."""
        for right in graph[left]:
            nxt = match_right.get(right)
            if nxt is None or (
                distance.get(nxt) == distance[left] + 1 and dfs(nxt)
            ):
                match_left[left] = right
                match_right[right] = left
                return True
        distance[left] = _INFINITY
        return False

    distance: dict[Hashable, float] = {}
    while bfs():
        for left in graph:
            if left not in match_left:
                dfs(left)
    return match_left


def is_perfect_for_left(
    adjacency: Mapping[Hashable, Iterable[Hashable]],
) -> tuple[bool, dict[Hashable, Hashable]]:
    """Does a matching exist that saturates *every* left node?

    Returns ``(saturated, matching)``; when ``saturated`` is False the
    matching shows how far the demands got (useful in rejection reasons).
    """
    matching = maximum_bipartite_matching(adjacency)
    return len(matching) == len(adjacency), matching


def unmatched_lefts(
    adjacency: Mapping[Hashable, Iterable[Hashable]],
    matching: Mapping[Hashable, Hashable],
) -> list[Hashable]:
    """Left nodes a matching failed to cover (rejection diagnostics)."""
    return [left for left in adjacency if left not in matching]
