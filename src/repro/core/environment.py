"""Promise environments (paper, §6).

"Successful promise requests establish promise environments.  Application
requests can specify that they must be executed within a specific promise
environment ... by including an ``<environment>`` element in the associated
message header."

An :class:`Environment` names the promises that protect an application
request, and for each one whether it should be released once the request
completes.  Release-on-completion is the second atomicity requirement of
§4: the release and the action form a unit — if the action fails the
promise remains in force.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping


@dataclass(frozen=True)
class Environment:
    """An ``<environment>`` header element.

    ``release_after`` maps promise ids to the release option: ``True``
    releases the promise after the request succeeds (and the state changes
    the action makes are allowed to violate it — §8: "Applications are
    allowed, of course, to make state changes that will violate those
    promises that are being released atomically with the action").
    """

    promise_ids: tuple[str, ...] = ()
    release_after: Mapping[str, bool] = field(default_factory=dict)

    def __post_init__(self) -> None:
        unknown = set(self.release_after) - set(self.promise_ids)
        if unknown:
            raise ValueError(
                f"release options for promises not in the environment: "
                f"{sorted(unknown)}"
            )

    @classmethod
    def of(cls, *promise_ids: str, release: Iterable[str] = ()) -> "Environment":
        """Build an environment; ids in ``release`` are released on success."""
        release_set = set(release)
        unknown = release_set - set(promise_ids)
        if unknown:
            raise ValueError(
                f"cannot release promises outside the environment: "
                f"{sorted(unknown)}"
            )
        return cls(
            promise_ids=tuple(promise_ids),
            release_after={pid: pid in release_set for pid in promise_ids},
        )

    @classmethod
    def empty(cls) -> "Environment":
        """An environment protecting nothing (unprotected action)."""
        return cls()

    @property
    def is_empty(self) -> bool:
        """True when no promises protect the request."""
        return not self.promise_ids

    def releases(self) -> list[str]:
        """Promise ids to release after the action succeeds."""
        return [pid for pid in self.promise_ids if self.release_after.get(pid)]

    def kept(self) -> list[str]:
        """Promise ids that remain in force after the action."""
        return [pid for pid in self.promise_ids if not self.release_after.get(pid)]

    def to_dict(self) -> dict[str, object]:
        """Serialise for the protocol layer."""
        return {
            "promise_ids": list(self.promise_ids),
            "release_after": {
                pid: bool(self.release_after.get(pid))
                for pid in self.promise_ids
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Environment":
        """Inverse of :meth:`to_dict`."""
        raw_ids = payload.get("promise_ids", [])
        raw_release = payload.get("release_after", {})
        if not isinstance(raw_ids, list) or not isinstance(raw_release, Mapping):
            raise ValueError("malformed environment payload")
        return cls(
            promise_ids=tuple(str(pid) for pid in raw_ids),
            release_after={
                str(pid): bool(flag) for pid, flag in raw_release.items()
            },
        )
