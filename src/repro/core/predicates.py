"""Predicate model for promises.

"Predicates are simply Boolean expressions over resources" (paper, §3).
This module gives those expressions a concrete, checkable form covering the
paper's three resource views:

* :class:`QuantityAtLeast` — the **anonymous view** (§3.1): at least N units
  of an interchangeable pool (stock on hand, an account balance).
* :class:`InstanceAvailable` — the **named view** (§3.2): a uniquely
  identified instance ('room 212, Sydney Hilton, 12/3/2007') is free.
* :class:`PropertyMatch` — the **view via properties** (§3.3): some number
  of instances from a collection whose properties satisfy a conjunction of
  conditions ('a 5th-floor room', 'a room with a view').

Predicates compose with :class:`And`, :class:`Or` and :class:`Not`.  The
model deliberately allows arbitrary composition (§3: "no restrictions on
the form"); the *checking* algorithms support conjunctions and bounded
disjunctions and raise :class:`PredicateUnsupported` beyond that — an
explicit boundary instead of an unverifiable grant.

All predicates serialise to plain dictionaries (and back) so they can ride
inside ``<promise-request>`` SOAP header elements (§6) and be persisted in
the promise table (§8).
"""

from __future__ import annotations

import enum
import itertools
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Protocol, Sequence

from .errors import PredicateError, PredicateUnsupported

MAX_DNF_BRANCHES = 128
"""Upper bound on disjunctive-normal-form expansion during checking."""


# --------------------------------------------------------------------------
# Resource state that predicates are evaluated against
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class InstanceState:
    """Read-only snapshot of one resource instance.

    ``status`` is one of ``available`` / ``promised`` / ``taken`` — the
    'allocated tag' lifecycle of §5.
    """

    instance_id: str
    collection_id: str
    status: str
    properties: Mapping[str, object]

    @property
    def is_available(self) -> bool:
        """True when the instance may back a new promise."""
        return self.status == "available"

    @property
    def is_taken(self) -> bool:
        """True when the instance has been definitely consumed."""
        return self.status == "taken"


class ResourceStateView(Protocol):
    """What a predicate needs to know about current resource state.

    The Resource Manager provides this, bound to a transaction, so that
    predicate evaluation sees transactionally consistent state (§8).
    """

    def pool_available(self, pool_id: str) -> int:
        """Unallocated quantity in an anonymous pool."""
        ...

    def instance(self, instance_id: str) -> InstanceState | None:
        """One named instance, or ``None`` when unknown."""
        ...

    def instances_in(self, collection_id: str) -> list[InstanceState]:
        """All instances belonging to a collection."""
        ...

    def property_ordering(self, collection_id: str, name: str) -> Sequence[object] | None:
        """Worst-to-best ordering for an ordered property, if declared."""
        ...


# --------------------------------------------------------------------------
# Property conditions (the building blocks of PropertyMatch)
# --------------------------------------------------------------------------


class Op(enum.Enum):
    """Comparison operators usable in property conditions."""

    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    IN = "in"

    @classmethod
    def from_symbol(cls, symbol: str) -> "Op":
        """Look an operator up by its surface syntax."""
        for op in cls:
            if op.value == symbol:
                return op
        raise PredicateError(f"unknown operator {symbol!r}")


@dataclass(frozen=True)
class PropertyCondition:
    """One condition over a single instance property.

    ``or_better`` implements the paper's ordered-acceptability idea (§3.3):
    a promise for an economy seat is satisfied by business class.  It only
    makes sense with ``Op.EQ`` and requires the collection schema to declare
    an ordering for the property.
    """

    name: str
    op: Op
    value: object
    or_better: bool = False

    def __post_init__(self) -> None:
        if self.or_better and self.op is not Op.EQ:
            raise PredicateError("or_better requires an equality condition")

    def matches(
        self,
        properties: Mapping[str, object],
        ordering: Sequence[object] | None = None,
    ) -> bool:
        """Does ``properties`` satisfy this condition?

        Missing properties never match.  ``ordering`` (worst-to-best) is
        consulted only for ``or_better`` conditions.
        """
        if self.name not in properties:
            return False
        actual = properties[self.name]
        if self.or_better:
            if actual == self.value:
                return True
            if ordering is None:
                return False
            try:
                return ordering.index(actual) >= ordering.index(self.value)
            except ValueError:
                return False
        try:
            if self.op is Op.EQ:
                return actual == self.value
            if self.op is Op.NE:
                return actual != self.value
            if self.op is Op.IN:
                return actual in self.value  # type: ignore[operator]
            if self.op is Op.LT:
                return actual < self.value  # type: ignore[operator]
            if self.op is Op.LE:
                return actual <= self.value  # type: ignore[operator]
            if self.op is Op.GT:
                return actual > self.value  # type: ignore[operator]
            if self.op is Op.GE:
                return actual >= self.value  # type: ignore[operator]
        except TypeError:
            return False
        raise PredicateError(f"unhandled operator {self.op}")  # pragma: no cover

    def to_dict(self) -> dict[str, object]:
        """Serialise for protocol transport / persistence."""
        payload: dict[str, object] = {
            "name": self.name,
            "op": self.op.value,
            "value": self.value,
        }
        if self.or_better:
            payload["or_better"] = True
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "PropertyCondition":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=str(payload["name"]),
            op=Op.from_symbol(str(payload["op"])),
            value=payload["value"],
            or_better=bool(payload.get("or_better", False)),
        )

    def describe(self) -> str:
        """Human-readable rendering."""
        suffix = " (or better)" if self.or_better else ""
        return f"{self.name} {self.op.value} {self.value!r}{suffix}"


# --------------------------------------------------------------------------
# Predicate AST
# --------------------------------------------------------------------------


class Predicate(ABC):
    """Abstract base of all promise predicates."""

    kind: str = "abstract"

    @abstractmethod
    def evaluate(self, state: ResourceStateView) -> bool:
        """Is this predicate satisfied by ``state`` *in isolation*?

        Evaluation ignores other outstanding promises — that interplay is
        the checking algorithms' job (:mod:`repro.core.checking`), because
        promises must be satisfiable by *disjoint* resources (§9).
        """

    @abstractmethod
    def resources(self) -> frozenset[str]:
        """Identifiers of every pool/instance/collection mentioned."""

    @abstractmethod
    def to_dict(self) -> dict[str, object]:
        """Serialise to a plain dictionary (tagged by ``kind``)."""

    @abstractmethod
    def describe(self) -> str:
        """Human-readable rendering for logs and error messages."""

    # -- composition ------------------------------------------------------

    def __and__(self, other: "Predicate") -> "And":
        return And.of(self, other)

    def __or__(self, other: "Predicate") -> "Or":
        return Or.of(self, other)

    def __invert__(self) -> "Not":
        return Not(self)

    # -- normal forms -----------------------------------------------------

    def conjuncts(self) -> list["AtomicPredicate"]:
        """Flatten a pure conjunction into its atoms.

        Raises :class:`PredicateUnsupported` when the predicate contains
        ``Or``/``Not`` — callers wanting disjunction support use
        :meth:`dnf`.
        """
        branches = self.dnf()
        if len(branches) != 1:
            raise PredicateUnsupported(
                f"{self.describe()} is not a pure conjunction"
            )
        return branches[0]

    def dnf(self) -> list[list["AtomicPredicate"]]:
        """Expand to disjunctive normal form: a list of atom-conjunctions.

        ``Not`` is rejected — negative promises ('this will NOT hold') are
        outside the paper's model.  Expansion is capped at
        :data:`MAX_DNF_BRANCHES` branches.
        """
        branches = self._dnf()
        if len(branches) > MAX_DNF_BRANCHES:
            raise PredicateUnsupported(
                f"predicate expands to {len(branches)} DNF branches "
                f"(limit {MAX_DNF_BRANCHES})"
            )
        return branches

    @abstractmethod
    def _dnf(self) -> list[list["AtomicPredicate"]]: ...

    # -- serialisation ----------------------------------------------------

    @staticmethod
    def from_dict(payload: Mapping[str, object]) -> "Predicate":
        """Deserialise any predicate produced by :meth:`to_dict`."""
        kind = payload.get("kind")
        codec = _PREDICATE_KINDS.get(str(kind))
        if codec is None:
            raise PredicateError(f"unknown predicate kind {kind!r}")
        return codec(payload)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.describe()}>"


class AtomicPredicate(Predicate):
    """A leaf predicate — the unit the checking algorithms consume."""

    def _dnf(self) -> list[list["AtomicPredicate"]]:
        return [[self]]


@dataclass(frozen=True, repr=False)
class QuantityAtLeast(AtomicPredicate):
    """Anonymous view: at least ``amount`` units available in ``pool_id``.

    "the sum of all promised resources should not exceed the resources
    that are actually available" (§3.1) — the checking algorithm sums
    these demands.
    """

    pool_id: str
    amount: int
    kind = "quantity"

    def __post_init__(self) -> None:
        if self.amount <= 0:
            raise PredicateError("quantity demands must be positive")

    def evaluate(self, state: ResourceStateView) -> bool:
        return state.pool_available(self.pool_id) >= self.amount

    def resources(self) -> frozenset[str]:
        return frozenset({self.pool_id})

    def to_dict(self) -> dict[str, object]:
        return {"kind": self.kind, "pool": self.pool_id, "amount": self.amount}

    def describe(self) -> str:
        return f"quantity({self.pool_id!r}) >= {self.amount}"


@dataclass(frozen=True, repr=False)
class InstanceAvailable(AtomicPredicate):
    """Named view: the uniquely identified ``instance_id`` is available.

    "A single named resource instance cannot be promised to more than one
    client application at the same time" (§3.2).
    """

    instance_id: str
    kind = "instance"

    def evaluate(self, state: ResourceStateView) -> bool:
        instance = state.instance(self.instance_id)
        return instance is not None and not instance.is_taken

    def resources(self) -> frozenset[str]:
        return frozenset({self.instance_id})

    def to_dict(self) -> dict[str, object]:
        return {"kind": self.kind, "instance": self.instance_id}

    def describe(self) -> str:
        return f"available({self.instance_id!r})"


@dataclass(frozen=True, repr=False)
class PropertyMatch(AtomicPredicate):
    """Property view: ``count`` instances of ``collection_id`` matching all
    ``conditions``.

    An empty condition tuple asks for *any* ``count`` instances of the
    collection — the anonymous-over-named access of §3.2 (any economy seat
    on the flight).
    """

    collection_id: str
    conditions: tuple[PropertyCondition, ...] = field(default_factory=tuple)
    count: int = 1
    kind = "property"

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise PredicateError("property demands must request >= 1 instance")

    def matches_instance(
        self, instance: InstanceState, state: ResourceStateView | None = None
    ) -> bool:
        """Does a single instance satisfy every condition?"""
        for condition in self.conditions:
            ordering = None
            if condition.or_better and state is not None:
                ordering = state.property_ordering(
                    self.collection_id, condition.name
                )
            if not condition.matches(instance.properties, ordering):
                return False
        return True

    def evaluate(self, state: ResourceStateView) -> bool:
        matching = sum(
            1
            for instance in state.instances_in(self.collection_id)
            if not instance.is_taken and self.matches_instance(instance, state)
        )
        return matching >= self.count

    def resources(self) -> frozenset[str]:
        return frozenset({self.collection_id})

    def to_dict(self) -> dict[str, object]:
        return {
            "kind": self.kind,
            "collection": self.collection_id,
            "conditions": [condition.to_dict() for condition in self.conditions],
            "count": self.count,
        }

    def describe(self) -> str:
        if not self.conditions:
            body = "any"
        else:
            body = " and ".join(c.describe() for c in self.conditions)
        return f"match({self.collection_id!r}, {body}, count={self.count})"


class _Combinator(Predicate):
    """Shared machinery for And/Or."""

    children: tuple[Predicate, ...]

    def resources(self) -> frozenset[str]:
        gathered: frozenset[str] = frozenset()
        for child in self.children:
            gathered |= child.resources()
        return gathered


@dataclass(frozen=True, repr=False)
class And(_Combinator):
    """Conjunction: every child must hold (and be jointly satisfiable)."""

    children: tuple[Predicate, ...]
    kind = "and"

    @classmethod
    def of(cls, *predicates: Predicate) -> "Predicate":
        """Build a conjunction, flattening nested ``And`` nodes.

        A single-child conjunction collapses to the child itself, keeping
        predicates in a canonical form (so serialisation round-trips).
        """
        flat: list[Predicate] = []
        for predicate in predicates:
            if isinstance(predicate, And):
                flat.extend(predicate.children)
            else:
                flat.append(predicate)
        if not flat:
            raise PredicateError("And requires at least one child")
        if len(flat) == 1:
            return flat[0]
        return cls(tuple(flat))

    def evaluate(self, state: ResourceStateView) -> bool:
        return all(child.evaluate(state) for child in self.children)

    def _dnf(self) -> list[list[AtomicPredicate]]:
        child_branches = [child._dnf() for child in self.children]
        combined: list[list[AtomicPredicate]] = []
        for combo in itertools.product(*child_branches):
            merged: list[AtomicPredicate] = []
            for branch in combo:
                merged.extend(branch)
            combined.append(merged)
            if len(combined) > MAX_DNF_BRANCHES:
                raise PredicateUnsupported(
                    f"DNF expansion exceeds {MAX_DNF_BRANCHES} branches"
                )
        return combined

    def to_dict(self) -> dict[str, object]:
        return {
            "kind": self.kind,
            "children": [child.to_dict() for child in self.children],
        }

    def describe(self) -> str:
        return "(" + " and ".join(c.describe() for c in self.children) + ")"


@dataclass(frozen=True, repr=False)
class Or(_Combinator):
    """Disjunction: at least one child must hold.

    Checking tries each branch; §3.3's essential-vs-desirable negotiation
    is expressible as an ``Or`` of a strong and a weaker conjunction.
    """

    children: tuple[Predicate, ...]
    kind = "or"

    @classmethod
    def of(cls, *predicates: Predicate) -> "Predicate":
        """Build a disjunction, flattening nested ``Or`` nodes.

        A single-child disjunction collapses to the child itself (canonical
        form).
        """
        flat: list[Predicate] = []
        for predicate in predicates:
            if isinstance(predicate, Or):
                flat.extend(predicate.children)
            else:
                flat.append(predicate)
        if not flat:
            raise PredicateError("Or requires at least one child")
        if len(flat) == 1:
            return flat[0]
        return cls(tuple(flat))

    def evaluate(self, state: ResourceStateView) -> bool:
        return any(child.evaluate(state) for child in self.children)

    def _dnf(self) -> list[list[AtomicPredicate]]:
        branches: list[list[AtomicPredicate]] = []
        for child in self.children:
            branches.extend(child._dnf())
            if len(branches) > MAX_DNF_BRANCHES:
                raise PredicateUnsupported(
                    f"DNF expansion exceeds {MAX_DNF_BRANCHES} branches"
                )
        return branches

    def to_dict(self) -> dict[str, object]:
        return {
            "kind": self.kind,
            "children": [child.to_dict() for child in self.children],
        }

    def describe(self) -> str:
        return "(" + " or ".join(c.describe() for c in self.children) + ")"


@dataclass(frozen=True, repr=False)
class Not(Predicate):
    """Negation.

    Supported for *evaluation* only.  Negative guarantees cannot be checked
    for mutual satisfiability with positive demands, so :meth:`dnf` (and
    therefore promise granting) rejects it.
    """

    child: Predicate
    kind = "not"

    def evaluate(self, state: ResourceStateView) -> bool:
        return not self.child.evaluate(state)

    def resources(self) -> frozenset[str]:
        return self.child.resources()

    def _dnf(self) -> list[list[AtomicPredicate]]:
        raise PredicateUnsupported(
            "negated predicates cannot be promised (only evaluated)"
        )

    def to_dict(self) -> dict[str, object]:
        return {"kind": self.kind, "child": self.child.to_dict()}

    def describe(self) -> str:
        return f"not {self.child.describe()}"


# --------------------------------------------------------------------------
# Convenience constructors (the public predicate-building API)
# --------------------------------------------------------------------------


def quantity_at_least(pool_id: str, amount: int) -> QuantityAtLeast:
    """Anonymous-view demand: ``amount`` units of ``pool_id`` available."""
    return QuantityAtLeast(pool_id, amount)


def named_available(instance_id: str) -> InstanceAvailable:
    """Named-view demand: the specific ``instance_id`` is available."""
    return InstanceAvailable(instance_id)


def property_match(
    collection_id: str,
    conditions: Iterable[PropertyCondition] | None = None,
    count: int = 1,
) -> PropertyMatch:
    """Property-view demand: ``count`` matching instances available."""
    return PropertyMatch(collection_id, tuple(conditions or ()), count)


def where(name: str, op: str | Op, value: object, or_better: bool = False) -> PropertyCondition:
    """Build a property condition: ``where('floor', '==', 5)``."""
    resolved = op if isinstance(op, Op) else Op.from_symbol(op)
    return PropertyCondition(name, resolved, value, or_better)


# --------------------------------------------------------------------------
# Deserialisation registry
# --------------------------------------------------------------------------


def _decode_quantity(payload: Mapping[str, object]) -> Predicate:
    return QuantityAtLeast(str(payload["pool"]), int(payload["amount"]))  # type: ignore[arg-type]


def _decode_instance(payload: Mapping[str, object]) -> Predicate:
    return InstanceAvailable(str(payload["instance"]))


def _decode_property(payload: Mapping[str, object]) -> Predicate:
    raw_conditions = payload.get("conditions", [])
    if not isinstance(raw_conditions, list):
        raise PredicateError("property predicate conditions must be a list")
    conditions = tuple(
        PropertyCondition.from_dict(entry) for entry in raw_conditions
    )
    return PropertyMatch(
        str(payload["collection"]), conditions, int(payload.get("count", 1))  # type: ignore[arg-type]
    )


def _decode_children(payload: Mapping[str, object]) -> tuple[Predicate, ...]:
    raw = payload.get("children")
    if not isinstance(raw, list) or not raw:
        raise PredicateError("combinator requires a non-empty children list")
    return tuple(Predicate.from_dict(entry) for entry in raw)


def _decode_and(payload: Mapping[str, object]) -> Predicate:
    return And(_decode_children(payload))


def _decode_or(payload: Mapping[str, object]) -> Predicate:
    return Or(_decode_children(payload))


def _decode_not(payload: Mapping[str, object]) -> Predicate:
    child = payload.get("child")
    if not isinstance(child, Mapping):
        raise PredicateError("not-predicate requires a child mapping")
    return Not(Predicate.from_dict(child))


_PREDICATE_KINDS = {
    "quantity": _decode_quantity,
    "instance": _decode_instance,
    "property": _decode_property,
    "and": _decode_and,
    "or": _decode_or,
    "not": _decode_not,
}
