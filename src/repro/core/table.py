"""The promise table (paper, §8).

"The promise manager keeps a record of all non-expired promises and their
predicates in a 'promise table'.  Promises are placed in this table when
they are granted and removed when they are released."

The table lives in the transactional store, so insertions and status
changes participate in the same transaction as the application action and
the resource-state reads — the "special care" §8 says is needed to keep
promise state and resource state mutually consistent.  Rather than
physically deleting released/expired rows we mark their status, preserving
an audit trail; :meth:`PromiseTable.vacuum` removes dead rows.
"""

from __future__ import annotations

from ..storage.transactions import Transaction
from .errors import UnknownPromise
from .promise import Promise, PromiseStatus

PROMISES_TABLE = "promise_table"
PROMISE_INDEX_TABLE = "promise_index"
_ACTIVE_KEY = "active"


class PromiseTable:
    """Persistent set of promises, keyed by promise id.

    An ``active`` index row lists the ids of live promises so the hot
    paths (grant-time checking, the post-action sweep) read only live
    rows instead of scanning the whole audit trail.
    """

    def __init__(self, store) -> None:
        self._store = store
        store.create_table(PROMISES_TABLE)
        store.create_table(PROMISE_INDEX_TABLE)

    def insert(self, txn: Transaction, promise: Promise) -> None:
        """Record a newly granted promise."""
        txn.insert(PROMISES_TABLE, promise.promise_id, promise.to_dict())
        if promise.is_active:
            self._index_add(txn, promise.promise_id)

    def get(self, txn: Transaction, promise_id: str) -> Promise:
        """Load one promise; raises :class:`UnknownPromise` when absent."""
        payload = txn.get_or_none(PROMISES_TABLE, promise_id)
        if payload is None:
            raise UnknownPromise(promise_id)
        return Promise.from_dict(payload)  # type: ignore[arg-type]

    def get_or_none(self, txn: Transaction, promise_id: str) -> Promise | None:
        """Load one promise, or ``None`` when absent."""
        payload = txn.get_or_none(PROMISES_TABLE, promise_id)
        if payload is None:
            return None
        return Promise.from_dict(payload)  # type: ignore[arg-type]

    def update(self, txn: Transaction, promise: Promise) -> None:
        """Persist changed status/metadata of an existing promise."""
        if not txn.exists(PROMISES_TABLE, promise.promise_id):
            raise UnknownPromise(promise.promise_id)
        txn.put(PROMISES_TABLE, promise.promise_id, promise.to_dict())
        if promise.is_active:
            self._index_add(txn, promise.promise_id)
        else:
            self._index_remove(txn, promise.promise_id)

    def mark(
        self, txn: Transaction, promise_id: str, status: PromiseStatus
    ) -> Promise:
        """Set a promise's status and return the updated promise."""
        promise = self.get(txn, promise_id)
        promise.status = status
        self.update(txn, promise)
        return promise

    def all_promises(self, txn: Transaction) -> list[Promise]:
        """Every promise, regardless of status (audit trail included)."""
        return [
            Promise.from_dict(payload)  # type: ignore[arg-type]
            for __, payload in txn.scan(PROMISES_TABLE)
        ]

    def active(self, txn: Transaction, now: int | None = None) -> list[Promise]:
        """Live promises; with ``now`` given, excludes ones already due
        to expire (they bind nothing once the sweep runs).  Served from
        the active index."""
        promises = []
        for promise in self._active_rows(txn):
            if now is not None and promise.is_expired_at(now):
                continue
            promises.append(promise)
        return promises

    def due_for_expiry(self, txn: Transaction, now: int) -> list[Promise]:
        """ACTIVE promises whose duration has elapsed at ``now``."""
        return [
            promise
            for promise in self._active_rows(txn)
            if promise.is_expired_at(now)
        ]

    def _active_rows(self, txn: Transaction) -> list[Promise]:
        index = txn.get_or_none(PROMISE_INDEX_TABLE, _ACTIVE_KEY) or []
        promises = []
        for promise_id in index:  # type: ignore[union-attr]
            promise = self.get_or_none(txn, str(promise_id))
            if promise is not None and promise.is_active:
                promises.append(promise)
        return promises

    def _index_add(self, txn: Transaction, promise_id: str) -> None:
        index = txn.get_or_none(PROMISE_INDEX_TABLE, _ACTIVE_KEY) or []
        if promise_id not in index:  # type: ignore[operator]
            txn.put(
                PROMISE_INDEX_TABLE,
                _ACTIVE_KEY,
                sorted([*index, promise_id]),  # type: ignore[misc]
            )

    def _index_remove(self, txn: Transaction, promise_id: str) -> None:
        index = txn.get_or_none(PROMISE_INDEX_TABLE, _ACTIVE_KEY)
        if index is None:
            return
        txn.put(
            PROMISE_INDEX_TABLE,
            _ACTIVE_KEY,
            [entry for entry in index if entry != promise_id],  # type: ignore[union-attr]
        )

    def by_client(self, txn: Transaction, client_id: str) -> list[Promise]:
        """All promises granted to one client."""
        return [
            promise
            for promise in self.all_promises(txn)
            if promise.client_id == client_id
        ]

    def count_active(self, txn: Transaction, now: int | None = None) -> int:
        """Number of live promises."""
        return len(self.active(txn, now))

    def vacuum(self, txn: Transaction) -> int:
        """Physically delete released/expired rows; returns rows removed."""
        dead = [
            promise.promise_id
            for promise in self.all_promises(txn)
            if not promise.is_active
        ]
        for promise_id in dead:
            txn.delete(PROMISES_TABLE, promise_id)
            self._index_remove(txn, promise_id)
        return len(dead)
