"""Promise lifecycle events.

The paper's related work (§9) credits ConTract with "notifying the client
when a checked condition changes", and §2 wants violations and expiry to
be visible as "serious exceptions" rather than silent state.  This module
adds that observability: the promise manager emits a typed event for every
lifecycle transition, and listeners (client notifiers, monitors, the
benchmarks' metrics) subscribe to the stream.

Listener failures are isolated — an observer must never be able to break
the pipeline it observes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable


class EventKind(enum.Enum):
    """Lifecycle transitions a promise manager reports."""

    GRANTED = "granted"
    REJECTED = "rejected"
    RELEASED = "released"
    CONSUMED = "consumed"
    EXPIRED = "expired"
    VIOLATED = "violated"


@dataclass(frozen=True)
class PromiseEvent:
    """One lifecycle notification."""

    kind: EventKind
    at: int
    promise_id: str | None = None
    client_id: str = ""
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - debug aid
        subject = self.promise_id or "-"
        return f"[{self.at}] {self.kind.value} {subject} {self.detail}".rstrip()


Listener = Callable[[PromiseEvent], None]


class EventHub:
    """Fan-out of promise events to subscribed listeners."""

    def __init__(self, keep_history: bool = False) -> None:
        self._listeners: list[Listener] = []
        self._history: list[PromiseEvent] | None = [] if keep_history else None

    def subscribe(self, listener: Listener) -> Listener:
        """Register ``listener``; returns it for later unsubscribe."""
        self._listeners.append(listener)
        return listener

    def unsubscribe(self, listener: Listener) -> None:
        """Remove a listener (idempotent)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def emit(self, event: PromiseEvent) -> None:
        """Deliver ``event`` to every listener, isolating their errors."""
        if self._history is not None:
            self._history.append(event)
        for listener in list(self._listeners):
            try:
                listener(event)
            except Exception:  # noqa: BLE001 - observers must not break us
                continue

    @property
    def history(self) -> list[PromiseEvent]:
        """Recorded events (only when built with ``keep_history=True``)."""
        return list(self._history or [])
