"""Client-side helper for the promise protocol.

Builds the §6 messages a promise-aware client sends: promise requests,
application requests under a promise environment, combined
promise-request+action messages, and pure release messages.  Everything
returns the decoded reply parts, so application code never touches XML.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Callable, Mapping, Sequence

import itertools
from typing import Protocol

from ..core.environment import Environment
from ..core.errors import PromiseRejected
from ..core.predicates import Predicate
from ..core.promise import IdGenerator, PromiseRequest, PromiseResponse
from ..obs.trace import SpanRecorder, TraceContext
from .errors import ProtocolError, RequestTimeout
from .messages import ActionOutcomePayload, ActionPayload, Message
from .retry import RetryPolicy


class MessageTransport(Protocol):
    """Anything that can deliver a request message and return the reply.

    Satisfied by :class:`~repro.protocol.transport.InProcessTransport`
    and :class:`~repro.net.transport.NetworkTransport` alike — client
    code is transport-agnostic.
    """

    def send(self, message: Message) -> Message:  # pragma: no cover
        ...


class PromiseClient:
    """A promise-aware client application's protocol stub.

    Sends are wrapped in a :class:`~repro.protocol.retry.RetryPolicy`
    (default: up to three immediate redeliveries, no backoff).  Because
    retries re-send the *same* message id, the transport's §6 reply
    cache guarantees at-most-once execution — a retried request whose
    reply was lost gets the original reply back.  Pass
    ``retry=RetryPolicy.none()`` to surface transport faults directly.

    ``deadline`` is a default end-to-end budget in seconds applied to
    every request this stub sends (overridable per call): the message
    is stamped with the remaining budget before each attempt, backoff
    sleeps are clamped to it, and once it is spent the request fails
    with :class:`~repro.protocol.errors.RequestTimeout` instead of
    retrying into the void.  ``None`` (the default) waits forever.

    ``tracer`` (a :class:`~repro.obs.trace.SpanRecorder`) switches
    distributed tracing on: every request roots a fresh trace, each
    attempt records a child span and stamps the wire message with its
    context, so downstream hops (gateway legs, shard servers) attach
    their spans to the attempt that caused them.  ``None`` (the
    default) sends untraced messages at zero extra cost.
    """

    _instances = itertools.count(1)

    def __init__(
        self,
        name: str,
        transport: MessageTransport,
        retry: RetryPolicy | None = None,
        deadline: float | None = None,
        tracer: SpanRecorder | None = None,
    ) -> None:
        self.name = name
        self._transport = transport
        self._retry = retry or RetryPolicy.fast()
        self._deadline = deadline
        self.tracer = tracer
        #: Trace id of the most recent request this stub sent (``None``
        #: until a traced request goes out) — what ``repro call
        #: --trace`` prints for ``repro trace <id>`` to consume.
        self.last_trace_id: str | None = None
        # Message ids seed the transports' §6 duplicate-suppression
        # cache, so they must be unique per *stub instance*, not just
        # per client name — two stubs named "teller" must never emit
        # the same id.  A deterministic process-wide instance counter
        # keeps runs reproducible.
        instance = next(self._instances)
        self._message_ids = IdGenerator(f"{name}:c{instance}:msg")
        self._request_ids = IdGenerator(f"{name}:req")

    # ------------------------------------------------------------ messages

    def request_promise(
        self,
        endpoint: str,
        predicates: Sequence[Predicate],
        duration: int,
        releases: Sequence[str] = (),
        deadline: float | None = None,
    ) -> PromiseResponse:
        """Send a ``<promise-request>`` and return the response element."""
        request = PromiseRequest(
            request_id=self._request_ids.next_id(),
            client_id=self.name,
            predicates=tuple(predicates),
            duration=duration,
            releases=tuple(releases),
        )
        reply = self._send(
            Message(
                message_id=self._message_ids.next_id(),
                sender=self.name,
                recipient=endpoint,
                promise_requests=(request,),
            ),
            deadline=deadline,
        )
        return self._single_response(reply, request.request_id)

    def require_promise(
        self,
        endpoint: str,
        predicates: Sequence[Predicate],
        duration: int,
        releases: Sequence[str] = (),
    ) -> str:
        """Like :meth:`request_promise` but raise on rejection.

        Returns the granted promise id, letting client code follow the
        paper's intended style: treat rejection as flow control where
        expected, or as an error via this method where not.
        """
        response = self.request_promise(endpoint, predicates, duration, releases)
        if not response.accepted or response.promise_id is None:
            raise PromiseRejected(response.correlation, response.reason)
        return response.promise_id

    def call(
        self,
        endpoint: str,
        service: str,
        operation: str,
        params: Mapping[str, object] | None = None,
        environment: Environment | None = None,
        deadline: float | None = None,
    ) -> ActionOutcomePayload:
        """Send an application request, optionally under an environment."""
        reply = self._send(
            Message(
                message_id=self._message_ids.next_id(),
                sender=self.name,
                recipient=endpoint,
                environment=environment,
                action=ActionPayload(
                    service=service, operation=operation, params=dict(params or {})
                ),
            ),
            deadline=deadline,
        )
        if reply.action_outcome is None:
            raise ProtocolError(
                f"no action outcome in reply (faults: {list(reply.faults)})"
            )
        return reply.action_outcome

    def call_with_promise(
        self,
        endpoint: str,
        predicates: Sequence[Predicate],
        duration: int,
        service: str,
        operation: str,
        params: Mapping[str, object] | None = None,
    ) -> tuple[PromiseResponse, ActionOutcomePayload | None]:
        """A combined message: promise request + action in one envelope.

        "Promise release requests can be combined with application request
        messages" (§2) — and so can promise requests; the endpoint runs
        the action only when the promise part was granted.
        """
        request = PromiseRequest(
            request_id=self._request_ids.next_id(),
            client_id=self.name,
            predicates=tuple(predicates),
            duration=duration,
        )
        reply = self._send(
            Message(
                message_id=self._message_ids.next_id(),
                sender=self.name,
                recipient=endpoint,
                promise_requests=(request,),
                action=ActionPayload(
                    service=service, operation=operation, params=dict(params or {})
                ),
            )
        )
        return self._single_response(reply, request.request_id), reply.action_outcome

    def negotiate(
        self,
        endpoint: str,
        alternatives: Sequence[Sequence[Predicate]],
        duration: int,
        releases: Sequence[str] = (),
    ) -> tuple[int, PromiseResponse]:
        """Try ranked predicate alternatives; first grant wins (§3.3).

        Client-side negotiation over the wire: one promise-request
        message per alternative, stopping at the first acceptance.
        Returns ``(index, response)``; ``index`` is -1 when every
        alternative was rejected.
        """
        if not alternatives:
            raise ValueError("negotiation needs at least one alternative")
        response: PromiseResponse | None = None
        for index, predicates in enumerate(alternatives):
            response = self.request_promise(
                endpoint, predicates, duration, releases
            )
            if response.accepted:
                return index, response
        assert response is not None
        return -1, response

    def release(self, endpoint: str, *promise_ids: str) -> tuple[str, ...]:
        """Send a pure promise-release message; returns reply faults."""
        reply = self._send(
            Message(
                message_id=self._message_ids.next_id(),
                sender=self.name,
                recipient=endpoint,
                environment=Environment.of(*promise_ids, release=promise_ids),
            )
        )
        return reply.faults

    # ------------------------------------------------------------ internals

    def _send(self, message: Message, deadline: float | None = None) -> Message:
        budget = deadline if deadline is not None else self._deadline
        if self.tracer is None:
            return self._send_with_budget(message, budget, self._transport.send)

        # One trace per logical request; every retry attempt records a
        # child span and stamps the wire message with *its* context, so
        # the spans a given attempt causes downstream (gateway legs,
        # shard dispatches) hang off that attempt in the tree.
        root = TraceContext.root()
        self.last_trace_id = root.trace_id
        attempts = itertools.count(1)

        def traced(wire: Message) -> Message:
            assert self.tracer is not None
            with self.tracer.span(
                "client.attempt",
                parent=root,
                attempt=next(attempts),
                deadline_remaining=wire.deadline,
            ) as span:
                reply = self._transport.send(replace(wire, trace=span.context))
                # The reply's epoch stamp names the replica-group
                # incarnation that answered — across a failover the
                # trace then carries both the old and the new epoch.
                span.annotate(epoch=reply.epoch)
                if reply.faults:
                    span.set_outcome("fault")
                return reply

        with self.tracer.span(
            "client.request",
            context=root,
            endpoint=message.recipient,
            message_id=message.message_id,
        ):
            return self._send_with_budget(message, budget, traced)

    def _send_with_budget(
        self,
        message: Message,
        budget: float | None,
        deliver: "Callable[[Message], Message]",
    ) -> Message:
        if budget is None:
            return self._retry.run(lambda: deliver(message))
        expires_at = time.monotonic() + budget

        def attempt() -> Message:
            remaining = expires_at - time.monotonic()
            if remaining <= 0:
                raise RequestTimeout(
                    f"deadline exhausted before sending {message.message_id}"
                )
            # Re-stamp the wire budget each attempt: the server must see
            # how long the caller will *still* wait, not the original
            # allowance.
            return deliver(replace(message, deadline=remaining))

        return self._retry.run(attempt, deadline=expires_at)

    @staticmethod
    def _single_response(reply: Message, request_id: str) -> PromiseResponse:
        for response in reply.promise_responses:
            if response.correlation == request_id:
                return response
        raise ProtocolError(
            f"reply carries no promise-response for request {request_id!r}"
        )
