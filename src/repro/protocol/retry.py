"""Retry policy for promise-protocol requests.

Section 6's at-most-once header semantics exist precisely so that a
client may *redeliver* a request whose reply was lost: the receiving
promise manager recognises the repeated message id and returns the
original reply instead of re-executing.  This module supplies the
client half of that contract — a configurable retry loop with
exponential backoff and *deterministic* jitter drawn from
:class:`repro.sim.random.RandomStream`, so simulations and benchmarks
that inject faults stay reproducible run to run.

The policy only retries failures that redelivery can actually cure:
:class:`~repro.protocol.errors.TransportFailure` (which includes
:class:`~repro.protocol.errors.RequestTimeout`).  Protocol errors,
malformed messages and application faults propagate immediately.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, TypeVar

from ..sim.random import RandomStream
from .errors import TransportFailure

T = TypeVar("T")


def _remaining(deadline: object | None) -> float | None:
    """Seconds left on a deadline, duck-typed.

    Accepts ``None``, anything with a callable ``remaining()`` (a
    :class:`repro.resilience.Deadline`), or a bare float taken as an
    absolute :func:`time.monotonic` timestamp.  Duck-typed so this
    module stays import-light; :mod:`repro.resilience.deadline` hosts
    the canonical twin of this reader.
    """
    if deadline is None:
        return None
    remaining = getattr(deadline, "remaining", None)
    if callable(remaining):
        return remaining()
    return float(deadline) - time.monotonic()  # type: ignore[arg-type]


@dataclass
class RetryPolicy:
    """Exponential-backoff retry schedule for idempotent requests.

    ``max_attempts`` counts the first try: ``max_attempts=3`` means one
    send plus at most two redeliveries.  Delay before the Nth retry is
    ``base_delay * multiplier**(N-1)`` capped at ``max_delay``; when a
    ``jitter`` stream is supplied the delay is scaled by a factor drawn
    uniformly from [0.5, 1.0) — deterministic for a given seed, so two
    runs with the same workload seed back off identically.
    """

    max_attempts: int = 3
    base_delay: float = 0.0
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: RandomStream | None = None
    retry_on: tuple[type[Exception], ...] = (TransportFailure,)
    sleep: Callable[[float], None] = time.sleep
    retries: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")

    # ------------------------------------------------------------ schedule

    def delay(self, failure_number: int) -> float:
        """Seconds to wait after the Nth (1-based) failed attempt."""
        raw = self.base_delay * self.multiplier ** (failure_number - 1)
        capped = min(self.max_delay, raw)
        if self.jitter is not None and capped > 0:
            capped *= 0.5 + self.jitter.random() / 2
        return capped

    # ----------------------------------------------------------- execution

    def run(self, attempt: Callable[[], T], deadline: object | None = None) -> T:
        """Call ``attempt`` until it succeeds or attempts are exhausted.

        Only exceptions matching ``retry_on`` are retried; the last one
        is re-raised when the budget runs out.  ``attempt`` must be safe
        to redeliver — in this protocol it is, because the server side
        suppresses duplicates by message id (§6).

        ``deadline`` (``None``, a :class:`repro.resilience.Deadline`, or
        an absolute monotonic timestamp) bounds the *whole* loop: a
        backoff sleep is clamped to the remaining budget, and once the
        budget is spent the last failure is re-raised instead of
        sleeping past the point anyone is still waiting.
        """
        failures = 0
        while True:
            try:
                return attempt()
            except self.retry_on:
                failures += 1
                if failures >= self.max_attempts:
                    raise
                remaining = _remaining(deadline)
                if remaining is not None and remaining <= 0:
                    raise
                self.retries += 1
                pause = self.delay(failures)
                if remaining is not None:
                    pause = min(pause, remaining)
                if pause > 0:
                    self.sleep(pause)

    # --------------------------------------------------------- constructors

    @classmethod
    def none(cls) -> "RetryPolicy":
        """A policy that never retries (single attempt)."""
        return cls(max_attempts=1)

    @classmethod
    def fast(cls, max_attempts: int = 3) -> "RetryPolicy":
        """Immediate redelivery, no backoff — right for in-process use."""
        return cls(max_attempts=max_attempts, base_delay=0.0)

    @classmethod
    def network(
        cls,
        seed: int = 2007,
        max_attempts: int = 4,
        base_delay: float = 0.05,
        max_delay: float = 1.0,
    ) -> "RetryPolicy":
        """Backoff suitable for a real socket, jittered deterministically."""
        return cls(
            max_attempts=max_attempts,
            base_delay=base_delay,
            max_delay=max_delay,
            jitter=RandomStream(seed, "retry-jitter"),
        )
