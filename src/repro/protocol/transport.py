"""In-process message transport.

Stands in for the SOAP/HTTP stack under the paper's prototype (Figure 2).
Endpoints register a handler; :meth:`InProcessTransport.send` routes a
request message to its recipient and returns the reply.  To keep the
substrate honest, every message is round-tripped through the
:class:`~repro.protocol.soap.SoapCodec` by default — services only ever
see what actually survives serialisation.

The transport also supports deterministic fault injection (drop the
request or the reply on chosen deliveries) so tests can exercise the
failure paths that motivate promises in the first place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .errors import TransportFailure, UnknownEndpoint
from .messages import Message
from .soap import SoapCodec

Handler = Callable[[Message], Message]


@dataclass
class TransportStats:
    """Counters the benchmarks read."""

    sent: int = 0
    delivered: int = 0
    dropped_requests: int = 0
    dropped_replies: int = 0
    bytes_on_wire: int = 0


@dataclass
class _FaultPlan:
    """Deterministic drop schedule: deliveries (1-based) to fail."""

    drop_requests: set[int] = field(default_factory=set)
    drop_replies: set[int] = field(default_factory=set)


class InProcessTransport:
    """Synchronous request/reply routing between named endpoints."""

    def __init__(self, codec: SoapCodec | None = None, wire_format: bool = True) -> None:
        self._handlers: dict[str, Handler] = {}
        self._codec = codec or SoapCodec()
        self._wire_format = wire_format
        self._faults = _FaultPlan()
        self.stats = TransportStats()
        self._log: list[str] = []

    def register(self, endpoint: str, handler: Handler) -> None:
        """Expose ``handler`` under the endpoint name ``endpoint``."""
        self._handlers[endpoint] = handler

    def endpoints(self) -> list[str]:
        """Names of all registered endpoints."""
        return sorted(self._handlers)

    def plan_request_drop(self, delivery_number: int) -> None:
        """Drop the Nth (1-based) request before it reaches the endpoint."""
        self._faults.drop_requests.add(delivery_number)

    def plan_reply_drop(self, delivery_number: int) -> None:
        """Drop the Nth (1-based) reply on its way back."""
        self._faults.drop_replies.add(delivery_number)

    def send(self, message: Message) -> Message:
        """Deliver ``message`` and return the endpoint's reply.

        Raises :class:`UnknownEndpoint` for unroutable recipients and
        :class:`TransportFailure` when a fault plan drops the request or
        the reply.
        """
        self.stats.sent += 1
        delivery = self.stats.sent
        handler = self._handlers.get(message.recipient)
        if handler is None:
            raise UnknownEndpoint(message.recipient)

        if delivery in self._faults.drop_requests:
            self.stats.dropped_requests += 1
            raise TransportFailure(
                f"request {message.message_id} lost in transit"
            )

        inbound = self._round_trip(message)
        reply = handler(inbound)

        if delivery in self._faults.drop_replies:
            self.stats.dropped_replies += 1
            raise TransportFailure(
                f"reply to {message.message_id} lost in transit"
            )

        outbound = self._round_trip(reply)
        self.stats.delivered += 1
        return outbound

    @property
    def wire_log(self) -> list[str]:
        """XML of every message that crossed the wire (newest last)."""
        return list(self._log)

    def _round_trip(self, message: Message) -> Message:
        if not self._wire_format:
            return message
        encoded = self._codec.encode(message)
        self.stats.bytes_on_wire += len(encoded)
        self._log.append(encoded)
        return self._codec.decode(encoded)
