"""In-process message transport.

Stands in for the SOAP/HTTP stack under the paper's prototype (Figure 2).
Endpoints register a handler; :meth:`InProcessTransport.send` routes a
request message to its recipient and returns the reply.  To keep the
substrate honest, every message is round-tripped through the
:class:`~repro.protocol.soap.SoapCodec` by default — services only ever
see what actually survives serialisation.

The transport also supports deterministic fault injection (drop the
request or the reply on chosen deliveries) so tests can exercise the
failure paths that motivate promises in the first place, and implements
§6's at-most-once delivery: replies are cached by message id, so a
redelivered request (same message id) returns the original reply
byte-for-byte instead of re-executing the handler.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from ..obs.metrics import MetricsRegistry, StatsView
from .correlation import ReplyCache
from .errors import TransportFailure, UnknownEndpoint
from .messages import Message
from .soap import SoapCodec

Handler = Callable[[Message], Message]

#: Default bound on the wire log; long simulations would otherwise grow it
#: without limit (one XML string per message that crosses the wire).
DEFAULT_LOG_LIMIT = 1024

#: Default capacity of the at-most-once reply cache.
DEFAULT_DEDUP_CAPACITY = 1024


class TransportStats(StatsView):
    """Counters the benchmarks read (view over ``transport.*`` metrics)."""

    _prefix = "transport"
    _fields = (
        "sent",
        "delivered",
        "dropped_requests",
        "dropped_replies",
        "duplicates_served",
        "bytes_on_wire",
    )


@dataclass
class _FaultPlan:
    """Deterministic drop schedule: deliveries (1-based) to fail."""

    drop_requests: set[int] = field(default_factory=set)
    drop_replies: set[int] = field(default_factory=set)


class InProcessTransport:
    """Synchronous request/reply routing between named endpoints.

    ``log_limit`` caps the wire log (a ring buffer of the most recent
    entries); pass ``None`` to opt out and keep every envelope.
    ``dedup_capacity`` sizes the §6 reply cache; pass ``None`` to
    disable duplicate suppression entirely.
    """

    def __init__(
        self,
        codec: SoapCodec | None = None,
        wire_format: bool = True,
        log_limit: int | None = DEFAULT_LOG_LIMIT,
        dedup_capacity: int | None = DEFAULT_DEDUP_CAPACITY,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self._handlers: dict[str, Handler] = {}
        self._codec = codec or SoapCodec()
        self._wire_format = wire_format
        self._faults = _FaultPlan()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.stats = TransportStats(self.metrics)
        self._log: deque[str] = deque(maxlen=log_limit)
        self._replies: ReplyCache[object] | None = (
            ReplyCache(dedup_capacity) if dedup_capacity else None
        )

    def register(self, endpoint: str, handler: Handler) -> None:
        """Expose ``handler`` under the endpoint name ``endpoint``."""
        self._handlers[endpoint] = handler

    def endpoints(self) -> list[str]:
        """Names of all registered endpoints."""
        return sorted(self._handlers)

    def plan_request_drop(self, delivery_number: int) -> None:
        """Drop the Nth (1-based) request before it reaches the endpoint."""
        self._faults.drop_requests.add(delivery_number)

    def plan_reply_drop(self, delivery_number: int) -> None:
        """Drop the Nth (1-based) reply on its way back."""
        self._faults.drop_replies.add(delivery_number)

    def send(self, message: Message) -> Message:
        """Deliver ``message`` and return the endpoint's reply.

        Raises :class:`UnknownEndpoint` for unroutable recipients and
        :class:`TransportFailure` when a fault plan drops the request or
        the reply.  A message id seen before is served from the reply
        cache without re-invoking the handler (§6 atomic processing) —
        that is what makes redelivery after a lost reply safe.
        """
        self.metrics.inc("transport.sent")
        delivery = self.stats.sent
        handler = self._handlers.get(message.recipient)
        if handler is None:
            raise UnknownEndpoint(message.recipient)

        if delivery in self._faults.drop_requests:
            self.metrics.inc("transport.dropped_requests")
            raise TransportFailure(
                f"request {message.message_id} lost in transit"
            )

        inbound = self._round_trip(message)

        cached = (
            self._replies.get(inbound.message_id)
            if self._replies is not None
            else None
        )
        if cached is not None:
            self.metrics.inc("transport.duplicates_served")
            self.metrics.inc("transport.delivered")
            return self._replay(cached)

        reply = handler(inbound)

        # Encode (and cache) the reply *before* the drop decision: the
        # encode work happened either way, so ``bytes_on_wire`` counts
        # it, and the cached reply is what makes the client's redelivery
        # return the identical envelope without re-executing.
        if self._wire_format:
            encoded = self._codec.encode(reply)
            self.metrics.inc("transport.bytes_on_wire", len(encoded))
            self._log.append(encoded)
            stored: object = encoded
        else:
            stored = reply
        if self._replies is not None:
            self._replies.put(inbound.message_id, stored)

        if delivery in self._faults.drop_replies:
            self.metrics.inc("transport.dropped_replies")
            raise TransportFailure(
                f"reply to {message.message_id} lost in transit"
            )

        outbound = self._codec.decode(encoded) if self._wire_format else reply
        self.metrics.inc("transport.delivered")
        return outbound

    @property
    def wire_log(self) -> list[str]:
        """XML of recent messages that crossed the wire (newest last)."""
        return list(self._log)

    def _round_trip(self, message: Message) -> Message:
        if not self._wire_format:
            return message
        encoded = self._codec.encode(message)
        self.metrics.inc("transport.bytes_on_wire", len(encoded))
        self._log.append(encoded)
        return self._codec.decode(encoded)

    def _replay(self, cached: object) -> Message:
        """Re-deliver a cached reply (it crosses the wire again)."""
        if self._wire_format:
            assert isinstance(cached, str)
            self.metrics.inc("transport.bytes_on_wire", len(cached))
            self._log.append(cached)
            return self._codec.decode(cached)
        assert isinstance(cached, Message)
        return cached
