"""Errors raised by the promise message protocol layer."""

from __future__ import annotations


class ProtocolError(Exception):
    """Base class for protocol-layer failures."""


class MalformedMessage(ProtocolError):
    """A message (or its XML encoding) violates the protocol structure."""


class UnknownEndpoint(ProtocolError):
    """A message was addressed to a service the transport doesn't know."""

    def __init__(self, endpoint: str) -> None:
        super().__init__(f"unknown endpoint {endpoint!r}")
        self.endpoint = endpoint


class TransportFailure(ProtocolError):
    """The (simulated) transport dropped or failed to deliver a message."""


class CorrelationError(ProtocolError):
    """A response arrived that matches no outstanding request."""
