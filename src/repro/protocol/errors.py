"""Errors raised by the promise message protocol layer."""

from __future__ import annotations


class ProtocolError(Exception):
    """Base class for protocol-layer failures."""


class MalformedMessage(ProtocolError):
    """A message (or its XML encoding) violates the protocol structure."""


class UnknownEndpoint(ProtocolError):
    """A message was addressed to a service the transport doesn't know."""

    def __init__(self, endpoint: str) -> None:
        super().__init__(f"unknown endpoint {endpoint!r}")
        self.endpoint = endpoint


class TransportFailure(ProtocolError):
    """The (simulated) transport dropped or failed to deliver a message."""


class RequestTimeout(TransportFailure):
    """A request's deadline elapsed before the reply arrived.

    Subclasses :class:`TransportFailure` because a timeout is
    indistinguishable from a lost message to the caller — and, like a
    lost message, it is safe to retry under §6's at-most-once header
    processing."""


class Overloaded(TransportFailure):
    """The server shed this request under admission control.

    The 503 of the promise protocol.  Subclasses
    :class:`TransportFailure` because overload is transient by nature:
    the correct client reaction is exactly a retry with backoff, and
    redelivery is safe — the server sheds *before* executing or caching
    anything, so the retried message id is brand new to it."""


class CorrelationError(ProtocolError):
    """A response arrived that matches no outstanding request."""
