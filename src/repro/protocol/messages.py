"""Message model for the Promise protocol (paper, §6).

"All of our promise protocol messages can be transferred as elements in
SOAP message headers and the associated actions can be carried within the
body of the same SOAP messages." (§2)

A :class:`Message` therefore has a *header* carrying any subset of
``<promise-request>``, ``<promise-response>`` and ``<environment>``
elements, and a *body* optionally carrying one application action or its
result: "each message may contain any subset of the different elements
relating to promises, and these may be related to the message body or
unrelated ... it can also carry a piggybacked response reporting on the
outcome of a previous request" (§6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..core.environment import Environment
from ..core.promise import PromiseRequest, PromiseResponse
from ..obs.trace import TraceContext
from .errors import MalformedMessage


@dataclass(frozen=True)
class ActionPayload:
    """The application request carried in a message body."""

    service: str
    operation: str
    params: Mapping[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        """Serialise for the codec."""
        return {
            "service": self.service,
            "operation": self.operation,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ActionPayload":
        """Inverse of :meth:`to_dict`."""
        params = payload.get("params", {})
        if not isinstance(params, Mapping):
            raise MalformedMessage("action params must be a mapping")
        return cls(
            service=str(payload["service"]),
            operation=str(payload["operation"]),
            params=dict(params),
        )


@dataclass(frozen=True)
class ActionOutcomePayload:
    """The application response carried back in a message body."""

    success: bool
    value: object = None
    reason: str = ""
    released: tuple[str, ...] = ()
    violations: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, object]:
        """Serialise for the codec."""
        return {
            "success": self.success,
            "value": self.value,
            "reason": self.reason,
            "released": list(self.released),
            "violations": list(self.violations),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ActionOutcomePayload":
        """Inverse of :meth:`to_dict`."""
        return cls(
            success=bool(payload.get("success")),
            value=payload.get("value"),
            reason=str(payload.get("reason", "")),
            released=tuple(str(x) for x in payload.get("released", ())),  # type: ignore[union-attr]
            violations=tuple(str(x) for x in payload.get("violations", ())),  # type: ignore[union-attr]
        )


@dataclass(frozen=True)
class Message:
    """One protocol message: header promise elements plus optional body.

    ``faults`` carries protocol-level errors ('promise-expired',
    'unknown-promise') on the return path, mirroring SOAP faults.

    ``deadline`` is the request's remaining end-to-end budget in
    seconds at the moment the message was encoded — a *relative* value
    (like gRPC's ``grpc-timeout``) because absolute clocks do not
    transfer between machines.  Each forwarding hop re-stamps it;
    ``None`` means the caller is willing to wait forever.

    ``epoch`` is a replication fencing token: the sender's view of the
    recipient replica group's configuration generation.  A server that
    belongs to a newer epoch rejects the request rather than acting on
    routing decisions made against a deposed primary; ``None`` (the
    default everywhere outside replicated fleets) disables the check.

    ``trace`` is the distributed-tracing context (trace-id, span-id,
    parent-span-id) carried as a ``<trace>`` header element.  Each hop
    records its own span as a child of the carried context and stamps
    forwarded messages with its span's context, stitching one client
    request across retries, scatter-gather legs and replica groups.
    ``None`` (the default) means the request is untraced and every
    tracing call site is skipped.
    """

    message_id: str
    sender: str
    recipient: str
    promise_requests: tuple[PromiseRequest, ...] = ()
    promise_responses: tuple[PromiseResponse, ...] = ()
    environment: Environment | None = None
    action: ActionPayload | None = None
    action_outcome: ActionOutcomePayload | None = None
    faults: tuple[str, ...] = ()
    correlation: str = ""
    deadline: float | None = None
    epoch: int | None = None
    trace: TraceContext | None = None

    @property
    def has_promise_part(self) -> bool:
        """True when the header carries any promise element (§8 split)."""
        return bool(
            self.promise_requests
            or self.promise_responses
            or self.environment is not None
        )

    @property
    def has_action_part(self) -> bool:
        """True when the body carries an application request."""
        return self.action is not None

    def reply(
        self,
        message_id: str,
        promise_responses: tuple[PromiseResponse, ...] = (),
        action_outcome: ActionOutcomePayload | None = None,
        faults: tuple[str, ...] = (),
    ) -> "Message":
        """Build the response message for this request.

        The request's trace context rides back on the reply, so a wire
        capture of the response alone still names the trace it belongs
        to.
        """
        return Message(
            message_id=message_id,
            sender=self.recipient,
            recipient=self.sender,
            promise_responses=promise_responses,
            action_outcome=action_outcome,
            faults=faults,
            correlation=self.message_id,
            trace=self.trace,
        )
