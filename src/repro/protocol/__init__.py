"""Promise message protocol (paper, Section 6).

SOAP-envelope messages whose headers carry ``<promise-request>``,
``<promise-response>`` and ``<environment>`` elements and whose bodies
carry application actions; plus an in-process transport, a service-side
endpoint implementing the Figure-2 message split, a client stub with
retry/redelivery support, and (via :mod:`repro.net`) a real asyncio TCP
transport so client, promise manager and resource manager can live in
separate processes.
"""

from .client import MessageTransport, PromiseClient
from .correlation import CorrelationTracker, MatchedExchange, ReplyCache
from .endpoint import ActionResolver, PromiseEndpoint
from .errors import (
    CorrelationError,
    MalformedMessage,
    Overloaded,
    ProtocolError,
    RequestTimeout,
    TransportFailure,
    UnknownEndpoint,
)
from .messages import ActionOutcomePayload, ActionPayload, Message
from .retry import RetryPolicy
from .soap import PROMISE_NS, SOAP_NS, SoapCodec
from .transport import InProcessTransport, TransportStats

# Networked counterparts, re-exported lazily: repro.net imports this
# package's submodules, so an eager import here would be circular.
_NET_EXPORTS = {
    "NetworkClient",
    "NetworkTransport",
    "PromiseServer",
    "ThreadedServer",
}

__all__ = [
    "ActionOutcomePayload",
    "ActionPayload",
    "ActionResolver",
    "CorrelationError",
    "CorrelationTracker",
    "InProcessTransport",
    "MalformedMessage",
    "MatchedExchange",
    "Message",
    "MessageTransport",
    "NetworkClient",
    "NetworkTransport",
    "Overloaded",
    "PROMISE_NS",
    "PromiseClient",
    "PromiseEndpoint",
    "PromiseServer",
    "ProtocolError",
    "ReplyCache",
    "RequestTimeout",
    "RetryPolicy",
    "SOAP_NS",
    "SoapCodec",
    "ThreadedServer",
    "TransportFailure",
    "TransportStats",
    "UnknownEndpoint",
]


def __getattr__(name: str):
    if name in _NET_EXPORTS:
        from .. import net

        return getattr(net, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
