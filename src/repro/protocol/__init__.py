"""Promise message protocol (paper, Section 6).

SOAP-envelope messages whose headers carry ``<promise-request>``,
``<promise-response>`` and ``<environment>`` elements and whose bodies
carry application actions; plus an in-process transport, a service-side
endpoint implementing the Figure-2 message split, and a client stub.
"""

from .client import PromiseClient
from .correlation import CorrelationTracker, MatchedExchange
from .endpoint import ActionResolver, PromiseEndpoint
from .errors import (
    CorrelationError,
    MalformedMessage,
    ProtocolError,
    TransportFailure,
    UnknownEndpoint,
)
from .messages import ActionOutcomePayload, ActionPayload, Message
from .soap import PROMISE_NS, SOAP_NS, SoapCodec
from .transport import InProcessTransport, TransportStats

__all__ = [
    "ActionOutcomePayload",
    "ActionPayload",
    "ActionResolver",
    "CorrelationError",
    "CorrelationTracker",
    "InProcessTransport",
    "MalformedMessage",
    "MatchedExchange",
    "Message",
    "PROMISE_NS",
    "PromiseClient",
    "PromiseEndpoint",
    "ProtocolError",
    "SOAP_NS",
    "SoapCodec",
    "TransportFailure",
    "TransportStats",
    "UnknownEndpoint",
]
