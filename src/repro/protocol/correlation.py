"""Correlation tracking for promise requests and responses.

Section 6: "A request identifier ... is used to correlate promise-requests
and promise-responses", and a reply may carry "a piggybacked response
reporting on the outcome of a previous request".  The tracker keeps the
set of outstanding request ids and matches responses as they arrive — in
any order, possibly piggybacked on unrelated messages.

This module also houses :class:`ReplyCache`, the server-side half of
§6's atomic message processing: replies are remembered by message id so
a redelivered request (a client retrying after a lost reply) gets the
original reply back instead of being executed a second time.  Both the
in-process transport and the networked server use it.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Generic, TypeVar

from ..core.promise import PromiseRequest, PromiseResponse
from .errors import CorrelationError

ReplyT = TypeVar("ReplyT")


@dataclass(frozen=True)
class MatchedExchange:
    """A request paired with its response."""

    request: PromiseRequest
    response: PromiseResponse


class CorrelationTracker:
    """Matches promise responses to their outstanding requests."""

    def __init__(self) -> None:
        self._pending: dict[str, PromiseRequest] = {}
        self._matched: list[MatchedExchange] = []

    def sent(self, request: PromiseRequest) -> None:
        """Record an outgoing request as awaiting its response."""
        if request.request_id in self._pending:
            raise CorrelationError(
                f"request id {request.request_id!r} already outstanding"
            )
        self._pending[request.request_id] = request

    def received(self, response: PromiseResponse) -> MatchedExchange:
        """Match an incoming response; raises when nothing is waiting."""
        request = self._pending.pop(response.correlation, None)
        if request is None:
            raise CorrelationError(
                f"response correlates to unknown request "
                f"{response.correlation!r}"
            )
        exchange = MatchedExchange(request=request, response=response)
        self._matched.append(exchange)
        return exchange

    def outstanding(self) -> list[str]:
        """Request ids still awaiting responses."""
        return sorted(self._pending)

    def history(self) -> list[MatchedExchange]:
        """All matched exchanges, oldest first."""
        return list(self._matched)

    def abandon(self, request_id: str) -> PromiseRequest:
        """Give up on an outstanding request (e.g. transport failure)."""
        request = self._pending.pop(request_id, None)
        if request is None:
            raise CorrelationError(f"no outstanding request {request_id!r}")
        return request


class ReplyCache(Generic[ReplyT]):
    """Bounded LRU cache of replies keyed by request message id.

    Implements the duplicate-suppression side of §6's "atomic
    processing": when a message id is seen again (a redelivery), the
    cached reply is returned verbatim — byte-identical when the cached
    value is the encoded envelope — and the handler is *not* re-run.

    The cache is capacity-bounded (least-recently-used eviction) so a
    long-lived server does not grow without limit; a retry storm only
    needs the last few thousand replies to stay idempotent.  An optional
    ``max_bytes`` bound additionally caps the total size of sized
    replies (``bytes``/``str`` envelopes — unsized values count as
    zero), because a thousand 10 MB replies is a very different cache
    from a thousand 200-byte ones.  The most recent entry is always
    kept, even when it alone exceeds ``max_bytes``: evicting the reply
    just written would guarantee re-execution on the very next retry.

    Evicting an entry is *safe* but not free: a redelivery of an
    evicted message id re-executes the handler.  The promise manager's
    own idempotence (a request id already granted is re-granted, not
    double-granted) is what keeps that harmless — the cache is an
    optimization over it, not the only line of defence.

    **Pinning** closes the one hole byte-bound eviction opens under
    pipelined load: a server that has *executed* a request but not yet
    finished releasing its reply (durability wait, journaling, waking
    duplicate waiters) must be able to guarantee the entry outlives
    those steps no matter how much byte pressure concurrent requests
    apply.  A pinned entry is skipped by both eviction sweeps;
    :meth:`unpin` re-admits it to the LRU order.  All operations take an
    internal lock — worker threads put while the event loop gets.
    """

    def __init__(
        self, capacity: int = 1024, max_bytes: int | None = None
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be at least 1")
        self.capacity = capacity
        self.max_bytes = max_bytes
        self._lock = threading.RLock()
        self._replies: OrderedDict[str, ReplyT] = OrderedDict()
        self._sizes: dict[str, int] = {}
        self._pinned: set[str] = set()
        self.bytes_used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def _size_of(reply: ReplyT) -> int:
        if isinstance(reply, (bytes, bytearray, str)):
            return len(reply)
        return 0

    def get(self, message_id: str) -> ReplyT | None:
        """The cached reply for ``message_id``, or None if unseen."""
        with self._lock:
            reply = self._replies.get(message_id)
            if reply is None:
                self.misses += 1
                return None
            self._replies.move_to_end(message_id)
            self.hits += 1
            return reply

    def put(
        self, message_id: str, reply: ReplyT, *, pinned: bool = False
    ) -> None:
        """Remember the reply sent for ``message_id``.

        ``pinned=True`` shields the entry from eviction until
        :meth:`unpin` — used while the originating request is still in
        flight through the server's release pipeline.
        """
        with self._lock:
            if message_id in self._replies:
                self.bytes_used -= self._sizes[message_id]
            self._replies[message_id] = reply
            self._replies.move_to_end(message_id)
            self._sizes[message_id] = self._size_of(reply)
            self.bytes_used += self._sizes[message_id]
            if pinned:
                self._pinned.add(message_id)
            self._enforce_bounds()

    def pin(self, message_id: str) -> None:
        """Shield an existing entry from eviction (no-op when absent)."""
        with self._lock:
            if message_id in self._replies:
                self._pinned.add(message_id)

    def unpin(self, message_id: str) -> None:
        """Lift a pin and re-apply the byte bound (idempotent)."""
        with self._lock:
            self._pinned.discard(message_id)
            self._enforce_bounds()

    def pinned(self, message_id: str) -> bool:
        """Is this entry currently shielded from eviction?"""
        with self._lock:
            return message_id in self._pinned

    def _enforce_bounds(self) -> None:
        while len(self._replies) > self.capacity:
            if not self._evict_oldest():
                break
        if self.max_bytes is not None:
            while self.bytes_used > self.max_bytes and len(self._replies) > 1:
                if not self._evict_oldest():
                    break

    def _evict_oldest(self) -> bool:
        """Evict the LRU unpinned entry; False when every entry is pinned."""
        for message_id in self._replies:
            if message_id not in self._pinned:
                break
        else:
            return False
        del self._replies[message_id]
        self.bytes_used -= self._sizes.pop(message_id)
        self.evictions += 1
        return True

    def __len__(self) -> int:
        with self._lock:
            return len(self._replies)

    def __contains__(self, message_id: str) -> bool:
        with self._lock:
            return message_id in self._replies
