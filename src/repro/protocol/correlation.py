"""Correlation tracking for promise requests and responses.

Section 6: "A request identifier ... is used to correlate promise-requests
and promise-responses", and a reply may carry "a piggybacked response
reporting on the outcome of a previous request".  The tracker keeps the
set of outstanding request ids and matches responses as they arrive — in
any order, possibly piggybacked on unrelated messages.

This module also houses :class:`ReplyCache`, the server-side half of
§6's atomic message processing: replies are remembered by message id so
a redelivered request (a client retrying after a lost reply) gets the
original reply back instead of being executed a second time.  Both the
in-process transport and the networked server use it.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Generic, TypeVar

from ..core.promise import PromiseRequest, PromiseResponse
from .errors import CorrelationError

ReplyT = TypeVar("ReplyT")


@dataclass(frozen=True)
class MatchedExchange:
    """A request paired with its response."""

    request: PromiseRequest
    response: PromiseResponse


class CorrelationTracker:
    """Matches promise responses to their outstanding requests."""

    def __init__(self) -> None:
        self._pending: dict[str, PromiseRequest] = {}
        self._matched: list[MatchedExchange] = []

    def sent(self, request: PromiseRequest) -> None:
        """Record an outgoing request as awaiting its response."""
        if request.request_id in self._pending:
            raise CorrelationError(
                f"request id {request.request_id!r} already outstanding"
            )
        self._pending[request.request_id] = request

    def received(self, response: PromiseResponse) -> MatchedExchange:
        """Match an incoming response; raises when nothing is waiting."""
        request = self._pending.pop(response.correlation, None)
        if request is None:
            raise CorrelationError(
                f"response correlates to unknown request "
                f"{response.correlation!r}"
            )
        exchange = MatchedExchange(request=request, response=response)
        self._matched.append(exchange)
        return exchange

    def outstanding(self) -> list[str]:
        """Request ids still awaiting responses."""
        return sorted(self._pending)

    def history(self) -> list[MatchedExchange]:
        """All matched exchanges, oldest first."""
        return list(self._matched)

    def abandon(self, request_id: str) -> PromiseRequest:
        """Give up on an outstanding request (e.g. transport failure)."""
        request = self._pending.pop(request_id, None)
        if request is None:
            raise CorrelationError(f"no outstanding request {request_id!r}")
        return request


class ReplyCache(Generic[ReplyT]):
    """Bounded LRU cache of replies keyed by request message id.

    Implements the duplicate-suppression side of §6's "atomic
    processing": when a message id is seen again (a redelivery), the
    cached reply is returned verbatim — byte-identical when the cached
    value is the encoded envelope — and the handler is *not* re-run.

    The cache is capacity-bounded (least-recently-used eviction) so a
    long-lived server does not grow without limit; a retry storm only
    needs the last few thousand replies to stay idempotent.  An optional
    ``max_bytes`` bound additionally caps the total size of sized
    replies (``bytes``/``str`` envelopes — unsized values count as
    zero), because a thousand 10 MB replies is a very different cache
    from a thousand 200-byte ones.  The most recent entry is always
    kept, even when it alone exceeds ``max_bytes``: evicting the reply
    just written would guarantee re-execution on the very next retry.

    Evicting an entry is *safe* but not free: a redelivery of an
    evicted message id re-executes the handler.  The promise manager's
    own idempotence (a request id already granted is re-granted, not
    double-granted) is what keeps that harmless — the cache is an
    optimization over it, not the only line of defence.
    """

    def __init__(
        self, capacity: int = 1024, max_bytes: int | None = None
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be at least 1")
        self.capacity = capacity
        self.max_bytes = max_bytes
        self._replies: OrderedDict[str, ReplyT] = OrderedDict()
        self._sizes: dict[str, int] = {}
        self.bytes_used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def _size_of(reply: ReplyT) -> int:
        if isinstance(reply, (bytes, bytearray, str)):
            return len(reply)
        return 0

    def get(self, message_id: str) -> ReplyT | None:
        """The cached reply for ``message_id``, or None if unseen."""
        reply = self._replies.get(message_id)
        if reply is None:
            self.misses += 1
            return None
        self._replies.move_to_end(message_id)
        self.hits += 1
        return reply

    def put(self, message_id: str, reply: ReplyT) -> None:
        """Remember the reply sent for ``message_id``."""
        if message_id in self._replies:
            self.bytes_used -= self._sizes[message_id]
        self._replies[message_id] = reply
        self._replies.move_to_end(message_id)
        self._sizes[message_id] = self._size_of(reply)
        self.bytes_used += self._sizes[message_id]
        while len(self._replies) > self.capacity:
            self._evict_oldest()
        if self.max_bytes is not None:
            while self.bytes_used > self.max_bytes and len(self._replies) > 1:
                self._evict_oldest()

    def _evict_oldest(self) -> None:
        message_id, _ = self._replies.popitem(last=False)
        self.bytes_used -= self._sizes.pop(message_id)
        self.evictions += 1

    def __len__(self) -> int:
        return len(self._replies)

    def __contains__(self, message_id: str) -> bool:
        return message_id in self._replies
