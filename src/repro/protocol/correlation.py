"""Correlation tracking for promise requests and responses.

Section 6: "A request identifier ... is used to correlate promise-requests
and promise-responses", and a reply may carry "a piggybacked response
reporting on the outcome of a previous request".  The tracker keeps the
set of outstanding request ids and matches responses as they arrive — in
any order, possibly piggybacked on unrelated messages.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.promise import PromiseRequest, PromiseResponse
from .errors import CorrelationError


@dataclass(frozen=True)
class MatchedExchange:
    """A request paired with its response."""

    request: PromiseRequest
    response: PromiseResponse


class CorrelationTracker:
    """Matches promise responses to their outstanding requests."""

    def __init__(self) -> None:
        self._pending: dict[str, PromiseRequest] = {}
        self._matched: list[MatchedExchange] = []

    def sent(self, request: PromiseRequest) -> None:
        """Record an outgoing request as awaiting its response."""
        if request.request_id in self._pending:
            raise CorrelationError(
                f"request id {request.request_id!r} already outstanding"
            )
        self._pending[request.request_id] = request

    def received(self, response: PromiseResponse) -> MatchedExchange:
        """Match an incoming response; raises when nothing is waiting."""
        request = self._pending.pop(response.correlation, None)
        if request is None:
            raise CorrelationError(
                f"response correlates to unknown request "
                f"{response.correlation!r}"
            )
        exchange = MatchedExchange(request=request, response=response)
        self._matched.append(exchange)
        return exchange

    def outstanding(self) -> list[str]:
        """Request ids still awaiting responses."""
        return sorted(self._pending)

    def history(self) -> list[MatchedExchange]:
        """All matched exchanges, oldest first."""
        return list(self._matched)

    def abandon(self, request_id: str) -> PromiseRequest:
        """Give up on an outstanding request (e.g. transport failure)."""
        request = self._pending.pop(request_id, None)
        if request is None:
            raise CorrelationError(f"no outstanding request {request_id!r}")
        return request
