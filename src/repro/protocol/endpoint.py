"""Service-side protocol endpoint (the message front of Figure 2).

"The promise manager receives each message as it arrives from the client
and breaks it up into its Promise and Action component pieces.  If a
message contains a Promise part, this is split into its promise request
and promise environment parts and any new promise requests are checked for
consistency against the existing promises and resource availability.
After this step, any Action is passed on to the associated application and
the promise manager waits for a response." (paper, §8)

The endpoint performs exactly that split and translates the promise-core
exceptions into protocol faults ('promise-expired', 'unknown-promise',
'promise-violated') for the reply message.
"""

from __future__ import annotations

import threading

from typing import Callable

from ..core.environment import Environment
from ..core.errors import (
    PredicateError,
    PromiseExpired,
    PromiseStateError,
    UnknownPromise,
)
from ..core.manager import Action, PromiseManager
from ..core.promise import IdGenerator, PromiseResponse
from ..faults.crashpoints import SimulatedCrash, crash_point
from .errors import MalformedMessage
from .messages import ActionOutcomePayload, ActionPayload, Message

ActionResolver = Callable[[ActionPayload], Action]
"""Maps a body action element to the application callable implementing it.

The services layer provides one (see
:meth:`repro.services.base.ServiceRegistry.resolver`)."""


class PromiseEndpoint:
    """Wraps a :class:`PromiseManager` behind the message protocol."""

    def __init__(
        self,
        manager: PromiseManager,
        resolve: ActionResolver,
        name: str | None = None,
    ) -> None:
        self.manager = manager
        self._resolve = resolve
        self.name = name or manager.name
        self._message_ids = IdGenerator(f"{self.name}:msg")
        # Durable reply dedup only earns its keep when the store outlives
        # the process; in-memory deployments rely on the transport's
        # ReplyCache, and disabling that disables dedup entirely.
        self._journal_replies = manager.store.durable
        # promise id -> the resources its predicates cover, learned as
        # grants succeed.  Lets :meth:`dispatch_keys` key releases and
        # environment-protected actions by resource without a store read
        # (reads on the dispatch path would defeat parallel dispatch).
        # Written under the server's txn mutex, read from the event
        # loop; individual dict ops are atomic, the lock guards the
        # bound-trim read-modify-write.
        self._promise_resources: dict[str, frozenset[str]] = {}
        self._promise_resources_lock = threading.Lock()
        self._promise_resources_bound = 65536

    def handle(self, message: Message) -> Message:
        """Process one inbound message and build the reply.

        Promise requests are processed first; when a combined message's
        promise part is rejected, the action is *not* attempted (the
        client asked to act under guarantees it did not get) and a fault
        reports the skip.
        """
        responses: list[PromiseResponse] = []
        faults: list[str] = []
        rejected = False

        for request in message.promise_requests:
            try:
                response = self.manager.request_promise(
                    request,
                    dedup_key=(
                        request.request_id if self._journal_replies else None
                    ),
                )
            except (PredicateError, UnknownPromise, PromiseStateError) as exc:
                response = PromiseResponse.rejected(request.request_id, str(exc))
            except PromiseExpired as exc:
                faults.append(f"promise-expired: {exc.promise_id}")
                response = PromiseResponse.rejected(request.request_id, str(exc))
            responses.append(response)
            rejected = rejected or not response.accepted
            if response.accepted and response.promise_id is not None:
                self._remember_resources(
                    response.promise_id, request.resources
                )

        outcome: ActionOutcomePayload | None = None
        if message.action is not None:
            if rejected:
                faults.append("action-skipped: promise request rejected")
            else:
                outcome = self._run_action(message, faults)
        elif message.environment is not None:
            self._pure_release(message.environment, faults)

        crash_point("endpoint.before-reply", self.manager.fault_scope)
        return message.reply(
            message_id=self._message_ids.next_id(),
            promise_responses=tuple(responses),
            action_outcome=outcome,
            faults=tuple(faults),
        )

    # ------------------------------------------------- parallel dispatch

    def dispatch_keys(self, message: Message) -> frozenset[str] | None:
        """Resource keys ``message`` touches, or ``None`` when unknown.

        The networked server's parallel dispatcher uses this to run
        requests on disjoint resources concurrently while keeping
        same-resource requests FIFO.  Promise requests are keyed by
        their predicates' resources; environment-protected actions and
        releases by the resources of the named promises (learned when
        the grant went through this endpoint).  A promise this endpoint
        has never granted — or anything else it cannot account for —
        returns ``None``, degrading that one request to a global
        ordering barrier: never faster, never wrong.
        """
        keys: set[str] = set()
        for request in message.promise_requests:
            keys |= request.resources
        environment = message.environment
        if environment is not None:
            for promise_id in environment.promise_ids:
                resources = self._promise_resources.get(promise_id)
                if resources is None:
                    return None
                keys |= resources
        return frozenset(keys)

    def _remember_resources(
        self, promise_id: str, resources: frozenset[str]
    ) -> None:
        with self._promise_resources_lock:
            if len(self._promise_resources) >= self._promise_resources_bound:
                # Dropping entries is always safe: a forgotten promise
                # merely dispatches as a barrier next time.
                self._promise_resources.clear()
            self._promise_resources[promise_id] = resources

    # ------------------------------------------------------------ internals

    def _run_action(
        self, message: Message, faults: list[str]
    ) -> ActionOutcomePayload | None:
        assert message.action is not None
        try:
            action = self._resolve(message.action)
        except (LookupError, MalformedMessage) as exc:
            faults.append(f"unknown-action: {exc}")
            return None
        environment = message.environment or Environment.empty()
        try:
            result = self.manager.execute(
                action,
                environment,
                client_id=message.sender,
                dedup_key=(
                    f"{message.message_id}:action"
                    if self._journal_replies
                    else None
                ),
            )
        except PromiseExpired as exc:
            faults.append(f"promise-expired: {exc.promise_id}")
            return None
        except UnknownPromise as exc:
            faults.append(f"unknown-promise: {exc.promise_id}")
            return None
        except PromiseStateError as exc:
            faults.append(f"promise-state: {exc}")
            return None
        except SimulatedCrash:
            # Fault injection models the *process* dying; swallowing it
            # here would turn a crash into a polite fault reply.
            raise
        except Exception as exc:  # noqa: BLE001 - service boundary
            # An unexpected application error must not take the endpoint
            # down; the manager already rolled the transaction back, so
            # report it as a fault like any SOAP server would.
            faults.append(f"internal-error: {type(exc).__name__}: {exc}")
            return None
        if result.violations:
            faults.append("promise-violated: action rolled back")
        return ActionOutcomePayload(
            success=result.success,
            value=result.value,
            reason=result.reason,
            released=result.released,
            violations=tuple(
                violation.promise_id for violation in result.violations
            ),
        )

    def _pure_release(self, environment: Environment, faults: list[str]) -> None:
        """A promise-release message: environment, no action (§6)."""
        for promise_id in environment.releases():
            try:
                self.manager.release(
                    promise_id,
                    consume=False,
                    dedup_key=(
                        f"release:{promise_id}"
                        if self._journal_replies
                        else None
                    ),
                )
            except PromiseExpired as exc:
                faults.append(f"promise-expired: {exc.promise_id}")
            except UnknownPromise as exc:
                faults.append(f"unknown-promise: {exc.promise_id}")
            except PromiseStateError as exc:
                faults.append(f"promise-state: {exc}")
