"""SOAP-envelope XML codec for promise messages (paper, §2, §6).

"Our proposed Promise protocol fits very naturally into the SOAP protocol
and the Web Services model.  All of our promise protocol messages can be
transferred as elements in SOAP message headers and the associated actions
can be carried within the body of the same SOAP messages."

The codec renders each :class:`~repro.protocol.messages.Message` as an
``<Envelope>`` whose ``<Header>`` holds the ``<promise-request>``,
``<promise-response>`` and ``<environment>`` elements exactly as §6
defines them, and whose ``<Body>`` holds the action or its outcome.
Predicates travel as text in the expression language of
:mod:`repro.core.parser` — the "agreed standard syntax" of §3 — so a
general-purpose promise manager can parse them with no application
knowledge.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Mapping

from ..core.environment import Environment
from ..core.parser import parse_predicate, render_predicate
from ..core.promise import PromiseRequest, PromiseResponse, PromiseResult
from ..obs.trace import TraceContext
from .errors import MalformedMessage
from .messages import ActionOutcomePayload, ActionPayload, Message

SOAP_NS = "http://schemas.xmlsoap.org/soap/envelope/"
PROMISE_NS = "urn:promises:2007"


class SoapCodec:
    """Encode/decode messages to and from SOAP-envelope XML text."""

    def encode(self, message: Message) -> str:
        """Render ``message`` as an XML string."""
        envelope = ET.Element("Envelope", {"xmlns": SOAP_NS})
        header = ET.SubElement(envelope, "Header")
        ET.SubElement(
            header,
            "routing",
            {
                "message-id": message.message_id,
                "sender": message.sender,
                "recipient": message.recipient,
                "correlation": message.correlation,
            },
        )
        for request in message.promise_requests:
            self._encode_request(header, request)
        for response in message.promise_responses:
            self._encode_response(header, response)
        if message.environment is not None:
            self._encode_environment(header, message.environment)
        for fault in message.faults:
            ET.SubElement(header, "fault").text = fault
        if message.deadline is not None:
            ET.SubElement(
                header, "deadline", {"remaining": repr(float(message.deadline))}
            )
        if message.epoch is not None:
            ET.SubElement(header, "epoch", {"value": str(int(message.epoch))})
        if message.trace is not None:
            attributes = {
                "trace-id": message.trace.trace_id,
                "span-id": message.trace.span_id,
            }
            if message.trace.parent_span_id is not None:
                attributes["parent-span-id"] = message.trace.parent_span_id
            ET.SubElement(header, "trace", attributes)

        body = ET.SubElement(envelope, "Body")
        if message.action is not None:
            self._encode_action(body, message.action)
        if message.action_outcome is not None:
            self._encode_outcome(body, message.action_outcome)
        return ET.tostring(envelope, encoding="unicode")

    def decode(self, text: str) -> Message:
        """Parse XML text produced by :meth:`encode`."""
        try:
            envelope = ET.fromstring(text)
        except ET.ParseError as exc:
            raise MalformedMessage(f"invalid XML: {exc}") from exc
        header = envelope.find(self._q("Header"))
        body = envelope.find(self._q("Body"))
        if header is None or body is None:
            raise MalformedMessage("envelope missing Header or Body")
        routing = header.find(self._q("routing"))
        if routing is None:
            raise MalformedMessage("header missing routing element")

        requests = tuple(
            self._decode_request(element)
            for element in header.findall(self._q("promise-request"))
        )
        responses = tuple(
            self._decode_response(element)
            for element in header.findall(self._q("promise-response"))
        )
        environment_el = header.find(self._q("environment"))
        environment = (
            self._decode_environment(environment_el)
            if environment_el is not None
            else None
        )
        faults = tuple(
            element.text or "" for element in header.findall(self._q("fault"))
        )
        deadline_el = header.find(self._q("deadline"))
        if deadline_el is not None:
            try:
                deadline = float(deadline_el.get("remaining", ""))
            except ValueError as exc:
                raise MalformedMessage(f"bad deadline: {exc}") from exc
        else:
            deadline = None
        epoch_el = header.find(self._q("epoch"))
        if epoch_el is not None:
            try:
                epoch = int(epoch_el.get("value", ""))
            except ValueError as exc:
                raise MalformedMessage(f"bad epoch: {exc}") from exc
        else:
            epoch = None
        trace_el = header.find(self._q("trace"))
        if trace_el is not None:
            trace_id = trace_el.get("trace-id", "")
            span_id = trace_el.get("span-id", "")
            if not trace_id or not span_id:
                raise MalformedMessage("trace element needs trace-id and span-id")
            trace = TraceContext(
                trace_id=trace_id,
                span_id=span_id,
                parent_span_id=trace_el.get("parent-span-id"),
            )
        else:
            trace = None

        action_el = body.find(self._q("action"))
        outcome_el = body.find(self._q("action-outcome"))
        return Message(
            message_id=routing.get("message-id", ""),
            sender=routing.get("sender", ""),
            recipient=routing.get("recipient", ""),
            correlation=routing.get("correlation", ""),
            promise_requests=requests,
            promise_responses=responses,
            environment=environment,
            faults=faults,
            deadline=deadline,
            epoch=epoch,
            trace=trace,
            action=self._decode_action(action_el) if action_el is not None else None,
            action_outcome=(
                self._decode_outcome(outcome_el) if outcome_el is not None else None
            ),
        )

    # --------------------------------------------------------- header parts

    def _encode_request(self, header: ET.Element, request: PromiseRequest) -> None:
        element = ET.SubElement(
            header,
            "promise-request",
            {
                "id": request.request_id,
                "client": request.client_id,
                "duration": str(request.duration),
            },
        )
        for predicate in request.predicates:
            ET.SubElement(element, "predicate").text = render_predicate(predicate)
        for resource in sorted(request.resources):
            ET.SubElement(element, "resource", {"id": resource})
        for promise_id in request.releases:
            ET.SubElement(element, "release", {"promise": promise_id})

    def _decode_request(self, element: ET.Element) -> PromiseRequest:
        predicates = tuple(
            parse_predicate(child.text or "")
            for child in element.findall(self._q("predicate"))
        )
        releases = tuple(
            child.get("promise", "")
            for child in element.findall(self._q("release"))
        )
        try:
            return PromiseRequest(
                request_id=element.get("id", ""),
                client_id=element.get("client", "anonymous"),
                predicates=predicates,
                duration=int(element.get("duration", "0")),
                releases=releases,
            )
        except Exception as exc:
            raise MalformedMessage(f"bad promise-request: {exc}") from exc

    def _encode_response(self, header: ET.Element, response: PromiseResponse) -> None:
        attributes = {
            "result": response.result.value,
            "duration": str(response.duration),
            "correlation": response.correlation,
            "reason": response.reason,
        }
        if response.promise_id is not None:
            attributes["promise"] = response.promise_id
        element = ET.SubElement(header, "promise-response", attributes)
        if response.counter is not None:
            ET.SubElement(element, "counter").text = render_predicate(
                response.counter
            )

    def _decode_response(self, element: ET.Element) -> PromiseResponse:
        counter_el = element.find(self._q("counter"))
        counter = (
            parse_predicate(counter_el.text or "")
            if counter_el is not None
            else None
        )
        try:
            return PromiseResponse(
                promise_id=element.get("promise"),
                result=PromiseResult(element.get("result", "rejected")),
                duration=int(element.get("duration", "0")),
                correlation=element.get("correlation", ""),
                reason=element.get("reason", ""),
                counter=counter,
            )
        except ValueError as exc:
            raise MalformedMessage(f"bad promise-response: {exc}") from exc

    def _encode_environment(
        self, header: ET.Element, environment: Environment
    ) -> None:
        element = ET.SubElement(header, "environment")
        for promise_id in environment.promise_ids:
            ET.SubElement(
                element,
                "promise",
                {
                    "id": promise_id,
                    "release": (
                        "true"
                        if environment.release_after.get(promise_id)
                        else "false"
                    ),
                },
            )

    def _decode_environment(self, element: ET.Element) -> Environment:
        promise_ids = []
        release_after = {}
        for child in element.findall(self._q("promise")):
            promise_id = child.get("id", "")
            promise_ids.append(promise_id)
            release_after[promise_id] = child.get("release") == "true"
        return Environment(
            promise_ids=tuple(promise_ids), release_after=release_after
        )

    # ----------------------------------------------------------- body parts

    def _encode_action(self, body: ET.Element, action: ActionPayload) -> None:
        element = ET.SubElement(
            body,
            "action",
            {"service": action.service, "operation": action.operation},
        )
        params = ET.SubElement(element, "params")
        for key in sorted(action.params):
            item = ET.SubElement(params, "param", {"name": key})
            _encode_value(item, action.params[key])

    def _decode_action(self, element: ET.Element) -> ActionPayload:
        params: dict[str, object] = {}
        params_el = element.find(self._q("params"))
        if params_el is not None:
            for item in params_el.findall(self._q("param")):
                value_el = item.find(self._q("value"))
                if value_el is None:
                    raise MalformedMessage("param missing value")
                params[item.get("name", "")] = _decode_value(value_el, self._q)
        return ActionPayload(
            service=element.get("service", ""),
            operation=element.get("operation", ""),
            params=params,
        )

    def _encode_outcome(
        self, body: ET.Element, outcome: ActionOutcomePayload
    ) -> None:
        element = ET.SubElement(
            body,
            "action-outcome",
            {
                "success": "true" if outcome.success else "false",
                "reason": outcome.reason,
            },
        )
        _encode_value(element, outcome.value)
        for promise_id in outcome.released:
            ET.SubElement(element, "released", {"promise": promise_id})
        for promise_id in outcome.violations:
            ET.SubElement(element, "violation", {"promise": promise_id})

    def _decode_outcome(self, element: ET.Element) -> ActionOutcomePayload:
        value_el = element.find(self._q("value"))
        value = _decode_value(value_el, self._q) if value_el is not None else None
        return ActionOutcomePayload(
            success=element.get("success") == "true",
            reason=element.get("reason", ""),
            value=value,
            released=tuple(
                child.get("promise", "")
                for child in element.findall(self._q("released"))
            ),
            violations=tuple(
                child.get("promise", "")
                for child in element.findall(self._q("violation"))
            ),
        )

    @staticmethod
    def _q(tag: str) -> str:
        """Qualify a tag with the default (SOAP) namespace."""
        return f"{{{SOAP_NS}}}{tag}"


def _encode_value(parent: ET.Element, value: object) -> None:
    """Encode one Python value as a typed ``<value>`` element."""
    if value is None:
        ET.SubElement(parent, "value", {"type": "null"})
    elif isinstance(value, bool):
        element = ET.SubElement(parent, "value", {"type": "bool"})
        element.text = "true" if value else "false"
    elif isinstance(value, int):
        element = ET.SubElement(parent, "value", {"type": "int"})
        element.text = str(value)
    elif isinstance(value, float):
        element = ET.SubElement(parent, "value", {"type": "float"})
        element.text = repr(value)
    elif isinstance(value, str):
        element = ET.SubElement(parent, "value", {"type": "str"})
        element.text = value
    elif isinstance(value, (list, tuple)):
        element = ET.SubElement(parent, "value", {"type": "list"})
        for entry in value:
            _encode_value(element, entry)
    elif isinstance(value, Mapping):
        element = ET.SubElement(parent, "value", {"type": "dict"})
        for key in sorted(value):
            item = ET.SubElement(element, "item", {"key": str(key)})
            _encode_value(item, value[key])
    else:
        raise MalformedMessage(
            f"cannot encode value of type {type(value).__name__}"
        )


def _decode_value(element: ET.Element, q) -> object:
    """Inverse of :func:`_encode_value`."""
    value_type = element.get("type", "null")
    text = element.text or ""
    if value_type == "null":
        return None
    if value_type == "bool":
        return text == "true"
    if value_type == "int":
        return int(text)
    if value_type == "float":
        return float(text)
    if value_type == "str":
        return text
    if value_type == "list":
        return [
            _decode_value(child, q) for child in element.findall(q("value"))
        ]
    if value_type == "dict":
        decoded: dict[str, object] = {}
        for item in element.findall(q("item")):
            child = item.find(q("value"))
            if child is None:
                raise MalformedMessage("dict item missing value")
            decoded[item.get("key", "")] = _decode_value(child, q)
        return decoded
    raise MalformedMessage(f"unknown value type {value_type!r}")
