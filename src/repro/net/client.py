"""Connection-pooling client for the networked promise protocol.

A blocking counterpart to the asyncio server: callers hand it encoded
envelope bytes and get encoded reply bytes back.  Three concerns live
here, all below the codec:

* **Pooling** — idle sockets are kept (bounded) and reused, so a
  request mix does not pay a TCP handshake per message.
* **Deadlines** — each request carries an overall deadline; every
  socket operation gets the *remaining* time, so a stuck server
  surfaces as :class:`~repro.protocol.errors.RequestTimeout` rather
  than a hang.
* **Retries** — a :class:`~repro.protocol.retry.RetryPolicy` re-sends
  the same bytes (same message id) on transport failures; the server's
  §6 reply cache makes that redelivery at-most-once.

Connection errors and truncated frames are mapped onto
:class:`~repro.protocol.errors.TransportFailure`, keeping the exception
vocabulary identical to the in-process transport.
"""

from __future__ import annotations

import select
import socket
import time
from collections import deque

from ..obs.metrics import MetricsRegistry, StatsView
from ..protocol.errors import RequestTimeout, TransportFailure
from ..protocol.retry import RetryPolicy
from ..resilience.breaker import CircuitBreaker
from ..resilience.deadline import remaining_budget
from .framing import (
    DEFAULT_MAX_FRAME_SIZE,
    FrameTooLarge,
    TruncatedFrame,
    encode_frame,
    read_frame,
)


class ClientStats(StatsView):
    """Counters for pooling and failure behaviour (``client.*`` metrics).

    Historically a dataclass of plain ints bumped with ``+=`` — a racy
    read-modify-write once several threads shared one client (the
    gateway's scatter pool does exactly that).  Reads stay
    attribute-shaped; every increment now goes through the registry's
    lock.
    """

    _prefix = "client"
    _fields = (
        "requests",
        "connections_opened",
        "connections_reused",
        "stale_discarded",
        "retries",
        "timeouts",
        "failures",
        "bytes_sent",
        "bytes_received",
    )


class NetworkClient:
    """Blocking framed request/reply over a pooled TCP connection set."""

    def __init__(
        self,
        address: tuple[str, int],
        timeout: float = 5.0,
        pool_size: int = 4,
        max_frame_size: int = DEFAULT_MAX_FRAME_SIZE,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.address = address
        self.timeout = timeout
        self.pool_size = pool_size
        self.max_frame_size = max_frame_size
        self.retry = retry or RetryPolicy.none()
        self.breaker = breaker
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.stats = ClientStats(self.metrics)
        self._idle: deque[socket.socket] = deque()
        self._closed = False

    # ------------------------------------------------------------ requests

    def request(
        self,
        payload: bytes,
        timeout: float | None = None,
        deadline: object | None = None,
    ) -> bytes:
        """Round-trip ``payload`` and return the reply bytes.

        Retries per the policy on transport failures and timeouts;
        ``payload`` (and thus the message id inside it) is identical on
        every attempt, which is what makes retrying safe against a
        deduplicating server.

        ``timeout`` bounds one attempt; ``deadline`` (``None``, a
        :class:`~repro.resilience.Deadline`, or an absolute monotonic
        timestamp) bounds the whole retry loop — per-attempt socket
        budgets are clamped to what remains of it, and backoff sleeps
        never overshoot it.  When a circuit breaker is configured, every
        attempt consults it first and reports its outcome, so a dead
        server flips the breaker open and later requests fail fast with
        :class:`~repro.resilience.CircuitOpen` (not retried).
        """
        if self._closed:
            raise TransportFailure("client is closed")
        self.metrics.inc("client.requests")
        budget = self.timeout if timeout is None else timeout
        before = self.retry.retries
        try:
            reply = self.retry.run(
                lambda: self._guarded_attempt(payload, budget, deadline),
                deadline=deadline,
            )
        except TransportFailure:
            self.metrics.inc("client.failures")
            raise
        finally:
            self.metrics.inc("client.retries", self.retry.retries - before)
        return reply

    def send_and_abandon(self, payload: bytes) -> None:
        """Deliver ``payload`` and drop the connection without reading.

        The socket-layer reimplementation of the in-process transport's
        *reply drop*: the server receives and executes the request, but
        the reply has nowhere to go.  Used by the deterministic fault
        plans; a subsequent :meth:`request` with the same payload then
        exercises the redelivery path.
        """
        sock = self._connect(self.timeout)
        try:
            frame = encode_frame(payload, self.max_frame_size)
            sock.sendall(frame)
            self.metrics.inc("client.bytes_sent", len(payload))
        finally:
            self._discard(sock)

    def close(self) -> None:
        """Close every pooled connection."""
        self._closed = True
        while self._idle:
            self._discard(self._idle.popleft())

    def __enter__(self) -> "NetworkClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------ internals

    def _guarded_attempt(
        self, payload: bytes, budget: float, deadline: object | None
    ) -> bytes:
        remaining = remaining_budget(deadline)
        if remaining is not None:
            if remaining <= 0:
                self.metrics.inc("client.timeouts")
                raise RequestTimeout("request deadline elapsed before attempt")
            budget = min(budget, remaining)
        if self.breaker is None:
            return self._attempt(payload, budget)
        self.breaker.guard()
        try:
            reply = self._attempt(payload, budget)
        except TransportFailure:
            self.breaker.record_failure()
            raise
        self.breaker.record_success()
        return reply

    def _attempt(self, payload: bytes, budget: float) -> bytes:
        deadline = time.monotonic() + budget
        sock = self._checkout(deadline)
        try:
            frame = encode_frame(payload, self.max_frame_size)
            sock.settimeout(self._remaining(deadline))
            sock.sendall(frame)
            self.metrics.inc("client.bytes_sent", len(payload))

            def recv(count: int) -> bytes:
                sock.settimeout(self._remaining(deadline))
                return sock.recv(count)

            reply = read_frame(recv, self.max_frame_size)
        except socket.timeout as exc:
            self.metrics.inc("client.timeouts")
            self._discard(sock)
            raise RequestTimeout(
                f"no reply from {self.address[0]}:{self.address[1]} "
                f"within {budget:.3f}s"
            ) from exc
        except RequestTimeout:
            self.metrics.inc("client.timeouts")
            self._discard(sock)
            raise
        except FrameTooLarge:
            self._discard(sock)
            raise
        except (TruncatedFrame, OSError) as exc:
            self._discard(sock)
            raise TransportFailure(f"connection failed: {exc}") from exc
        if reply is None:
            self._discard(sock)
            raise TransportFailure("server closed the connection mid-request")
        self.metrics.inc("client.bytes_received", len(reply))
        self._checkin(sock)
        return reply

    def _checkout(self, deadline: float) -> socket.socket:
        while self._idle:
            sock = self._idle.popleft()
            if self._usable(sock):
                self.metrics.inc("client.connections_reused")
                return sock
            # The peer died (or wrote stray bytes) while this connection
            # idled in the pool; sending a fresh request down it would
            # either fail or desynchronise the framing.  Discard and try
            # the next one rather than burning a retry attempt on it.
            self.metrics.inc("client.stale_discarded")
            self._discard(sock)
        return self._connect(self._remaining(deadline))

    def _checkin(self, sock: socket.socket) -> None:
        if self._closed or len(self._idle) >= self.pool_size:
            self._discard(sock)
        else:
            self._idle.append(sock)

    def _connect(self, timeout: float) -> socket.socket:
        try:
            sock = socket.create_connection(self.address, timeout=timeout)
        except socket.timeout as exc:
            self.metrics.inc("client.timeouts")
            raise RequestTimeout(
                f"connect to {self.address[0]}:{self.address[1]} timed out"
            ) from exc
        except OSError as exc:
            raise TransportFailure(f"cannot connect: {exc}") from exc
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.metrics.inc("client.connections_opened")
        return sock

    @staticmethod
    def _usable(sock: socket.socket) -> bool:
        """Is this idle pooled socket still good for a request/reply?

        An idle connection should have nothing to say: readability before
        we have sent anything means the peer closed it (EOF / RST) or
        left unconsumed bytes on it — either way the next request/reply
        cycle on it is doomed, so the pool must drop it.
        """
        try:
            readable, __, __ = select.select([sock], [], [], 0)
        except (OSError, ValueError):
            return False
        return not readable

    @staticmethod
    def _remaining(deadline: float) -> float:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise RequestTimeout("request deadline elapsed")
        return remaining

    @staticmethod
    def _discard(sock: socket.socket) -> None:
        try:
            sock.close()
        except OSError:
            pass
