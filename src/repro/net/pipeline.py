"""Pipelined client: many outstanding requests on one connection.

The request/reply client (:class:`~repro.net.client.NetworkClient`)
write-then-reads: a second request waits for the first reply, so a
round trip of latency is paid per message even when the server could
overlap them.  :class:`PipelinedClient` removes that stall: requests
are framed and written as they arrive, a reader thread drains reply
frames as the server produces them, and each reply is matched back to
its request by message id — replies may arrive in *any* order, which
is exactly what the server's parallel dispatch produces.

Correlation rides the protocol itself: every reply's ``<routing>``
element carries ``correlation="<request message-id>"`` (§6's request
identifier), so the matcher needs only a cheap scan of the reply bytes,
not a full decode.  Requests whose replies never arrive (connection
drop, server death) fail with
:class:`~repro.protocol.errors.TransportFailure`; the payload can then
be re-sent through any transport — same message id, so the server's
reply cache keeps the retry at-most-once.

This client is deliberately below the retry layer: it moves bytes and
correlates frames.  Callers that want retries wrap it the same way they
wrap :class:`NetworkClient`.
"""

from __future__ import annotations

import re
import socket
import threading
from concurrent.futures import Future

from ..obs.metrics import MetricsRegistry
from ..protocol.errors import RequestTimeout, TransportFailure
from .framing import DEFAULT_MAX_FRAME_SIZE, encode_frame, read_frame

#: The routing element is the first thing in every envelope's header;
#: these scan it without paying for a full XML decode.
_ROUTING = re.compile(rb"<routing\s[^>]*>")
_MESSAGE_ID = re.compile(rb'message-id="([^"]*)"')
_CORRELATION = re.compile(rb'correlation="([^"]*)"')


def extract_message_id(payload: bytes) -> str | None:
    """The ``message-id`` of an encoded envelope, or ``None``."""
    return _extract(payload, _MESSAGE_ID)


def extract_correlation(payload: bytes) -> str | None:
    """The ``correlation`` of an encoded reply envelope, or ``None``."""
    return _extract(payload, _CORRELATION)


def _extract(payload: bytes, attribute: re.Pattern[bytes]) -> str | None:
    routing = _ROUTING.search(payload)
    if routing is None:
        return None
    found = attribute.search(routing.group(0))
    if found is None or not found.group(1):
        return None
    return found.group(1).decode("utf-8", errors="replace")


class PipelinedClient:
    """Many in-flight requests over one TCP connection.

    ``submit`` returns a :class:`concurrent.futures.Future` resolving
    with the reply bytes; ``request`` is the blocking convenience and
    ``request_many`` ships a whole batch before waiting on any reply.
    ``max_outstanding`` bounds the pipeline depth — a full window makes
    ``submit`` block, which is this client's flow control.
    """

    def __init__(
        self,
        address: tuple[str, int],
        timeout: float = 5.0,
        max_frame_size: int = DEFAULT_MAX_FRAME_SIZE,
        max_outstanding: int = 128,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_outstanding < 1:
            raise ValueError("max_outstanding must be at least 1")
        self.address = address
        self.timeout = timeout
        self.max_frame_size = max_frame_size
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._pending: dict[str, Future[bytes]] = {}
        self._window = threading.BoundedSemaphore(max_outstanding)
        self._closed = False
        self._sock: socket.socket | None = None
        self._reader: threading.Thread | None = None

    # ------------------------------------------------------------- requests

    def submit(self, payload: bytes) -> "Future[bytes]":
        """Ship ``payload`` now; the Future resolves with its reply.

        Blocks only when ``max_outstanding`` requests are already in
        flight.  The Future fails with :class:`TransportFailure` if the
        connection dies before the reply arrives, and with
        :class:`RequestTimeout` if it is still unresolved when
        :meth:`close` reaps the pipeline.
        """
        message_id = extract_message_id(payload)
        if message_id is None:
            raise TransportFailure("payload carries no message-id to correlate")
        if not self._window.acquire(timeout=self.timeout):
            self.metrics.inc("pipeline.window_stalls")
            raise RequestTimeout(
                f"pipeline window full ({len(self._pending)} outstanding)"
            )
        future: Future[bytes] = Future()
        future.add_done_callback(lambda _: self._window.release())
        frame = encode_frame(payload, self.max_frame_size)
        with self._lock:
            if self._closed:
                raise TransportFailure("pipelined client is closed")
            if message_id in self._pending:
                raise TransportFailure(
                    f"message id {message_id!r} already in flight"
                )
            sock = self._ensure_connected()
            self._pending[message_id] = future
            try:
                sock.sendall(frame)
            except OSError as exc:
                self._pending.pop(message_id, None)
                self._teardown_locked(TransportFailure(f"send failed: {exc}"))
                raise TransportFailure(f"send failed: {exc}") from exc
        self.metrics.inc("pipeline.submitted")
        self.metrics.inc("client.bytes_sent", len(payload))
        return future

    def request(self, payload: bytes, timeout: float | None = None) -> bytes:
        """Blocking round trip through the pipeline."""
        future = self.submit(payload)
        try:
            return future.result(
                timeout=self.timeout if timeout is None else timeout
            )
        except TimeoutError:
            self.metrics.inc("client.timeouts")
            raise RequestTimeout(
                f"no reply from {self.address[0]}:{self.address[1]}"
            ) from None

    def request_many(
        self, payloads: list[bytes], timeout: float | None = None
    ) -> list[bytes]:
        """Ship every payload before waiting on any reply.

        Replies come back in *request* order regardless of the order the
        server finished them in — the whole point of correlation.
        """
        futures = [self.submit(payload) for payload in payloads]
        budget = self.timeout if timeout is None else timeout
        replies: list[bytes] = []
        for future in futures:
            try:
                replies.append(future.result(timeout=budget))
            except TimeoutError:
                self.metrics.inc("client.timeouts")
                raise RequestTimeout(
                    f"no reply from {self.address[0]}:{self.address[1]}"
                ) from None
        return replies

    @property
    def outstanding(self) -> int:
        """Requests currently awaiting replies."""
        with self._lock:
            return len(self._pending)

    def close(self) -> None:
        """Tear the connection down; unresolved futures fail."""
        with self._lock:
            self._closed = True
            self._teardown_locked(
                TransportFailure("pipelined client closed with request in flight")
            )
        reader = self._reader
        if reader is not None and reader is not threading.current_thread():
            reader.join(timeout=5)

    def __enter__(self) -> "PipelinedClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------ internals

    def _ensure_connected(self) -> socket.socket:
        if self._sock is not None:
            return self._sock
        try:
            sock = socket.create_connection(self.address, timeout=self.timeout)
        except socket.timeout as exc:
            raise RequestTimeout(
                f"connect to {self.address[0]}:{self.address[1]} timed out"
            ) from exc
        except OSError as exc:
            raise TransportFailure(f"cannot connect: {exc}") from exc
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # The reader blocks in recv for as long as replies might take;
        # it is the close() path, not a socket timeout, that ends it.
        sock.settimeout(None)
        self._sock = sock
        self.metrics.inc("client.connections_opened")
        self._reader = threading.Thread(
            target=self._read_replies, name="pipeline-reader", daemon=True
        )
        self._reader.start()
        return sock

    def _read_replies(self) -> None:
        sock = self._sock
        assert sock is not None

        def recv(count: int) -> bytes:
            return sock.recv(count)

        while True:
            try:
                reply = read_frame(recv, self.max_frame_size)
            except Exception as exc:  # noqa: BLE001 - reader boundary
                self._fail_pending(TransportFailure(f"connection failed: {exc}"))
                return
            if reply is None:  # orderly EOF from the server
                self._fail_pending(
                    TransportFailure("server closed the pipelined connection")
                )
                return
            self.metrics.inc("client.bytes_received", len(reply))
            correlation = extract_correlation(reply)
            future = None
            if correlation is not None:
                with self._lock:
                    future = self._pending.pop(correlation, None)
            if future is None:
                # A reply we never asked for (or one whose waiter gave
                # up): surfaced as a counter, never an exception — the
                # reader must outlive any single confused frame.
                self.metrics.inc("pipeline.orphan_replies")
                continue
            self.metrics.inc("pipeline.completed")
            if not future.set_running_or_notify_cancel():
                continue
            future.set_result(reply)

    def _fail_pending(self, error: TransportFailure) -> None:
        with self._lock:
            self._sock = None
            pending = list(self._pending.values())
            self._pending.clear()
        for future in pending:
            if future.set_running_or_notify_cancel():
                future.set_exception(error)

    def _teardown_locked(self, error: TransportFailure) -> None:
        """Close the socket and fail pending futures (lock already held)."""
        sock = self._sock
        self._sock = None
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        pending = list(self._pending.values())
        self._pending.clear()
        for future in pending:
            if future.set_running_or_notify_cancel():
                future.set_exception(error)
