"""Networked promise managers: the protocol of §6 over real sockets.

The paper's prototype (Figure 2, §8) ran the promise manager behind a
SOAP/Web-Services stack; this package supplies the equivalent substrate
so client, promise manager and resource manager can live in separate
processes:

* :mod:`repro.net.framing` — length-prefixed wire frames for SOAP
  envelopes, with max-frame-size and truncation errors;
* :mod:`repro.net.server` — an asyncio TCP server hosting any
  registered ``Handler``, with per-connection read loops, graceful
  shutdown and §6 duplicate suppression (redelivered requests return
  the cached reply instead of re-executing);
* :mod:`repro.net.client` — a connection-pooling blocking client with
  per-request deadlines and retry via
  :class:`~repro.protocol.retry.RetryPolicy`;
* :mod:`repro.net.pipeline` — :class:`PipelinedClient`, many
  outstanding requests on one connection with id-correlated replies;
* :mod:`repro.net.executor` — :class:`KeyedExecutor`, the per-key FIFO
  pool behind the server's parallel dispatch;
* :mod:`repro.net.transport` — :class:`NetworkTransport`, a drop-in
  replacement for the in-process transport, fault plans included.
"""

from .client import ClientStats, NetworkClient
from .executor import DEFAULT_WORKERS, KeyedExecutor
from .pipeline import PipelinedClient
from .framing import (
    DEFAULT_MAX_FRAME_SIZE,
    FrameError,
    FrameTooLarge,
    TruncatedFrame,
    encode_frame,
    read_frame,
    read_frame_async,
)
from .server import (
    TRANSPORT_FAULT_PREFIX,
    PromiseServer,
    ServerStats,
    ThreadedServer,
)
from .transport import NetworkTransport

__all__ = [
    "ClientStats",
    "DEFAULT_MAX_FRAME_SIZE",
    "DEFAULT_WORKERS",
    "KeyedExecutor",
    "PipelinedClient",
    "FrameError",
    "FrameTooLarge",
    "NetworkClient",
    "NetworkTransport",
    "PromiseServer",
    "ServerStats",
    "TRANSPORT_FAULT_PREFIX",
    "ThreadedServer",
    "TruncatedFrame",
    "encode_frame",
    "read_frame",
    "read_frame_async",
]
