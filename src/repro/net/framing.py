"""Length-prefixed wire framing for SOAP envelopes.

TCP is a byte stream; the promise protocol is message-oriented.  Each
:class:`~repro.protocol.soap.SoapCodec` envelope therefore travels as
one *frame*: a 4-byte big-endian unsigned length followed by exactly
that many payload bytes (the UTF-8 XML text).  Frames larger than the
negotiated maximum are rejected before any allocation — a malformed or
hostile peer cannot make the server buffer an arbitrary amount — and a
connection that closes mid-frame surfaces as :class:`TruncatedFrame`
rather than a silently short payload.

Both halves of the stack share this module: the asyncio server reads
frames with :func:`read_frame_async`, the blocking client with
:func:`read_frame` over any ``recv``-style callable.
"""

from __future__ import annotations

import asyncio
import struct
from typing import Callable

from ..protocol.errors import ProtocolError

HEADER = struct.Struct(">I")

#: Default ceiling on one frame's payload (1 MiB of XML is far beyond
#: any legitimate promise envelope).
DEFAULT_MAX_FRAME_SIZE = 1 << 20


class FrameError(ProtocolError):
    """The byte stream violates the framing protocol."""


class FrameTooLarge(FrameError):
    """A frame's declared (or actual) size exceeds the maximum."""

    def __init__(self, size: int, max_size: int) -> None:
        super().__init__(f"frame of {size} bytes exceeds limit {max_size}")
        self.size = size
        self.max_size = max_size


class TruncatedFrame(FrameError):
    """The connection closed in the middle of a frame."""


def encode_frame(
    payload: bytes, max_size: int = DEFAULT_MAX_FRAME_SIZE
) -> bytes:
    """Prefix ``payload`` with its length; rejects oversized payloads."""
    if len(payload) > max_size:
        raise FrameTooLarge(len(payload), max_size)
    return HEADER.pack(len(payload)) + payload


def read_frame(
    recv: Callable[[int], bytes], max_size: int = DEFAULT_MAX_FRAME_SIZE
) -> bytes | None:
    """Read one frame from a blocking ``recv(n) -> bytes`` callable.

    Returns ``None`` on a clean end-of-stream (EOF before any header
    byte); raises :class:`TruncatedFrame` when the stream ends inside a
    header or payload, and :class:`FrameTooLarge` when the declared
    length exceeds ``max_size``.
    """
    header = _recv_exact(recv, HEADER.size, allow_eof=True)
    if header is None:
        return None
    (length,) = HEADER.unpack(header)
    if length > max_size:
        raise FrameTooLarge(length, max_size)
    payload = _recv_exact(recv, length, allow_eof=False)
    assert payload is not None
    return payload


async def read_frame_async(
    reader: asyncio.StreamReader, max_size: int = DEFAULT_MAX_FRAME_SIZE
) -> bytes | None:
    """Read one frame from an asyncio stream; ``None`` on clean EOF."""
    try:
        header = await reader.readexactly(HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise TruncatedFrame(
            f"connection closed inside frame header "
            f"({len(exc.partial)}/{HEADER.size} bytes)"
        ) from exc
    (length,) = HEADER.unpack(header)
    if length > max_size:
        raise FrameTooLarge(length, max_size)
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise TruncatedFrame(
            f"connection closed inside frame payload "
            f"({len(exc.partial)}/{length} bytes)"
        ) from exc


def _recv_exact(
    recv: Callable[[int], bytes], count: int, allow_eof: bool
) -> bytes | None:
    """Accumulate exactly ``count`` bytes from a short-read-prone recv."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = recv(remaining)
        if not chunk:
            if allow_eof and not chunks:
                return None
            raise TruncatedFrame(
                f"connection closed after {count - remaining}/{count} bytes"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
