"""Keyed executor: per-key FIFO, cross-key concurrency.

The parallel dispatch heart of the pipelined server.  Work is submitted
with the set of *resource keys* it touches; the executor guarantees:

* **Same-key FIFO** — two jobs sharing any key run in submission order,
  never concurrently.  A client that pipelines ``grant(stock)`` then
  ``release(stock)`` observes them applied in that order.
* **Disjoint-key concurrency** — jobs whose key sets do not intersect
  may run on different worker threads at the same time, which is what
  lets their commit records share one group-commit fsync.
* **Global barrier for unknown footprints** — a job submitted with
  ``keys=None`` (the dispatcher could not determine what it touches:
  an application action, a release of an unknown promise) is ordered
  after *every* job submitted before it and before every job submitted
  after it.  Unknown never races anything; correctness degrades to the
  serial order, not to luck.

The implementation chains :class:`concurrent.futures.Future` tails per
key.  Each submission captures the tails of its keys (or of all live
keys plus the barrier tail, for ``None``), registers a countdown over
them, and only enters the thread pool when every predecessor resolved.
Predecessor results and exceptions are irrelevant to ordering — a failed
job releases its successors exactly like a finished one.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Iterable, TypeVar

from ..obs.metrics import MetricsRegistry

T = TypeVar("T")

#: Default worker count for a parallel server.  Python's GIL means the
#: win is overlap of *waits* (fsync batches, socket I/O), not raw CPU;
#: a small pool captures nearly all of it.
DEFAULT_WORKERS = 8


class KeyedExecutor:
    """Run callables on a pool with per-key FIFO ordering guarantees."""

    def __init__(
        self,
        workers: int = DEFAULT_WORKERS,
        metrics: MetricsRegistry | None = None,
        name: str = "keyed-executor",
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        self.workers = workers
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix=name
        )
        self._lock = threading.Lock()
        #: key -> the Future of the last job submitted touching that key.
        self._tails: dict[str, Future] = {}
        #: The last global-barrier job (``keys=None``); every later
        #: submission orders itself after this.
        self._barrier: Future | None = None
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._closed = False

    # ---------------------------------------------------------------- API

    def submit(
        self, keys: Iterable[str] | None, fn: Callable[[], T]
    ) -> "Future[T]":
        """Schedule ``fn`` honouring the ordering contract for ``keys``.

        Returns a Future resolving with ``fn``'s result (or exception).
        ``keys=None`` declares an unknown footprint: a global barrier.
        """
        done: Future[T] = Future()
        with self._lock:
            if self._closed:
                raise RuntimeError("executor is closed")
            if keys is None:
                predecessors = [
                    tail for tail in self._tails.values() if not tail.done()
                ]
                if self._barrier is not None and not self._barrier.done():
                    predecessors.append(self._barrier)
                # Everything later — keyed or not — must follow us.
                self._barrier = done
                self._tails = {}
                self._metrics.inc("executor.barriers")
            else:
                key_set = set(keys)
                predecessors = [
                    tail
                    for key in key_set
                    if (tail := self._tails.get(key)) is not None
                    and not tail.done()
                ]
                if self._barrier is not None and not self._barrier.done():
                    predecessors.append(self._barrier)
                for key in key_set:
                    self._tails[key] = done
            self._metrics.inc("executor.submitted")
        self._metrics.gauge("executor.queued").add(1)

        def run() -> None:
            if done.cancelled():  # pragma: no cover - shutdown race
                return
            self._metrics.gauge("executor.queued").add(-1)
            self._metrics.gauge("executor.running").add(1)
            try:
                result = fn()
            except BaseException as exc:  # noqa: BLE001 - relayed to waiter
                done.set_exception(exc)
            else:
                done.set_result(result)
            finally:
                self._metrics.gauge("executor.running").add(-1)

        if not predecessors:
            self._pool.submit(run)
        else:
            remaining = len(predecessors)
            count_lock = threading.Lock()

            def on_predecessor(_: Future) -> None:
                nonlocal remaining
                with count_lock:
                    remaining -= 1
                    ready = remaining == 0
                if ready:
                    self._pool.submit(run)

            for predecessor in predecessors:
                predecessor.add_done_callback(on_predecessor)
        return done

    def drain(self, timeout: float = 30.0) -> None:
        """Block until every job submitted so far has finished."""
        with self._lock:
            waiting = list(self._tails.values())
            if self._barrier is not None:
                waiting.append(self._barrier)
        for future in waiting:
            try:
                future.result(timeout=timeout)
            except Exception:  # noqa: BLE001 - drain cares about completion
                pass

    def close(self, wait: bool = True) -> None:
        """Stop accepting work and (optionally) wait for the backlog."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if wait:
            self.drain()
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "KeyedExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
