"""Networked message transport with the in-process transport's surface.

:class:`NetworkTransport` exposes exactly the contract of
:class:`~repro.protocol.transport.InProcessTransport` — ``send(Message)
-> Message``, ``register()``, ``stats``, ``wire_log`` and the
deterministic fault plans — so every existing service wiring, baseline
and benchmark can run over real sockets unchanged: hand a
``Deployment`` a ``NetworkTransport`` bound to a local
:class:`~repro.net.server.PromiseServer` and the Figure-2 pipeline
spans an actual TCP hop.

The fault plans are reimplemented at the socket layer: a *request drop*
never writes to the socket, a *reply drop* writes the request and then
closes the connection before reading — the server executes the action
but the reply is lost, the classic partial failure §6's redelivery
semantics exist to survive.
"""

from __future__ import annotations

import time
from collections import deque

from ..protocol.errors import (
    Overloaded,
    RequestTimeout,
    TransportFailure,
    UnknownEndpoint,
)
from ..protocol.messages import Message
from ..protocol.retry import RetryPolicy
from ..protocol.soap import SoapCodec
from ..protocol.transport import (
    DEFAULT_LOG_LIMIT,
    Handler,
    TransportStats,
    _FaultPlan,
)
from ..resilience.breaker import CircuitBreaker
from .client import NetworkClient
from .framing import DEFAULT_MAX_FRAME_SIZE
from .pipeline import PipelinedClient
from .server import TRANSPORT_FAULT_PREFIX, PromiseServer


class NetworkTransport:
    """Request/reply routing to promise endpoints over TCP.

    Construct with either a started local ``server`` (then
    :meth:`register` forwards to it, letting ``Deployment`` wire itself
    the same way it does in-process) or a bare ``address`` of a remote
    server (then :meth:`register` raises — handlers live in the server
    process).
    """

    def __init__(
        self,
        address: tuple[str, int] | None = None,
        server: PromiseServer | None = None,
        codec: SoapCodec | None = None,
        timeout: float = 5.0,
        retry: RetryPolicy | None = None,
        pool_size: int = 4,
        max_frame_size: int = DEFAULT_MAX_FRAME_SIZE,
        log_limit: int | None = DEFAULT_LOG_LIMIT,
        breaker: CircuitBreaker | None = None,
        pipelined: bool = False,
        max_outstanding: int = 128,
    ) -> None:
        if address is None:
            if server is None:
                raise ValueError("need an address or a local server")
            address = server.address
        self._server = server
        self._codec = codec or SoapCodec()
        self._retry = retry or RetryPolicy.network()
        self._client = NetworkClient(
            address,
            timeout=timeout,
            max_frame_size=max_frame_size,
            pool_size=pool_size,
            retry=self._retry,
            breaker=breaker,
        )
        # ``pipelined=True`` routes ordinary sends through one shared
        # connection with many requests in flight (callers on different
        # threads no longer serialise on per-connection checkout); the
        # pooled client stays for fault plans and as the retry fallback.
        self._pipeline = (
            PipelinedClient(
                address,
                timeout=timeout,
                max_frame_size=max_frame_size,
                max_outstanding=max_outstanding,
            )
            if pipelined
            else None
        )
        self._faults = _FaultPlan()
        self._log: deque[str] = deque(maxlen=log_limit)
        self.stats = TransportStats()

    # ------------------------------------------------------------- surface

    @property
    def address(self) -> tuple[str, int]:
        """The server address this transport talks to."""
        return self._client.address

    @property
    def client(self) -> NetworkClient:
        """The underlying pooled byte-level client (for its stats)."""
        return self._client

    @property
    def pipelined(self) -> bool:
        """True when ordinary sends ride the shared pipelined connection."""
        return self._pipeline is not None

    def register(self, endpoint: str, handler: Handler) -> None:
        """Register on the co-hosted local server (if there is one)."""
        if self._server is None:
            raise TransportFailure(
                "cannot register a handler through a remote-only transport; "
                "register on the PromiseServer in the serving process"
            )
        self._server.register(endpoint, handler)

    def endpoints(self) -> list[str]:
        """Endpoint names of the co-hosted local server."""
        if self._server is None:
            return []
        return self._server.endpoints()

    def plan_request_drop(self, delivery_number: int) -> None:
        """Drop the Nth (1-based) request before it touches the socket."""
        self._faults.drop_requests.add(delivery_number)

    def plan_reply_drop(self, delivery_number: int) -> None:
        """Send the Nth request, then sever the connection unread."""
        self._faults.drop_replies.add(delivery_number)

    def send(self, message: Message) -> Message:
        """Deliver ``message`` over TCP and return the decoded reply.

        Exception vocabulary matches the in-process transport:
        :class:`UnknownEndpoint` for unroutable recipients (mapped back
        from the server's ``transport:`` fault) and
        :class:`TransportFailure` for drops, resets and timeouts.
        """
        self.stats.sent += 1
        delivery = self.stats.sent

        encoded = self._codec.encode(message)
        payload = encoded.encode("utf-8")
        self.stats.bytes_on_wire += len(payload)
        self._log.append(encoded)

        if delivery in self._faults.drop_requests:
            self.stats.dropped_requests += 1
            raise TransportFailure(
                f"request {message.message_id} lost in transit"
            )

        if delivery in self._faults.drop_replies:
            self._client.send_and_abandon(payload)
            self.stats.dropped_replies += 1
            raise TransportFailure(
                f"reply to {message.message_id} lost in transit"
            )

        # The message's deadline stamp is the budget remaining *now*;
        # hand the byte client the matching absolute deadline so its
        # own retry loop (attempt timeouts and backoff sleeps alike)
        # stays inside it.
        deadline = (
            time.monotonic() + message.deadline
            if message.deadline is not None
            else None
        )
        if self._pipeline is not None:
            reply_bytes = self._pipelined_request(payload, deadline)
        else:
            reply_bytes = self._client.request(payload, deadline=deadline)
        reply_text = reply_bytes.decode("utf-8")
        self.stats.bytes_on_wire += len(reply_bytes)
        self._log.append(reply_text)
        reply = self._codec.decode(reply_text)
        self._raise_transport_faults(message, reply)
        self.stats.delivered += 1
        return reply

    def close(self) -> None:
        """Release pooled connections."""
        if self._pipeline is not None:
            self._pipeline.close()
        self._client.close()

    def __enter__(self) -> "NetworkTransport":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def wire_log(self) -> list[str]:
        """XML of recent envelopes sent/received (newest last)."""
        return list(self._log)

    # ----------------------------------------------------------- internals

    def _pipelined_request(
        self, payload: bytes, deadline: float | None
    ) -> bytes:
        """One request over the shared pipelined connection, with retry.

        The pipelined client is below the retry layer, so the transport
        supplies the redelivery loop itself — same policy, same §6
        safety (the server's reply cache answers a redelivered id).  A
        dead connection fails every in-flight future at once; each
        waiter redelivers independently and the first submit reconnects.
        """
        assert self._pipeline is not None
        pipeline = self._pipeline

        def attempt() -> bytes:
            remaining = (
                None if deadline is None else deadline - time.monotonic()
            )
            if remaining is not None and remaining <= 0:
                raise RequestTimeout("deadline expired before pipelined send")
            return pipeline.request(payload, timeout=remaining)

        return self._retry.run(attempt, deadline=deadline)

    def _raise_transport_faults(self, message: Message, reply: Message) -> None:
        for fault in reply.faults:
            if not fault.startswith(TRANSPORT_FAULT_PREFIX):
                continue
            detail = fault[len(TRANSPORT_FAULT_PREFIX):]
            if detail.startswith("unknown-endpoint"):
                raise UnknownEndpoint(message.recipient)
            if detail.startswith("overloaded"):
                raise Overloaded(detail)
            if detail.startswith("deadline-expired"):
                raise RequestTimeout(detail)
            raise TransportFailure(detail)
