"""``repro`` — Promises: isolation support for service-based applications.

A complete, from-scratch reproduction of the system proposed in

    Greenfield, Fekete, Jang, Kuo, Nepal.
    "Isolation Support for Service-based Applications: A Position Paper."
    CIDR 2007.

The *Promises* pattern lets a client of autonomous services check a
condition over resources ("at least 5 pink widgets in stock", "room 212 on
12/3", "some 5th-floor room") and then rely on that condition still
holding later, without distributed locks: the client sends predicates in a
promise request; the promise manager grants or rejects immediately,
guarantees granted predicates against concurrent activity for an agreed
duration, and rolls back any action that would violate them.

Package layout (see DESIGN.md for the full inventory):

* :mod:`repro.core` — predicates, promises, checking, the Promise Manager
* :mod:`repro.storage` — embedded ACID store (2PL, WAL, undo logging)
* :mod:`repro.resources` — pools / named instances / property collections
* :mod:`repro.strategies` — the five implementation techniques of §5
* :mod:`repro.protocol` — SOAP-style promise message protocol of §6
* :mod:`repro.net` — asyncio TCP transport: framing, retries, dedup
* :mod:`repro.services` — the paper's example services (merchant, bank,
  hotel, airline, shipping, gallery, travel agent)
* :mod:`repro.baselines` — locking / optimistic / validation comparators
* :mod:`repro.sim` — deterministic discrete-event concurrency harness
* :mod:`repro.recovery` — crash recovery: durable reply journal, restart
  path, post-recovery audit report
* :mod:`repro.faults` — deterministic crash-point injection for tests
"""

from .core import (
    ActionContext,
    ActionFailed,
    ActionResult,
    And,
    Environment,
    EventKind,
    ExecuteOutcome,
    InstanceAvailable,
    LogicalClock,
    PromiseEvent,
    Not,
    Op,
    Or,
    P,
    Predicate,
    Promise,
    PromiseExpired,
    PromiseManager,
    PromiseRequest,
    PromiseResponse,
    PromiseResult,
    PromiseStatus,
    PromiseViolation,
    PropertyCondition,
    PropertyMatch,
    QuantityAtLeast,
    UnknownPromise,
    named_available,
    parse_predicate,
    property_match,
    quantity_at_least,
    render_predicate,
    where,
)
from .resources import (
    AnonymousView,
    CollectionSchema,
    InstanceStatus,
    NamedView,
    PropertyDef,
    PropertyType,
    PropertyView,
    ResourceManager,
)
from .recovery import RecoveryReport, ReplyJournal, recover
from .storage import Store
from .strategies import (
    AllocatedTagsStrategy,
    DelegationStrategy,
    ResourcePoolStrategy,
    SatisfiabilityStrategy,
    StrategyRegistry,
    TentativeAllocationStrategy,
    choose_strategy,
)

__version__ = "1.0.0"

__all__ = [
    "ActionContext",
    "ActionFailed",
    "ActionResult",
    "AllocatedTagsStrategy",
    "And",
    "AnonymousView",
    "CollectionSchema",
    "DelegationStrategy",
    "Environment",
    "EventKind",
    "ExecuteOutcome",
    "InstanceAvailable",
    "InstanceStatus",
    "LogicalClock",
    "NamedView",
    "Not",
    "Op",
    "Or",
    "P",
    "Predicate",
    "Promise",
    "PromiseEvent",
    "PromiseExpired",
    "PromiseManager",
    "PromiseRequest",
    "PromiseResponse",
    "PromiseResult",
    "PromiseStatus",
    "PromiseViolation",
    "PropertyCondition",
    "PropertyDef",
    "PropertyMatch",
    "PropertyType",
    "PropertyView",
    "QuantityAtLeast",
    "RecoveryReport",
    "ReplyJournal",
    "ResourceManager",
    "ResourcePoolStrategy",
    "SatisfiabilityStrategy",
    "Store",
    "StrategyRegistry",
    "TentativeAllocationStrategy",
    "UnknownPromise",
    "choose_strategy",
    "named_available",
    "parse_predicate",
    "property_match",
    "quantity_at_least",
    "recover",
    "render_predicate",
    "where",
    "__version__",
]
