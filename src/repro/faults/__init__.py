"""Deterministic crash-point injection (the exercised-histories harness).

The paper's §4 atomicity guarantees — grant-and-reply as a unit, action
and promise-release as a unit — only mean something if the promise
manager survives a crash between any two steps.  This package lets tests
and benchmarks *schedule* a crash at a named point in the pipeline
(after BEGIN, after a PUT, just before or after COMMIT, after a grant
but before the reply, mid-checkpoint, ...), observe the simulated
process death, and then restart the manager from its write-ahead log to
verify that recovery restores a state where every invariant holds.
"""

from .crashpoints import (
    CRASH_POINTS,
    CrashSchedule,
    SimulatedCrash,
    armed,
    clear,
    crash_point,
    crashed,
    install,
    should_crash,
)
from .history import HistoryEvent, HistoryRecorder, audit_history

__all__ = [
    "CRASH_POINTS",
    "CrashSchedule",
    "HistoryEvent",
    "HistoryRecorder",
    "SimulatedCrash",
    "armed",
    "audit_history",
    "clear",
    "crash_point",
    "crashed",
    "install",
    "should_crash",
]
