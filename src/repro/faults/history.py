"""Offline history checker: isolation proven from the event log alone.

In the spirit of HISTEX-style black-box checking, the recorder taps each
shard's write-ahead log (the one total order the shard's transactions
already agree on) and keeps the raw committed records.  After the run —
chaos schedule, failover drill, pipelined benchmark, anything — the
checker folds the history offline and asserts the two properties the
concurrent hot path must not have traded away:

* **no-over-grant** — at every commit point, the escrow held by active
  promises on a pool exactly matches the pool's recorded allocation, and
  no pool's availability ever goes negative.  A double-executed grant or
  a lost release shows up here as drift between what promises claim and
  what the pool granted.
* **at-most-once** — no promise id is ever granted twice (including
  re-activation after release/consume/expiry across a failover), and no
  §6 dedup key in the reply journal is ever re-written with a different
  payload (same key, different reply = the "same" request executed
  twice).

Crash semantics ride the WAL's own: observers hear appends when they
happen, but an un-fsynced group-commit tail dies with the process.
Re-attaching after a restart prunes recorded events above the recovered
LSN — exactly the transactions whose acks were withheld by the
durability barrier — so batch-boundary recovery is checked, not fudged.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Mapping

from ..storage.wal import LogRecord, LogRecordType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..storage.wal import WriteAheadLog

#: Reply-journal bookkeeping key that is rewritten on every request.
_JOURNAL_META_KEY = "__meta__"

#: Promise states that end a grant's hold on its resources.
_TERMINAL = frozenset({"released", "consumed", "expired", "rejected"})


@dataclass(frozen=True)
class HistoryEvent:
    """One grant or settle, as committed to a shard's log."""

    shard: int
    lsn: int
    txn_id: int
    kind: str  # "grant" | "settle" | "update"
    promise_id: str
    status: str
    resources: Mapping[str, int] = field(default_factory=dict)


class HistoryRecorder:
    """Tap WALs, keep committed history, check isolation offline.

    One recorder audits a whole fleet: :meth:`attach` each shard's WAL
    at boot (and again after every restart or promotion — re-attaching
    unsubscribes the shard's previous log, so a deposed primary's
    fenced appends stop polluting the stream, and prunes events above
    the recovered LSN, the lost un-acked tail).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: dict[int, list[LogRecord]] = {}
        self._taps: dict[int, tuple["WriteAheadLog", Callable[[LogRecord], None]]] = {}

    # ------------------------------------------------------------- capture

    def attach(self, shard: int, wal: "WriteAheadLog") -> None:
        """Audit ``shard`` through ``wal`` from this point on.

        Records already captured for the shard with an LSN beyond the
        log's recovered tail are discarded: the crash (or the epoch
        fence) erased those transactions before any client was told
        about them, so the history must forget them too.
        """
        with self._lock:
            previous = self._taps.pop(shard, None)
            if previous is not None:
                old_wal, old_observer = previous
                old_wal.unsubscribe(old_observer)
            base = wal.last_lsn
            kept = [
                record
                for record in self._records.get(shard, [])
                if record.lsn <= base
            ]
            self._records[shard] = kept
            observer = self.observer(shard)
            self._taps[shard] = (wal, observer)
        wal.subscribe(observer)

    def observer(self, shard: int) -> Callable[[LogRecord], None]:
        """A raw tap for ``shard`` (manual wiring; prefers :meth:`attach`)."""

        def record(entry: LogRecord) -> None:
            if entry.record_type is LogRecordType.CHECKPOINT:
                return  # snapshots carry no new transitions
            with self._lock:
                self._records.setdefault(shard, []).append(entry)

        return record

    def detach_all(self) -> None:
        """Unsubscribe every tap (the run is over; keep the history)."""
        with self._lock:
            taps = list(self._taps.values())
            self._taps.clear()
        for wal, observer in taps:
            wal.unsubscribe(observer)

    # ------------------------------------------------------------ analysis

    def events(self, shard: int | None = None) -> list[HistoryEvent]:
        """Committed grant/settle events, in shard commit order."""
        collected: list[HistoryEvent] = []
        for index in sorted(self._shards()) if shard is None else [shard]:
            _Fold(index, self._shard_records(index), collected, []).run()
        return [event for event in collected if event.kind != "update"]

    def check(self) -> list[str]:
        """Every isolation anomaly the recorded history proves.

        Empty means clean: no over-grant, no double execution, no
        escrow drift, on any shard, at any commit point of the run.
        """
        anomalies: list[str] = []
        for index in sorted(self._shards()):
            _Fold(index, self._shard_records(index), [], anomalies).run()
        return anomalies

    @property
    def events_recorded(self) -> int:
        """Raw committed-or-pending records captured (vacuity guard)."""
        with self._lock:
            return sum(len(records) for records in self._records.values())

    def _shards(self) -> list[int]:
        with self._lock:
            return list(self._records)

    def _shard_records(self, shard: int) -> list[LogRecord]:
        with self._lock:
            return list(self._records.get(shard, []))


class _Fold:
    """One shard's offline replay: fold records, emit events + anomalies."""

    def __init__(
        self,
        shard: int,
        records: Iterable[LogRecord],
        events: list[HistoryEvent],
        anomalies: list[str],
    ) -> None:
        self.shard = shard
        self.records = records
        self.events = events
        self.anomalies = anomalies
        self._pending: dict[int, list[LogRecord]] = {}
        #: promise id -> (status, escrow, escrow-is-authoritative) of the
        #: last committed image.  Escrow read from the pool strategy's
        #: meta is authoritative for the allocation cross-check; escrow
        #: inferred from predicates only labels the event.
        self._promises: dict[str, tuple[str, dict[str, int], bool]] = {}
        #: pool id -> last committed (available, allocated).
        self._pools: dict[str, tuple[int, int]] = {}
        #: dedup key -> canonical reply payload (JSON, for comparison).
        self._replies: dict[str, str] = {}

    def run(self) -> None:
        for record in self.records:
            if record.record_type is LogRecordType.BEGIN:
                if record.txn_id is not None:
                    self._pending[record.txn_id] = []
            elif record.record_type in (LogRecordType.PUT, LogRecordType.DELETE):
                if record.txn_id in self._pending:
                    self._pending[record.txn_id].append(record)
            elif record.record_type is LogRecordType.ABORT:
                self._pending.pop(record.txn_id, None)
            elif record.record_type is LogRecordType.COMMIT:
                changes = self._pending.pop(record.txn_id, None)
                if changes:
                    self._commit(record, changes)

    # ----------------------------------------------------------- folding

    def _commit(self, commit: LogRecord, changes: list[LogRecord]) -> None:
        touched_pools: set[str] = set()
        for change in changes:
            if change.table == "pools":
                self._apply_pool(commit, change)
                if change.key is not None:
                    touched_pools.add(change.key)
            elif change.table == "promise_table":
                self._apply_promise(commit, change)
            elif change.table == "reply_journal":
                self._apply_reply(commit, change)
        self._check_escrow(commit, touched_pools)

    def _apply_pool(self, commit: LogRecord, change: LogRecord) -> None:
        pool_id = change.key or ""
        if change.record_type is LogRecordType.DELETE:
            self._pools.pop(pool_id, None)
            return
        value = change.value if isinstance(change.value, dict) else {}
        available = int(value.get("available", 0))
        allocated = int(value.get("allocated", 0))
        if available < 0:
            self._flag(
                commit,
                f"over-grant: pool {pool_id!r} availability went negative "
                f"({available})",
            )
        if allocated < 0:
            self._flag(
                commit,
                f"accounting: pool {pool_id!r} allocation went negative "
                f"({allocated})",
            )
        self._pools[pool_id] = (available, allocated)

    def _apply_promise(self, commit: LogRecord, change: LogRecord) -> None:
        promise_id = change.key or ""
        if change.record_type is LogRecordType.DELETE:
            self._promises.pop(promise_id, None)
            return
        value = change.value if isinstance(change.value, dict) else {}
        status = str(value.get("status", ""))
        escrow, authoritative = self._escrow_of(value)
        previous = self._promises.get(promise_id)
        if status == "active":
            if previous is None:
                kind = "grant"
            elif previous[0] == "active":
                kind = "update"  # refreshed image, same grant
            else:
                kind = "grant"
                self._flag(
                    commit,
                    f"at-most-once: promise {promise_id!r} re-granted "
                    f"after {previous[0]!r}",
                )
        elif status in _TERMINAL:
            kind = "settle"
            if previous is None:
                self._flag(
                    commit,
                    f"history: settle of unknown promise {promise_id!r}",
                )
            elif previous[0] in _TERMINAL and previous[0] != status:
                self._flag(
                    commit,
                    f"history: promise {promise_id!r} settled twice "
                    f"({previous[0]!r} then {status!r})",
                )
        else:
            kind = "update"
        self._promises[promise_id] = (status, escrow, authoritative)
        self.events.append(
            HistoryEvent(
                shard=self.shard,
                lsn=commit.lsn,
                txn_id=commit.txn_id or 0,
                kind=kind,
                promise_id=promise_id,
                status=status,
                resources=escrow,
            )
        )

    def _apply_reply(self, commit: LogRecord, change: LogRecord) -> None:
        key = change.key or ""
        if key == _JOURNAL_META_KEY:
            return
        if change.record_type is LogRecordType.DELETE:
            self._replies.pop(key, None)  # journal trim: forget, not flag
            return
        value = change.value if isinstance(change.value, dict) else {}
        payload = json.dumps(value.get("payload"), sort_keys=True)
        previous = self._replies.get(key)
        if previous is not None and previous != payload:
            self._flag(
                commit,
                f"at-most-once: dedup key {key!r} re-executed with a "
                "different reply",
            )
        self._replies[key] = payload

    # ------------------------------------------------------------ checks

    def _check_escrow(self, commit: LogRecord, pools: set[str]) -> None:
        """Active-promise escrow must equal the pool's recorded allocation."""
        if not pools:
            return
        outstanding: dict[str, int] = {}
        for status, escrow, authoritative in self._promises.values():
            if status != "active" or not authoritative:
                continue
            for pool_id, amount in escrow.items():
                outstanding[pool_id] = outstanding.get(pool_id, 0) + amount
        for pool_id in pools:
            recorded = self._pools.get(pool_id)
            if recorded is None:
                continue
            held = outstanding.get(pool_id, 0)
            if held != recorded[1]:
                self._flag(
                    commit,
                    f"over-grant: pool {pool_id!r} allocation {recorded[1]} "
                    f"!= {held} escrowed by active promises",
                )

    def _flag(self, commit: LogRecord, detail: str) -> None:
        self.anomalies.append(
            f"shard {self.shard} lsn {commit.lsn}: {detail}"
        )

    @staticmethod
    def _escrow_of(value: dict) -> tuple[dict[str, int], bool]:
        meta = value.get("meta")
        if isinstance(meta, dict):
            pool_meta = meta.get("resource_pool")
            if isinstance(pool_meta, dict):
                escrow = pool_meta.get("escrow")
                if isinstance(escrow, dict):
                    return (
                        {
                            str(pool): int(amount)
                            for pool, amount in escrow.items()
                        },
                        True,
                    )
        # No pool strategy on this promise: fall back to its quantity
        # predicates so the event still names the resources it covers.
        escrow: dict[str, int] = {}
        for predicate in value.get("predicates") or []:
            if (
                isinstance(predicate, dict)
                and predicate.get("kind") == "quantity"
            ):
                pool = str(predicate.get("pool", ""))
                escrow[pool] = escrow.get(pool, 0) + int(
                    predicate.get("amount", 0)
                )
        return escrow, False


def audit_history(recorder: HistoryRecorder) -> list[str]:
    """The recorder's anomalies, as audit violations (empty = clean)."""
    return recorder.check()
