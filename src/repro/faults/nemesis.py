"""Seeded chaos nemesis: randomized fault schedules over a live fleet.

The crash-point matrix and the fleet fault tests each exercise one
hand-picked failure; the nemesis composes *all* of the substrate's fault
classes — socket request/reply drops, scoped crash points, full shard
kill/restarts and admission overload bursts — into a seeded randomized
schedule interleaved with a grant/release workload, then audits the
end state against the invariants the paper's protocol promises:

* **no over-grant** — after every held promise is released, every pool
  is back to its seeded stock with zero allocation;
* **at-most-once** — redelivered messages (the drops force them) never
  execute twice: the same audit catches a double grant as leftover
  allocation, and a double release as over-full availability (the pool
  record itself rejects it);
* **doctor-clean** — every shard's consistency doctor finds nothing;
* **no stranded compensations** — the gateway's pending queue drains to
  zero once the fleet is healthy.

A run also *proves its own coverage*: the report records, per fault
class, how many injections actually fired (a planned drop consumed, a
crash schedule tripped, a server shed), and any class that never fired
by the end is force-fired deterministically, so a green run cannot be
green because the chaos silently missed.

Crash probes deserve their footnote: a scoped crash point freezes the
victim's disk, after which the shard keeps serving from memory but
persists nothing.  The nemesis therefore probes through the gateway
(the client's redelivery reads the grant back from the durable reply
journal) and then immediately kills, disarms and restarts the victim —
anything the frozen shard did in memory after the crash is discarded,
exactly like a real process dying, instead of lingering as state that a
later restart would silently resurrect.

This module is deliberately *not* exported from :mod:`repro.faults`:
it imports the cluster and net layers, which themselves import
:mod:`repro.faults.crashpoints`, so an eager re-export would be
circular.  Import it as ``repro.faults.nemesis``.
"""

from __future__ import annotations

import random
import shutil
import tempfile
import time
from dataclasses import dataclass, field, replace

from ..cluster.fleet import ClusterFleet, provision_products
from ..cluster.gateway import ClusterGateway
from ..cluster.partition import PartitionMap
from ..core.parser import P
from ..net.transport import NetworkTransport
from ..obs.trace import SpanRecorder
from ..protocol.client import PromiseClient
from ..protocol.errors import ProtocolError, RequestTimeout, TransportFailure
from ..protocol.messages import Message
from ..protocol.retry import RetryPolicy
from ..resilience.admission import KIND_CHECK, AdmissionController
from ..resilience.breaker import CircuitBreaker
from .crashpoints import clear, install
from .history import HistoryRecorder, audit_history

FAULT_REQUEST_DROP = "request-drop"
FAULT_REPLY_DROP = "reply-drop"
FAULT_CRASH_POINT = "crash-point"
FAULT_KILL_RESTART = "kill-restart"
FAULT_OVERLOAD_BURST = "overload-burst"
FAULT_KILL_PRIMARY = "kill-primary"
FAULT_PARTITION_PRIMARY = "partition-primary"

#: Every fault class an unreplicated run injects; the report tracks
#: each separately.
FAULT_CLASSES: tuple[str, ...] = (
    FAULT_REQUEST_DROP,
    FAULT_REPLY_DROP,
    FAULT_CRASH_POINT,
    FAULT_KILL_RESTART,
    FAULT_OVERLOAD_BURST,
)

#: Additional classes a replicated run (``replicas > 0``) injects.
#: Both target a group's *primary* mid-traffic and audit the two
#: failover invariants: journaled replies survive promotion, and a
#: grant never executes on both sides of an epoch bump.
REPLICA_FAULT_CLASSES: tuple[str, ...] = (
    FAULT_KILL_PRIMARY,
    FAULT_PARTITION_PRIMARY,
)

#: Crash points a probe can reach with a single-shard grant.  Both sit
#: after the grant committed, so the redelivery path (not a plain
#: retry-from-scratch) is what recovers the promise id.
CRASH_PROBE_POINTS: tuple[str, ...] = (
    "manager.after-grant-before-reply",
    "endpoint.before-reply",
)

class _RecordingGateway:
    """Client-side tap remembering the last message put on the wire.

    When a grant ultimately fails client-side (retry budget spent, or a
    breaker cut the redelivery short), the client cannot know whether
    the server granted.  §6's answer is redelivery: re-sending the
    *same* message id later is a read against the reply journal, not a
    second grant.  The nemesis drains these in-doubt messages once the
    fleet is healthy and releases whatever they reveal.
    """

    def __init__(self, inner) -> None:
        self.inner = inner
        self.last: "Message | None" = None

    def send(self, message):
        self.last = message
        return self.inner.send(message)


#: Benign faults a release may report during chaos: the promise is
#: already gone (released end-state by other means), or one of its
#: shards was unreachable — in which case the gateway queued the
#: sub-release as a pending compensation and the drain's flush applies
#: it once the shard is back.
_GONE_FAULTS = (
    "unknown-promise",
    "promise-expired",
    "cluster-shard-unreachable",
)


@dataclass
class NemesisReport:
    """What one seeded run did, injected, and (crucially) proved."""

    seed: int
    steps: int = 0
    operations: dict[str, int] = field(default_factory=dict)
    injected: dict[str, int] = field(default_factory=dict)
    fired: dict[str, int] = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)
    duplicates_served: int = 0
    shed: int = 0
    #: Spans the trace-history audit re-verified (0 = audit vacuous).
    spans_audited: int = 0
    #: WAL records the offline history checker folded (0 = vacuous).
    history_records: int = 0

    @property
    def ok(self) -> bool:
        """No invariant violations and every fault class actually fired.

        The run's active classes are exactly the keys the nemesis
        seeded into :attr:`fired` — an unreplicated run is not failed
        for never killing a primary it does not have.
        """
        classes = self.fired or {name: 0 for name in FAULT_CLASSES}
        return not self.violations and all(
            count > 0 for count in classes.values()
        )

    def summary(self) -> dict[str, object]:
        """JSON-serialisable view for the CLI and benchmarks."""
        return {
            "seed": self.seed,
            "steps": self.steps,
            "ok": self.ok,
            "operations": dict(self.operations),
            "faults_injected": dict(self.injected),
            "faults_fired": dict(self.fired),
            "violations": list(self.violations),
            "duplicates_served": self.duplicates_served,
            "shed": self.shed,
            "spans_audited": self.spans_audited,
            "history_records": self.history_records,
        }


class ChaosNemesis:
    """Drive one seeded chaos run against a WAL-backed shard fleet."""

    def __init__(
        self,
        seed: int,
        wal_dir: str | None = None,
        shards: int = 3,
        products: int = 9,
        stock: int = 20,
        steps: int = 30,
        fault_every: int = 3,
        time_budget: float | None = None,
        replicas: int = 0,
        heartbeat_interval: float = 0.1,
    ) -> None:
        if shards < 2:
            raise ValueError("chaos needs at least two shards to partition")
        self.seed = seed
        self.shards = shards
        self.products = products
        self.stock = stock
        self.steps = steps
        self.fault_every = max(1, fault_every)
        self.time_budget = time_budget
        #: Followers per shard.  0 = the PR 3/4 unreplicated fleet;
        #: > 0 boots a ReplicatedFleet plus heartbeat detector and adds
        #: the primary-targeting fault classes to the schedule.
        self.replicas = replicas
        self.heartbeat_interval = heartbeat_interval
        self.fault_classes: tuple[str, ...] = FAULT_CLASSES + (
            REPLICA_FAULT_CLASSES if replicas > 0 else ()
        )
        self._wal_dir = wal_dir
        self._rng = random.Random(seed)
        self._ring = PartitionMap(shards)
        self._held: list[str] = []
        self._in_doubt: list[Message] = []
        self._recorder: _RecordingGateway | None = None
        #: Records the client/gateway halves of every trace; shard
        #: servers keep their own rings.  The span audit reads both.
        self.tracer = SpanRecorder(capacity=16384)
        #: Taps every shard WAL; its offline fold is the third auditor
        #: (no-over-grant and at-most-once proven from history alone).
        self.history = HistoryRecorder()
        self._admissions: dict[int, AdmissionController] = {}
        self._message_count = 0
        self.report = NemesisReport(seed=seed)
        for name in self.fault_classes:
            self.report.injected[name] = 0
            self.report.fired[name] = 0

    # --------------------------------------------------------------- run

    def run(self) -> NemesisReport:
        """Boot the fleet, run the schedule, drain, audit, report."""
        owned_dir = self._wal_dir is None
        wal_dir = self._wal_dir or tempfile.mkdtemp(prefix="nemesis-")
        clear()
        ring = self._ring
        detector = None
        if self.replicas > 0:
            from ..replication import HeartbeatDetector, ReplicatedFleet

            fleet = ReplicatedFleet(
                self.shards,
                replicas=self.replicas,
                provision=provision_products(self.products, self.stock),
                ring=ring,
                wal_dir=wal_dir,
                admission=self._admission_factory,
                history=self.history,
            )
            fleet.start()
            detector = HeartbeatDetector(
                fleet, interval=self.heartbeat_interval, miss_threshold=3
            ).start()
        else:
            fleet = ClusterFleet(
                self.shards,
                provision=provision_products(self.products, self.stock),
                ring=ring,
                wal_dir=wal_dir,
                admission=self._admission_factory,
                history=self.history,
            )
            fleet.start()
        transports = [
            NetworkTransport(address, timeout=2.0, retry=RetryPolicy.none())
            for address in fleet.addresses()
        ]
        breakers = [
            CircuitBreaker(
                f"chaos-s{index}", failure_threshold=4, reset_timeout=0.2
            )
            for index in range(self.shards)
        ]
        gateway = ClusterGateway(
            transports,
            ring=ring,
            breakers=breakers,
            pending_limit=64,
            tracer=self.tracer,
        )
        if self.replicas > 0:
            fleet.attach(gateway)
        self._recorder = _RecordingGateway(gateway)
        client = PromiseClient(
            "nemesis",
            self._recorder,
            retry=RetryPolicy(max_attempts=5, base_delay=0.05, max_delay=0.3),
            deadline=10.0,
            tracer=self.tracer,
        )
        started = time.monotonic()
        try:
            schedule = self._fault_schedule()
            for step in range(self.steps):
                if (
                    self.time_budget is not None
                    and time.monotonic() - started > self.time_budget
                ):
                    break
                self.report.steps += 1
                if step % self.fault_every == 0 and schedule:
                    self._inject(schedule.pop(0), fleet, gateway, client)
                else:
                    self._operate(fleet, client)
            self._ensure_fired(fleet, gateway, client)
            self._drain(fleet, gateway, client)
            self._audit(fleet, gateway)
            self.report.duplicates_served = sum(
                fleet.shard(i).server.stats.duplicates_served
                for i in range(self.shards)
            )
            self.report.shed = sum(
                fleet.shard(i).server.stats.shed for i in range(self.shards)
            )
        finally:
            clear()
            if detector is not None:
                detector.stop()
            self.history.detach_all()
            for transport in transports:
                transport.close()
            fleet.stop()
            if owned_dir:
                shutil.rmtree(wal_dir, ignore_errors=True)
        return self.report

    # --------------------------------------------------------- workload

    def _operate(self, fleet: ClusterFleet, client: PromiseClient) -> None:
        choice = self._rng.random()
        if choice < 0.4 or not self._held:
            if self._rng.random() < 0.6:
                self._grant(client, [self._pick_product()])
            else:
                self._grant(client, self._pick_cross_pair(fleet.ring))
        else:
            self._release(client, self._held.pop(self._rng.randrange(len(self._held))))

    def _grant(self, client: PromiseClient, products: list[str]) -> None:
        self._count_op("grant")
        predicates = [
            P(f"quantity('{product}') >= {self._rng.randint(1, 2)}")
            for product in products
        ]
        try:
            response = client.request_promise("shop", predicates, 60)
        except (TransportFailure, RequestTimeout, ProtocolError):
            self._count_op("grant-failed")
            # The server may have granted without us learning the id;
            # keep the exact wire message so the drain can redeliver it
            # and release whatever it reveals.
            last = self._recorder.last if self._recorder else None
            if last is not None and last.promise_requests:
                self._in_doubt.append(replace(last, deadline=None))
            return
        if response.accepted and response.promise_id:
            self._held.append(response.promise_id)

    def _release(self, client: PromiseClient, promise_id: str) -> bool:
        self._count_op("release")
        try:
            faults = client.release("shop", promise_id)
        except (TransportFailure, RequestTimeout, ProtocolError):
            self._held.append(promise_id)  # try again during the drain
            self._count_op("release-failed")
            return False
        bad = [
            fault
            for fault in faults
            if not any(gone in fault for gone in _GONE_FAULTS)
        ]
        if bad:
            self.report.violations.append(
                f"release of {promise_id} faulted: {bad}"
            )
        return True

    def _pick_product(self, shard: int | None = None) -> str:
        candidates = [f"product-{n}" for n in range(self.products)]
        if shard is not None:
            candidates = [
                p for p in candidates if self._ring.shard_of(p) == shard
            ] or candidates
        return self._rng.choice(candidates)

    def _pick_cross_pair(self, ring: PartitionMap) -> list[str]:
        first = self._pick_product()
        home = ring.shard_of(first)
        others = [
            f"product-{n}"
            for n in range(self.products)
            if ring.shard_of(f"product-{n}") != home
        ]
        if not others:
            return [first]
        return [first, self._rng.choice(others)]

    # ---------------------------------------------------------- injection

    def _fault_schedule(self) -> list[str]:
        rounds = max(1, self.steps // self.fault_every)
        schedule: list[str] = []
        while len(schedule) < rounds:
            batch = list(self.fault_classes)
            self._rng.shuffle(batch)
            schedule.extend(batch)
        return schedule[:rounds]

    def _inject(
        self,
        fault: str,
        fleet: ClusterFleet,
        gateway: ClusterGateway,
        client: PromiseClient,
    ) -> None:
        self.report.injected[fault] += 1
        victim = self._rng.randrange(self.shards)
        if fault == FAULT_REQUEST_DROP:
            self._inject_drop(fault, victim, gateway, client, reply=False)
        elif fault == FAULT_REPLY_DROP:
            self._inject_drop(fault, victim, gateway, client, reply=True)
        elif fault == FAULT_CRASH_POINT:
            self._inject_crash(victim, fleet, gateway, client)
        elif fault == FAULT_KILL_RESTART:
            self._inject_kill(victim, fleet, gateway, client)
        elif fault == FAULT_OVERLOAD_BURST:
            self._inject_overload(victim, fleet, client)
        elif fault == FAULT_KILL_PRIMARY:
            self._inject_kill_primary(victim, fleet, gateway, client)
        elif fault == FAULT_PARTITION_PRIMARY:
            self._inject_partition(victim, fleet, gateway, client)

    def _inject_drop(
        self,
        fault: str,
        victim: int,
        gateway: ClusterGateway,
        client: PromiseClient,
        reply: bool,
    ) -> None:
        # Read the victim's transport *through* the gateway: a replica
        # failover remaps it, and the constructor-time list goes stale.
        transport = gateway.transport(victim)
        stats = transport.stats
        before = stats.dropped_replies if reply else stats.dropped_requests
        if reply:
            transport.plan_reply_drop(stats.sent + 1)
        else:
            transport.plan_request_drop(stats.sent + 1)
        # A grant homed on the victim consumes the plan; the client's
        # redelivery (same message id) is what §6 exists for.
        self._grant(client, [self._pick_product(shard=victim)])
        after = stats.dropped_replies if reply else stats.dropped_requests
        if after > before:
            self.report.fired[fault] += 1

    def _inject_crash(
        self,
        victim: int,
        fleet: ClusterFleet,
        gateway: ClusterGateway,
        client: PromiseClient,
    ) -> None:
        point = self._rng.choice(CRASH_PROBE_POINTS)
        schedule = install(point, scope=self._scope(fleet, victim))
        try:
            self._grant(client, [self._pick_product(shard=victim)])
        finally:
            fired = schedule.fired
            clear()
        if fired:
            self.report.fired[FAULT_CRASH_POINT] += 1
        # The frozen shard has been serving from memory since the crash
        # fired; kill it NOW so nothing non-durable survives, then bring
        # it back from its WAL like a real restart would.
        fleet.kill(victim)
        fleet.restart(victim)
        self._flush(gateway)

    def _inject_kill(
        self,
        victim: int,
        fleet: ClusterFleet,
        gateway: ClusterGateway,
        client: PromiseClient,
    ) -> None:
        fleet.kill(victim)
        self.report.fired[FAULT_KILL_RESTART] += 1
        for _ in range(2):
            self._operate(fleet, client)
        fleet.restart(victim)
        self._flush(gateway)

    def _inject_overload(
        self, victim: int, fleet: ClusterFleet, client: PromiseClient
    ) -> None:
        admission = self._admissions.get(victim)
        server_stats = fleet.shard(victim).server.stats
        before = server_stats.shed
        if admission is not None:
            # Drain the victim's bucket so the next real check sheds.
            for _ in range(int(admission.burst) + 1):
                if not admission.admit(KIND_CHECK):
                    break
        self._grant(client, [self._pick_product(shard=victim)])
        if server_stats.shed > before:
            self.report.fired[FAULT_OVERLOAD_BURST] += 1

    def _inject_kill_primary(
        self,
        victim: int,
        fleet,
        gateway: ClusterGateway,
        client: PromiseClient,
    ) -> None:
        """Kill a primary mid-grant; audit both failover invariants.

        Stage one acks a grant (G1) and keeps its exact wire message;
        stage two arms a scoped crash between commit and reply and
        attempts a second grant (G2), whose commit ships to the
        followers but whose ack the client never sees.  After the
        detector promotes a follower, redelivering G1 must return the
        *original* promise id (journaled replies survive failover) and
        redelivering G2 twice must return one id both times (no double
        grant across epochs) — either mismatch is a recorded violation,
        not just a failed run.
        """
        epoch_before = fleet.epoch(victim)
        g1_message, g1_id = self._acked_grant(victim, client)
        point = "manager.after-grant-before-reply"
        schedule = install(point, scope=self._scope(fleet, victim))
        g2_message = None
        try:
            self._count_op("grant")
            try:
                client.request_promise(
                    "shop",
                    [P(f"quantity('{self._pick_product(shard=victim)}') >= 1")],
                    60,
                )
            except (TransportFailure, RequestTimeout, ProtocolError):
                self._count_op("grant-failed")
            last = self._recorder.last if self._recorder else None
            if last is not None and last.promise_requests:
                g2_message = replace(last, deadline=None)
        finally:
            crashed_mid_grant = schedule.fired
            clear()
        fleet.kill(victim)
        if not fleet.await_failover(victim, beyond_epoch=epoch_before, timeout=15.0):
            fleet.restart(victim)  # detector missed: force the promotion
        promoted = fleet.epoch(victim) > epoch_before
        if crashed_mid_grant and promoted:
            self.report.fired[FAULT_KILL_PRIMARY] += 1
        if g1_message is not None and g1_id is not None:
            revealed = self._redeliver_ids(gateway, g1_message, attempts=2)
            if revealed and all(r == g1_id for r in revealed):
                self._release(client, g1_id)
            else:
                self.report.violations.append(
                    f"journaled reply lost in failover: grant "
                    f"{g1_message.message_id} was {g1_id}, redelivery "
                    f"returned {revealed}"
                )
        if g2_message is not None:
            revealed = self._redeliver_ids(gateway, g2_message, attempts=2)
            if len(set(revealed)) > 1:
                self.report.violations.append(
                    f"double grant across epochs: redeliveries of "
                    f"{g2_message.message_id} returned {revealed}"
                )
            for promise_id in set(revealed):
                self._release(client, promise_id)
        fleet.restart(victim)  # rejoin the corpse as a fresh follower
        self._flush(gateway)

    def _inject_partition(
        self,
        victim: int,
        fleet,
        gateway: ClusterGateway,
        client: PromiseClient,
    ) -> None:
        """Partition a primary from its followers mid-traffic.

        The cut primary keeps running and keeps accepting TCP — the
        replication gate is what stops it acking, so the grant attempt
        lands in doubt.  The detector treats the partition as missed
        heartbeats and promotes; healing retires the zombie and rejoins
        it.  The in-doubt grant resolves during the drain against the
        *new* primary, and the final stock audit catches any grant that
        leaked on both sides.
        """
        epoch_before = fleet.epoch(victim)
        fleet.partition(victim)
        self._grant(client, [self._pick_product(shard=victim)])
        if not fleet.await_failover(victim, beyond_epoch=epoch_before, timeout=15.0):
            fleet.failover(victim)
        if fleet.epoch(victim) > epoch_before:
            self.report.fired[FAULT_PARTITION_PRIMARY] += 1
        fleet.heal(victim)
        self._flush(gateway)

    def _acked_grant(
        self, victim: int, client: PromiseClient
    ) -> tuple[Message | None, str | None]:
        """One successful grant homed on ``victim``: (wire message, id)."""
        self._count_op("grant")
        product = self._pick_product(shard=victim)
        try:
            response = client.request_promise(
                "shop", [P(f"quantity('{product}') >= 1")], 60
            )
        except (TransportFailure, RequestTimeout, ProtocolError):
            self._count_op("grant-failed")
            last = self._recorder.last if self._recorder else None
            if last is not None and last.promise_requests:
                self._in_doubt.append(replace(last, deadline=None))
            return None, None
        last = self._recorder.last if self._recorder else None
        if response.accepted and response.promise_id and last is not None:
            return replace(last, deadline=None), response.promise_id
        return None, None

    def _redeliver_ids(
        self, gateway: ClusterGateway, message: Message, attempts: int
    ) -> list[str]:
        """Redeliver the same wire message N times; collect granted ids."""
        revealed: list[str] = []
        for _ in range(attempts):
            reply = None
            for _ in range(4):
                try:
                    reply = gateway.send(message)
                    break
                except (TransportFailure, RequestTimeout, ProtocolError):
                    time.sleep(0.1)
            if reply is None:
                self.report.violations.append(
                    f"redelivery of {message.message_id} unresolvable"
                )
                continue
            for response in reply.promise_responses:
                if response.accepted and response.promise_id:
                    revealed.append(response.promise_id)
        return revealed

    def _scope(self, fleet, victim: int) -> str:
        """The victim's crash-injection scope, replicated or not."""
        scope_of = getattr(fleet, "primary_scope", None)
        if scope_of is not None:
            return scope_of(victim)
        return f"shard-{victim}"

    def _ensure_fired(
        self,
        fleet: ClusterFleet,
        gateway: ClusterGateway,
        client: PromiseClient,
    ) -> None:
        """Force-fire any class the randomized schedule missed.

        Coverage is part of the contract: a run that never actually
        dropped a reply proves nothing about redelivery.
        """
        for fault in self.fault_classes:
            attempts = 0
            while self.report.fired[fault] == 0 and attempts < 3:
                attempts += 1
                self.report.injected[fault] += 1
                victim = attempts % self.shards
                if fault == FAULT_REQUEST_DROP:
                    self._inject_drop(fault, victim, gateway, client, reply=False)
                elif fault == FAULT_REPLY_DROP:
                    self._inject_drop(fault, victim, gateway, client, reply=True)
                elif fault == FAULT_CRASH_POINT:
                    self._inject_crash(victim, fleet, gateway, client)
                elif fault == FAULT_KILL_RESTART:
                    self._inject_kill(victim, fleet, gateway, client)
                elif fault == FAULT_OVERLOAD_BURST:
                    self._inject_overload(victim, fleet, client)
                elif fault == FAULT_KILL_PRIMARY:
                    self._inject_kill_primary(victim, fleet, gateway, client)
                elif fault == FAULT_PARTITION_PRIMARY:
                    self._inject_partition(victim, fleet, gateway, client)
            if self.report.fired[fault] == 0:
                self.report.violations.append(
                    f"fault class {fault!r} never fired"
                )

    # ------------------------------------------------------------- drain

    def _drain(
        self,
        fleet: ClusterFleet,
        gateway: ClusterGateway,
        client: PromiseClient,
    ) -> None:
        clear()
        for index in range(self.shards):
            if not fleet.shard(index).alive:
                fleet.restart(index)
        time.sleep(0.25)  # let half-open breakers admit their probes
        self._resolve_in_doubt(gateway, client)
        for _ in range(3):
            if not self._held:
                break
            retry = list(self._held)
            self._held = []
            for promise_id in retry:
                self._release(client, promise_id)
            if self._held:
                time.sleep(0.2)
        for promise_id in self._held:
            self.report.violations.append(
                f"promise {promise_id} could not be released"
            )
        self._flush(gateway, attempts=5)

    def _resolve_in_doubt(
        self, gateway: ClusterGateway, client: PromiseClient
    ) -> None:
        """Redeliver abandoned grant messages; release what they reveal.

        Same message id as the original attempt, so a server that did
        execute it replays the journaled reply instead of granting
        again — redelivery is how a §6 client settles its own doubt.
        """
        for message in self._in_doubt:
            reply = None
            for _ in range(3):
                try:
                    reply = gateway.send(message)
                    break
                except (TransportFailure, RequestTimeout, ProtocolError):
                    time.sleep(0.1)
            if reply is None:
                self.report.violations.append(
                    f"in-doubt grant {message.message_id} unresolvable"
                )
                continue
            for response in reply.promise_responses:
                if response.accepted and response.promise_id:
                    self._release(client, response.promise_id)
        self._in_doubt = []

    def _flush(self, gateway: ClusterGateway, attempts: int = 2) -> None:
        for _ in range(attempts):
            if gateway.pending_compensations == 0:
                return
            gateway.flush_pending()
            if gateway.pending_compensations:
                time.sleep(0.1)

    # ------------------------------------------------------------- audits

    def _audit(self, fleet: ClusterFleet, gateway: ClusterGateway) -> None:
        self.report.violations.extend(audit_fleet(fleet, self.stock))
        if gateway.pending_compensations:
            self.report.violations.append(
                f"{gateway.pending_compensations} compensations still pending"
            )
        spans = self._collect_spans(fleet)
        self.report.spans_audited = len(spans)
        self.report.violations.extend(audit_spans(spans))
        self.report.history_records = self.history.events_recorded
        self.report.violations.extend(audit_history(self.history))

    def _collect_spans(self, fleet: ClusterFleet) -> list[dict]:
        """Every span the run produced, from every recorder that has one.

        The nemesis recorder holds the client/gateway halves; each shard
        server holds its own dispatch spans.  In a replicated run a
        deposed primary's ring matters most — the whole point of the
        trace audit is to see executions on *both* sides of an epoch
        bump, and the pre-failover side lives only in the deposed
        process's recorder.
        """
        spans = [span.to_dict() for span in self.tracer.spans()]
        group_of = getattr(fleet, "group", None)
        if group_of is not None:
            for index in range(self.shards):
                group = group_of(index)
                replicas = [group.primary] + group.followers + group.deposed
                for replica in replicas:
                    spans.extend(
                        span.to_dict() for span in replica.server.tracer.spans()
                    )
        else:
            for index in range(self.shards):
                shard = fleet.shard(index)
                spans.extend(
                    span.to_dict() for span in shard.server.tracer.spans()
                )
        return spans

    # ---------------------------------------------------------- internals

    def _admission_factory(self, index: int) -> AdmissionController:
        controller = AdmissionController(
            max_queue=32, rate=30.0, burst=6.0, reserve=1.0
        )
        self._admissions[index] = controller
        return controller

    def _count_op(self, name: str) -> None:
        self.report.operations[name] = self.report.operations.get(name, 0) + 1


def audit_spans(spans: list[dict]) -> list[str]:
    """Re-verify at-most-once execution from exported trace history alone.

    Every executed, acknowledged ``server.dispatch`` span carries the
    message id, the admission kind and the serving epoch.  At-most-once
    therefore has a purely observational restatement: no message id may
    own two such spans — *ever*, including across a failover.  A check
    executed and acknowledged at epoch 0 and again at epoch 1 is exactly
    the double grant the epoch fence exists to prevent, and it is
    visible here with no server state needed.

    Spans whose acknowledgement was withheld (``fenced`` outcome on a
    deposed primary) or lost to a crash are excluded: their execution
    was never promised to the client, so the journalled replay on the
    survivor is the protocol working, not a violation.
    """
    seen: set[str] = set()
    acknowledged: dict[str, list[dict]] = {}
    for span in spans:
        span_id = str(span.get("span_id", ""))
        if span_id in seen:
            continue  # the same span scraped via two paths
        seen.add(span_id)
        if span.get("name") != "server.dispatch":
            continue
        attributes = span.get("attributes") or {}
        if not attributes.get("executed"):
            continue
        if span.get("outcome") != "ok":
            continue
        message_id = attributes.get("message_id")
        if not message_id:
            continue
        acknowledged.setdefault(str(message_id), []).append(span)
    violations: list[str] = []
    for message_id, hits in sorted(acknowledged.items()):
        if len(hits) < 2:
            continue
        epochs = sorted(
            {str((hit.get("attributes") or {}).get("epoch")) for hit in hits}
        )
        kind = (hits[0].get("attributes") or {}).get("kind", "?")
        where = (
            f"across epochs {'/'.join(epochs)}"
            if len(epochs) > 1
            else f"at epoch {epochs[0]}"
        )
        violations.append(
            f"span audit: {kind} message {message_id} executed and "
            f"acknowledged {len(hits)} times {where}"
        )
    return violations


def audit_fleet(fleet: ClusterFleet, stock: int) -> list[str]:
    """End-state invariant audit shared by the nemesis and its self-test.

    With every promise released, over-grant, double-execution and lost
    release all leave the same fingerprint: a pool whose availability or
    allocation differs from its seeded state.
    """
    violations: list[str] = []
    for index, count in fleet.live_promises().items():
        if count:
            violations.append(f"shard {index} holds {count} live promises")
    for index, findings in fleet.audit().items():
        for finding in findings:
            violations.append(f"shard {index} doctor: {finding}")
    for index in range(len(fleet)):
        shard = fleet.shard(index)
        if not shard.alive:
            violations.append(f"shard {index} is not alive at audit time")
            continue
        deployment = shard.deployment
        with deployment.store.transaction() as txn:
            for pool in deployment.resources.pools(txn):
                if pool.available != stock or pool.allocated != 0:
                    violations.append(
                        f"pool {pool.pool_id} on shard {index}: "
                        f"available={pool.available} allocated={pool.allocated}"
                        f" (expected available={stock} allocated=0)"
                    )
    return violations


def _span_audit_self_test() -> bool:
    """Feed :func:`audit_spans` a fabricated double grant; it must object.

    The forged history shows one check-kind message executed and
    acknowledged at epoch 0 and again at epoch 1 — plus decoys (a fenced
    execution and a duplicate replay) that must *not* trip it.
    """

    def dispatch(span_id, message_id, epoch, outcome="ok", executed=True):
        return {
            "name": "server.dispatch",
            "trace_id": "t-forged",
            "span_id": span_id,
            "outcome": outcome,
            "attributes": {
                "message_id": message_id,
                "kind": "check",
                "epoch": epoch,
                "executed": executed or None,
            },
        }

    clean = [
        dispatch("s1", "m-clean", 0),
        dispatch("s2", "m-fenced", 0, outcome="fenced"),
        dispatch("s3", "m-fenced", 1),
        dispatch("s4", "m-replayed", 0),
        dispatch("s5", "m-replayed", 1, outcome="duplicate", executed=False),
        dispatch("s4", "m-replayed", 0),  # same span scraped twice
    ]
    if audit_spans(clean):
        return False
    forged = clean + [
        dispatch("s6", "m-double", 0),
        dispatch("s7", "m-double", 1),
    ]
    caught = audit_spans(forged)
    return any(
        "m-double" in violation and "across epochs 0/1" in violation
        for violation in caught
    )


def self_test(wal_dir: str | None = None) -> bool:
    """Prove the auditors can actually catch a violation.

    Boots a small fleet, grants a promise and deliberately never
    releases it; :func:`audit_fleet` must flag both the live promise and
    the pool's missing stock.  :func:`audit_spans` must likewise flag a
    fabricated trace showing one message executed on both sides of an
    epoch bump.  A nemesis whose auditors pass this check cannot be
    green merely because the checks are vacuous.
    """
    if not _span_audit_self_test():
        return False
    owned_dir = wal_dir is None
    directory = wal_dir or tempfile.mkdtemp(prefix="nemesis-selftest-")
    fleet = ClusterFleet(
        2,
        provision=provision_products(4, 10),
        wal_dir=directory,
    )
    fleet.start()
    try:
        with fleet.gateway(retry=RetryPolicy.none()) as gateway:
            client = PromiseClient("selftest", gateway, retry=RetryPolicy.none())
            response = client.request_promise(
                "shop", [P("quantity('product-0') >= 3")], 600
            )
            if not response.accepted:
                return False
        violations = audit_fleet(fleet, stock=10)
        leaked_promise = any("live promises" in v for v in violations)
        leaked_stock = any("pool product-0" in v for v in violations)
        return leaked_promise and leaked_stock
    finally:
        fleet.stop()
        if owned_dir:
            shutil.rmtree(directory, ignore_errors=True)
