"""Named crash points and the schedule that arms them.

Production code calls :func:`crash_point` (or :func:`should_crash` when
it wants to perform a *torn* effect, such as writing half a WAL record,
before dying) at the places a real process could be killed.  The calls
are free when nothing is armed — a single ``is None`` check.

A test arms exactly one point via :func:`install` or the :func:`armed`
context manager; when execution reaches it, :class:`SimulatedCrash` is
raised.  From that moment the schedule reports :func:`crashed` truthily
and the write-ahead log *freezes the disk*: any writes attempted by
unwinding ``except``/``finally`` blocks are silently dropped, exactly as
they would be in a process that had already died at the crash point.
Recovery tests then discard the in-memory object graph and rebuild the
system from the log file alone.

**Scopes.**  A schedule may carry a ``scope`` naming one logical
process.  Instrumented call sites report the scope of the component they
belong to (a deployment's ``fault_scope``, plumbed down to its store and
write-ahead log); a scoped schedule fires only at sites reporting that
scope, and once fired it freezes only that scope's disks.  This is what
lets a *fleet* of promise managers share one OS process in tests while
exactly one of them "dies": arming ``("manager.after-grant-before-reply",
scope="shard-1")`` kills shard 1 mid-request and leaves its siblings
running and durable.  An unscoped schedule keeps the original
whole-process semantics: it fires at any site and freezes every disk.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Iterator

#: Every crash point the substrate instruments, in pipeline order.  The
#: crash-matrix test iterates this list, so adding an instrumentation
#: site here automatically adds it to the recovery matrix.
CRASH_POINTS: tuple[str, ...] = (
    "store.after-begin",            # BEGIN logged, no changes yet
    "store.after-put",              # a PUT record logged, txn in flight
    "store.before-commit",          # all changes logged, COMMIT not yet
    "store.after-commit",           # COMMIT logged, in-memory finish pending
    "wal.torn-append",              # power loss mid-append: half a record
    "wal.mid-checkpoint",           # snapshot written, os.replace pending
    "wal.after-checkpoint-replace",  # os.replace done, dir fsync pending
    "manager.after-grant-before-reply",   # grant committed, reply never sent
    "manager.after-action-before-release",  # action ran, releases pending
    "manager.after-execute-commit",  # action+release committed, reply lost
    "endpoint.before-reply",        # handler done, reply envelope unsent
)


class SimulatedCrash(RuntimeError):
    """The simulated process death injected at an armed crash point."""

    def __init__(self, point: str) -> None:
        super().__init__(f"simulated crash at {point!r}")
        self.point = point


@dataclass
class CrashSchedule:
    """Arm one named point; crash on its ``hits``-th occurrence.

    With a ``scope``, only call sites reporting that scope count (and
    later freeze); without one, every site counts and every disk
    freezes — the original single-process semantics.
    """

    point: str
    hits: int = 1
    scope: str | None = None
    seen: int = field(default=0, init=False)
    fired: bool = field(default=False, init=False)

    def due(self, name: str, scope: str | None = None) -> bool:
        """Consume one occurrence of ``name``; True when it is time to die."""
        if self.fired or name != self.point:
            return False
        if self.scope is not None and scope != self.scope:
            return False
        self.seen += 1
        if self.seen >= self.hits:
            self.fired = True
            return True
        return False


_schedule: CrashSchedule | None = None


def install(point: str, hits: int = 1, scope: str | None = None) -> CrashSchedule:
    """Arm ``point``; the ``hits``-th occurrence raises SimulatedCrash."""
    global _schedule
    _schedule = CrashSchedule(point, hits, scope)
    return _schedule


def clear() -> None:
    """Disarm everything (the simulated process has been 'restarted')."""
    global _schedule
    _schedule = None


def crashed(scope: str | None = None) -> bool:
    """True once the armed crash has fired for ``scope`` (it is 'dead').

    The WAL consults this, passing its own scope, to drop writes
    attempted by code unwinding past the crash point — a dead process
    writes nothing to disk.  An unscoped fired schedule reports every
    scope dead; a scoped one only its own.
    """
    if _schedule is None or not _schedule.fired:
        return False
    return _schedule.scope is None or _schedule.scope == scope


def crash_point(name: str, scope: str | None = None) -> None:
    """Die here when ``name`` is armed and due; free when nothing is."""
    if _schedule is None:
        return
    if _schedule.due(name, scope):
        raise SimulatedCrash(name)


def should_crash(name: str, scope: str | None = None) -> bool:
    """Like :func:`crash_point`, but lets the caller tear its own effect.

    Returns True when the caller should perform its partial effect (for
    example, write half a WAL record) and then raise
    :class:`SimulatedCrash` itself.
    """
    if _schedule is None:
        return False
    return _schedule.due(name, scope)


@contextlib.contextmanager
def armed(
    point: str, hits: int = 1, scope: str | None = None
) -> Iterator[CrashSchedule]:
    """Arm ``point`` for the duration of the block, disarming on exit."""
    schedule = install(point, hits, scope)
    try:
        yield schedule
    finally:
        clear()
