"""Write-ahead log for the embedded store.

Records are append-only and serialisable to JSON lines, so a store can be
rebuilt after a crash by replaying committed transactions.  The log is
deliberately simple — physical REDO images keyed by (table, key) — because
the substrate only needs to honour the ACID contract the prototype relies on
(paper, §8), not compete with a production engine.

Durability discipline:

* appends go through one persistent file handle and are flushed per
  record; ``fsync=True`` additionally fsyncs each append, trading
  throughput for power-loss durability;
* a *torn tail* — the final line cut short by a crash mid-append — is
  logged, dropped, and truncated away rather than making the log
  unopenable; corruption anywhere *before* the tail still raises, since
  dropping committed history would be silent data loss;
* :meth:`checkpoint` writes the snapshot to a temporary file and
  atomically ``os.replace``\\ s it over the log, so a crash at any point
  leaves either the full old log or the complete checkpoint — never an
  empty or half-written file.
"""

from __future__ import annotations

import enum
import json
import logging
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import IO, TYPE_CHECKING, Callable, Iterator

from ..faults.crashpoints import SimulatedCrash, crash_point, crashed, should_crash
from .errors import RecoveryError
from .group_commit import GroupCommitConfig, GroupCommitter

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs.metrics import MetricsRegistry

logger = logging.getLogger(__name__)


class LogRecordType(enum.Enum):
    """Kinds of WAL records."""

    CREATE_TABLE = "create_table"
    BEGIN = "begin"
    PUT = "put"
    DELETE = "delete"
    COMMIT = "commit"
    ABORT = "abort"
    CHECKPOINT = "checkpoint"


@dataclass(frozen=True)
class LogRecord:
    """One WAL entry.

    ``value`` carries the full after-image for PUT records; CHECKPOINT
    records carry a snapshot of the whole store in ``value`` instead.
    """

    lsn: int
    record_type: LogRecordType
    txn_id: int | None = None
    table: str | None = None
    key: str | None = None
    value: object | None = None

    def to_json(self) -> str:
        """Serialise to a single JSON line."""
        payload = {
            "lsn": self.lsn,
            "type": self.record_type.value,
            "txn": self.txn_id,
            "table": self.table,
            "key": self.key,
            "value": self.value,
        }
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "LogRecord":
        """Parse a JSON line produced by :meth:`to_json`."""
        try:
            payload = json.loads(line)
            return cls(
                lsn=payload["lsn"],
                record_type=LogRecordType(payload["type"]),
                txn_id=payload["txn"],
                table=payload["table"],
                key=payload["key"],
                value=payload["value"],
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise RecoveryError(f"malformed WAL line: {line!r}") from exc


class WriteAheadLog:
    """In-memory WAL with optional file persistence.

    The store appends records before applying changes; :meth:`replay` folds
    the log into the after-state of all *committed* transactions.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        fsync: bool = False,
        fault_scope: str | None = None,
        group_commit: GroupCommitConfig | None = None,
    ) -> None:
        self._records: list[LogRecord] = []
        self._next_lsn = 1
        self._path = Path(path) if path is not None else None
        self._fsync = fsync
        #: Serialises all log mutation; parallel dispatch runs handlers
        #: on worker threads, and every one of them appends here.
        self._mutex = threading.RLock()
        #: Which logical process this log belongs to, for scoped crash
        #: injection: a scoped simulated crash freezes only the disks of
        #: its own scope (one shard of a fleet), not its siblings'.
        self._fault_scope = fault_scope
        self._handle: IO[str] | None = None
        self._since_checkpoint = 0
        #: Replication taps: called with each record the local process
        #: successfully logged (appends and checkpoints, never ingests).
        self._observers: list[Callable[[LogRecord], None]] = []
        #: Human-readable notes recovery surfaces (torn tail drops etc.).
        self.recovery_notes: list[str] = []
        if self._path is not None:
            # A stale temp file is an interrupted checkpoint whose
            # os.replace never ran; the main log is authoritative.
            tmp = self._tmp_path()
            if tmp.exists():
                self.recovery_notes.append(
                    f"removed interrupted checkpoint temp file {tmp.name}"
                )
                tmp.unlink()
            if self._path.exists():
                self._load()
            self._handle = self._path.open("a", encoding="utf-8")
        #: Group-commit mode: appends buffer their serialised lines with
        #: the committer and :meth:`wait_durable` is the (batched)
        #: durability barrier, instead of flush/fsync per append.
        self._committer: GroupCommitter | None = None
        if group_commit is not None and self._path is not None:
            self._committer = GroupCommitter(
                group_commit, handle_of=lambda: self._handle
            )

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self._records)

    @property
    def last_lsn(self) -> int:
        """LSN of the most recent record, 0 when empty."""
        return self._next_lsn - 1

    @property
    def path(self) -> Path | None:
        """The backing file, when persistent."""
        return self._path

    @property
    def records_since_checkpoint(self) -> int:
        """Appends since the last checkpoint (drives auto-checkpointing)."""
        return self._since_checkpoint

    def max_txn_id(self) -> int:
        """Highest transaction id the log mentions (0 when none).

        A store reopening this log continues numbering *past* it, so
        replay never sees one id meaning two different transactions.
        """
        return max(
            (record.txn_id for record in self._records if record.txn_id is not None),
            default=0,
        )

    @property
    def group_commit(self) -> GroupCommitConfig | None:
        """The group-commit configuration, when batching is active."""
        return self._committer.config if self._committer is not None else None

    @property
    def durable_lsn(self) -> int:
        """Highest LSN known hardened.

        Without group commit every append hardens synchronously, so the
        whole log is durable; with it, the committer's high-water mark.
        """
        if self._committer is None:
            return self.last_lsn
        return self._committer.durable_lsn

    def wait_durable(self, lsn: int | None = None, timeout: float = 30.0) -> None:
        """Durability barrier: block until ``lsn`` (default: everything
        appended so far) is hardened.  A no-op outside group-commit mode
        — the per-append flush/fsync already ran."""
        if self._committer is None:
            return
        target = self.last_lsn if lsn is None else lsn
        if target <= 0:
            return
        self._committer.wait_durable(target, timeout=timeout)

    def set_metrics(self, registry: "MetricsRegistry | None") -> None:
        """Route ``wal.batch.*`` counters into ``registry``."""
        if self._committer is not None:
            self._committer._metrics = registry

    def close(self) -> None:
        """Close the backing file handle (idempotent).

        In group-commit mode the buffered batch is hardened first, so a
        clean shutdown never loses acknowledged work."""
        if self._committer is not None:
            self._committer.close()
        self._close_handle()

    def _close_handle(self) -> None:
        """Close only the file handle (checkpoint swaps need this while
        keeping the group committer alive)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def subscribe(self, observer: Callable[[LogRecord], None]) -> None:
        """Register a tap notified after every locally-logged record.

        This is the hook WAL shipping hangs off: a replication sender
        subscribes and forwards each record to the shard's followers.
        Observers run synchronously after the local write so a record is
        never shipped before it exists on the primary's own disk; they
        are *not* called for :meth:`ingest`\\ ed records (a follower does
        not re-ship what its primary sent it) nor once the owning scope
        has simulated-crashed (a dead process ships nothing).
        """
        self._observers.append(observer)

    def unsubscribe(self, observer: Callable[[LogRecord], None]) -> None:
        """Remove a previously-subscribed tap (idempotent)."""
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    def _notify(self, record: LogRecord) -> None:
        if not self._observers or crashed(self._fault_scope):
            return
        for observer in list(self._observers):
            observer(record)

    def append(
        self,
        record_type: LogRecordType,
        txn_id: int | None = None,
        table: str | None = None,
        key: str | None = None,
        value: object | None = None,
    ) -> LogRecord:
        """Append a record, assigning the next LSN, and persist if filed.

        With group commit active the serialised line is handed to the
        batch committer instead of being written (and fsynced) inline;
        durability then arrives at the next batch flush, and callers
        needing a barrier use :meth:`wait_durable`.
        """
        with self._mutex:
            record = LogRecord(
                lsn=self._next_lsn,
                record_type=record_type,
                txn_id=txn_id,
                table=table,
                key=key,
                value=value,
            )
            self._next_lsn += 1
            self._records.append(record)
            self._since_checkpoint += 1
            if self._handle is not None and not crashed(self._fault_scope):
                line = record.to_json() + "\n"
                if should_crash("wal.torn-append", self._fault_scope):
                    # Power loss mid-append: half the record reaches disk.
                    if self._committer is not None:
                        self._committer.flush_now()
                    self._handle.write(line[: max(1, len(line) // 2)])
                    self._handle.flush()
                    raise SimulatedCrash("wal.torn-append")
                if self._committer is not None:
                    self._committer.enqueue(record.lsn, line)
                else:
                    self._handle.write(line)
                    self._handle.flush()
                    if self._fsync:
                        os.fsync(self._handle.fileno())
            self._notify(record)
            return record

    def ingest(self, record: LogRecord) -> bool:
        """Apply a record shipped from a replication primary.

        Unlike :meth:`append`, the record keeps the LSN the primary
        assigned it — a follower's log must be byte-compatible with its
        primary's so promotion can boot a deployment straight off it.
        Records at or below :attr:`last_lsn` were already applied (the
        sender re-ships its backlog after a transient failure) and are
        skipped, making delivery idempotent.  A CHECKPOINT record
        truncates the follower's file exactly as a local checkpoint
        would.  Returns True when the record advanced the log.
        """
        with self._mutex:
            return self._ingest_locked(record)

    def _ingest_locked(self, record: LogRecord) -> bool:
        if record.lsn <= self.last_lsn:
            return False
        if record.record_type is LogRecordType.CHECKPOINT:
            self._next_lsn = record.lsn + 1
            if self._path is not None and not crashed(self._fault_scope):
                tmp = self._tmp_path()
                with tmp.open("w", encoding="utf-8") as handle:
                    handle.write(record.to_json() + "\n")
                    handle.flush()
                    if self._fsync:
                        os.fsync(handle.fileno())
                self._close_handle()
                os.replace(tmp, self._path)
                self._handle = self._path.open("a", encoding="utf-8")
            self._records = [record]
            self._since_checkpoint = 0
            return True
        self._records.append(record)
        self._next_lsn = record.lsn + 1
        self._since_checkpoint += 1
        if self._handle is not None and not crashed(self._fault_scope):
            self._handle.write(record.to_json() + "\n")
            self._handle.flush()
            if self._fsync:
                os.fsync(self._handle.fileno())
        return True

    def checkpoint(self, snapshot: dict[str, dict[str, object]]) -> LogRecord:
        """Write a CHECKPOINT carrying a full store snapshot and truncate.

        After a checkpoint, replay starts from the snapshot rather than the
        beginning of time.  The file swap is atomic (temp file +
        ``os.replace``): a crash mid-checkpoint leaves the previous log
        intact, never a destroyed one.
        """
        with self._mutex:
            return self._checkpoint_locked(snapshot)

    def _checkpoint_locked(
        self, snapshot: dict[str, dict[str, object]]
    ) -> LogRecord:
        if self._committer is not None:
            # Harden the buffered batch into the *old* file first: its
            # waiters' LSNs predate the checkpoint and must not be left
            # pointing at lines that never reached any disk.
            self._committer.flush_now()
        record = LogRecord(
            lsn=self._next_lsn,
            record_type=LogRecordType.CHECKPOINT,
            value=snapshot,
        )
        self._next_lsn += 1
        if self._path is not None and not crashed(self._fault_scope):
            tmp = self._tmp_path()
            with tmp.open("w", encoding="utf-8") as handle:
                handle.write(record.to_json() + "\n")
                handle.flush()
                if self._fsync:
                    os.fsync(handle.fileno())
            crash_point("wal.mid-checkpoint", self._fault_scope)
            self._close_handle()
            os.replace(tmp, self._path)
            crash_point("wal.after-checkpoint-replace", self._fault_scope)
            if self._fsync:
                # os.replace makes the swap atomic but not durable: the
                # rename lives in the directory, and a power loss before
                # the directory block reaches disk can resurrect the old
                # log (or the temp name) after the checkpoint was
                # acknowledged.  Fsyncing the parent directory pins the
                # rename, matching the fsync discipline of appends.
                dir_fd = os.open(self._path.parent, os.O_RDONLY)
                try:
                    os.fsync(dir_fd)
                finally:
                    os.close(dir_fd)
            self._handle = self._path.open("a", encoding="utf-8")
        self._records = [record]
        self._since_checkpoint = 0
        self._notify(record)
        return record

    def replay(self) -> dict[str, dict[str, object]]:
        """Fold the log into table->key->value state of committed work.

        Uncommitted (in-flight or aborted) transactions leave no trace,
        which is exactly the atomicity contract the promise manager's
        per-request transaction depends on.
        """
        state: dict[str, dict[str, object]] = {}
        pending: dict[int, list[LogRecord]] = {}
        for record in self._records:
            if record.record_type is LogRecordType.CREATE_TABLE:
                state.setdefault(record.table or "", {})
            elif record.record_type is LogRecordType.CHECKPOINT:
                if not isinstance(record.value, dict):
                    raise RecoveryError("checkpoint record missing snapshot")
                state = {
                    table: dict(rows) for table, rows in record.value.items()
                }
                pending.clear()
            elif record.record_type is LogRecordType.BEGIN:
                if record.txn_id is None:
                    raise RecoveryError("BEGIN record without txn id")
                pending[record.txn_id] = []
            elif record.record_type in (LogRecordType.PUT, LogRecordType.DELETE):
                if record.txn_id not in pending:
                    raise RecoveryError(
                        f"change record for unknown txn {record.txn_id}"
                    )
                pending[record.txn_id].append(record)
            elif record.record_type is LogRecordType.COMMIT:
                changes = pending.pop(record.txn_id, None)
                if changes is None:
                    raise RecoveryError(f"COMMIT for unknown txn {record.txn_id}")
                for change in changes:
                    table_state = state.setdefault(change.table or "", {})
                    if change.record_type is LogRecordType.PUT:
                        table_state[change.key or ""] = change.value
                    else:
                        table_state.pop(change.key or "", None)
            elif record.record_type is LogRecordType.ABORT:
                pending.pop(record.txn_id, None)
        return state

    def records_for(self, txn_id: int) -> list[LogRecord]:
        """All records tagged with ``txn_id`` (testing/debug helper)."""
        return [record for record in self._records if record.txn_id == txn_id]

    # ------------------------------------------------------------ internals

    def _tmp_path(self) -> Path:
        assert self._path is not None
        return self._path.with_name(self._path.name + ".tmp")

    def _load(self) -> None:
        """Read the log back, tolerating a crash-torn final line.

        A record cut short mid-append is the *expected* signature of a
        crash; it was never acknowledged, so it is dropped and the file
        truncated back to the last whole record.  A malformed line with
        valid records after it is genuine corruption and still raises.
        """
        assert self._path is not None
        raw = self._path.read_bytes()
        pos = 0
        truncate_at: int | None = None
        while pos < len(raw):
            newline = raw.find(b"\n", pos)
            end = newline + 1 if newline != -1 else len(raw)
            line = raw[pos:end].strip()
            if line:
                try:
                    record = LogRecord.from_json(line.decode("utf-8"))
                except (RecoveryError, UnicodeDecodeError) as exc:
                    if raw[end:].strip():
                        raise RecoveryError(
                            f"corrupt WAL record before end of log "
                            f"(byte offset {pos})"
                        ) from exc
                    truncate_at = pos
                    break
                self._records.append(record)
                self._next_lsn = max(self._next_lsn, record.lsn + 1)
                if record.record_type is LogRecordType.CHECKPOINT:
                    self._since_checkpoint = 0
                else:
                    self._since_checkpoint += 1
            pos = end
        if truncate_at is not None:
            dropped = len(raw) - truncate_at
            note = (
                f"dropped torn tail record ({dropped} bytes) "
                f"at byte offset {truncate_at}"
            )
            logger.warning("%s: %s", self._path, note)
            self.recovery_notes.append(note)
            with self._path.open("r+b") as handle:
                handle.truncate(truncate_at)
        elif raw and not raw.endswith(b"\n"):
            # Final record is whole but its newline was lost; restore it
            # so the next append starts on a fresh line.
            with self._path.open("ab") as handle:
                handle.write(b"\n")
