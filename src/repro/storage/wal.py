"""Write-ahead log for the embedded store.

Records are append-only and serialisable to JSON lines, so a store can be
rebuilt after a crash by replaying committed transactions.  The log is
deliberately simple — physical REDO images keyed by (table, key) — because
the substrate only needs to honour the ACID contract the prototype relies on
(paper, §8), not compete with a production engine.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from .errors import RecoveryError


class LogRecordType(enum.Enum):
    """Kinds of WAL records."""

    CREATE_TABLE = "create_table"
    BEGIN = "begin"
    PUT = "put"
    DELETE = "delete"
    COMMIT = "commit"
    ABORT = "abort"
    CHECKPOINT = "checkpoint"


@dataclass(frozen=True)
class LogRecord:
    """One WAL entry.

    ``value`` carries the full after-image for PUT records; CHECKPOINT
    records carry a snapshot of the whole store in ``value`` instead.
    """

    lsn: int
    record_type: LogRecordType
    txn_id: int | None = None
    table: str | None = None
    key: str | None = None
    value: object | None = None

    def to_json(self) -> str:
        """Serialise to a single JSON line."""
        payload = {
            "lsn": self.lsn,
            "type": self.record_type.value,
            "txn": self.txn_id,
            "table": self.table,
            "key": self.key,
            "value": self.value,
        }
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "LogRecord":
        """Parse a JSON line produced by :meth:`to_json`."""
        try:
            payload = json.loads(line)
            return cls(
                lsn=payload["lsn"],
                record_type=LogRecordType(payload["type"]),
                txn_id=payload["txn"],
                table=payload["table"],
                key=payload["key"],
                value=payload["value"],
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise RecoveryError(f"malformed WAL line: {line!r}") from exc


class WriteAheadLog:
    """In-memory WAL with optional file persistence.

    The store appends records before applying changes; :meth:`replay` folds
    the log into the after-state of all *committed* transactions.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self._records: list[LogRecord] = []
        self._next_lsn = 1
        self._path = Path(path) if path is not None else None
        if self._path is not None and self._path.exists():
            self._load()

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self._records)

    @property
    def last_lsn(self) -> int:
        """LSN of the most recent record, 0 when empty."""
        return self._next_lsn - 1

    def append(
        self,
        record_type: LogRecordType,
        txn_id: int | None = None,
        table: str | None = None,
        key: str | None = None,
        value: object | None = None,
    ) -> LogRecord:
        """Append a record, assigning the next LSN, and persist if filed."""
        record = LogRecord(
            lsn=self._next_lsn,
            record_type=record_type,
            txn_id=txn_id,
            table=table,
            key=key,
            value=value,
        )
        self._next_lsn += 1
        self._records.append(record)
        if self._path is not None:
            with self._path.open("a", encoding="utf-8") as handle:
                handle.write(record.to_json() + "\n")
        return record

    def checkpoint(self, snapshot: dict[str, dict[str, object]]) -> LogRecord:
        """Write a CHECKPOINT carrying a full store snapshot and truncate.

        After a checkpoint, replay starts from the snapshot rather than the
        beginning of time.
        """
        record = LogRecord(
            lsn=self._next_lsn,
            record_type=LogRecordType.CHECKPOINT,
            value=snapshot,
        )
        self._next_lsn += 1
        self._records = [record]
        if self._path is not None:
            with self._path.open("w", encoding="utf-8") as handle:
                handle.write(record.to_json() + "\n")
        return record

    def replay(self) -> dict[str, dict[str, object]]:
        """Fold the log into table->key->value state of committed work.

        Uncommitted (in-flight or aborted) transactions leave no trace,
        which is exactly the atomicity contract the promise manager's
        per-request transaction depends on.
        """
        state: dict[str, dict[str, object]] = {}
        pending: dict[int, list[LogRecord]] = {}
        for record in self._records:
            if record.record_type is LogRecordType.CREATE_TABLE:
                state.setdefault(record.table or "", {})
            elif record.record_type is LogRecordType.CHECKPOINT:
                if not isinstance(record.value, dict):
                    raise RecoveryError("checkpoint record missing snapshot")
                state = {
                    table: dict(rows) for table, rows in record.value.items()
                }
                pending.clear()
            elif record.record_type is LogRecordType.BEGIN:
                if record.txn_id is None:
                    raise RecoveryError("BEGIN record without txn id")
                pending[record.txn_id] = []
            elif record.record_type in (LogRecordType.PUT, LogRecordType.DELETE):
                if record.txn_id not in pending:
                    raise RecoveryError(
                        f"change record for unknown txn {record.txn_id}"
                    )
                pending[record.txn_id].append(record)
            elif record.record_type is LogRecordType.COMMIT:
                changes = pending.pop(record.txn_id, None)
                if changes is None:
                    raise RecoveryError(f"COMMIT for unknown txn {record.txn_id}")
                for change in changes:
                    table_state = state.setdefault(change.table or "", {})
                    if change.record_type is LogRecordType.PUT:
                        table_state[change.key or ""] = change.value
                    else:
                        table_state.pop(change.key or "", None)
            elif record.record_type is LogRecordType.ABORT:
                pending.pop(record.txn_id, None)
        return state

    def records_for(self, txn_id: int) -> list[LogRecord]:
        """All records tagged with ``txn_id`` (testing/debug helper)."""
        return [record for record in self._records if record.txn_id == txn_id]

    # ------------------------------------------------------------ internals

    def _load(self) -> None:
        assert self._path is not None
        lines: Iterable[str]
        with self._path.open("r", encoding="utf-8") as handle:
            lines = handle.readlines()
        for line in lines:
            line = line.strip()
            if not line:
                continue
            record = LogRecord.from_json(line)
            self._records.append(record)
            self._next_lsn = max(self._next_lsn, record.lsn + 1)
