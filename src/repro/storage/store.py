"""Embedded transactional key-value store.

The store keeps named tables of JSON-ish records and provides ACID
transactions with strict two-phase locking, undo-log rollback and a
write-ahead log.  It is the substrate standing in for the commercial DBMS
behind the paper's prototype Resource Manager (§8): the Resource Manager
stores resource state in it, the Promise Manager stores the promise table in
it, and each client request runs inside a single store transaction so that
promise-violation detection can roll back the application's changes.

Concurrency discipline: conflicting lock requests fail immediately
(``try_acquire``) and abort the requesting transaction with
:class:`WriteConflict` semantics rather than blocking.  This mirrors the
paper's observation (§9) that immediate rejection avoids the deadlocks that
plague lock-based algorithms; the *blocking* behaviour the paper argues
against lives in the locking baseline, not here.
"""

from __future__ import annotations

import copy
import itertools
import threading
from pathlib import Path
from typing import Callable, Iterator

from ..faults.crashpoints import crash_point
from .errors import (
    DuplicateKey,
    KeyNotFound,
    TableNotFound,
    TransactionAborted,
    TransactionStateError,
)
from .group_commit import GroupCommitConfig
from .locks import LockManager, LockMode
from .transactions import Transaction, TransactionStatus, UndoEntry
from .wal import LogRecordType, WriteAheadLog

_MISSING = object()


def _table_sentinel(table: str) -> tuple[str, str]:
    """Lock key guarding a table's key-set (phantom protection)."""
    return ("__table__", table)


class Store:
    """Named tables of records with ACID transactions.

    Values are deep-copied across the API boundary so callers can never
    alias the store's internal state.
    """

    def __init__(
        self,
        wal_path: str | Path | None = None,
        *,
        fsync: bool = False,
        auto_checkpoint_every: int | None = None,
        fault_scope: str | None = None,
        group_commit: GroupCommitConfig | None = None,
    ) -> None:
        if auto_checkpoint_every is not None and auto_checkpoint_every < 1:
            raise ValueError("auto_checkpoint_every must be positive")
        self._tables: dict[str, dict[str, object]] = {}
        self._locks = LockManager()
        self._fault_scope = fault_scope
        self._wal = WriteAheadLog(
            wal_path,
            fsync=fsync,
            fault_scope=fault_scope,
            group_commit=group_commit,
        )
        #: Serialises whole transactions across threads.  The in-memory
        #: structures (tables, undo logs, the lock table) are not
        #: internally synchronised; a parallel dispatcher runs each
        #: handler's transaction while holding this, then overlaps the
        #: *durability wait* (see :meth:`wait_durable`) outside it —
        #: which is where group commit earns its batches.
        self.mutex = threading.RLock()
        self._auto_checkpoint_every = auto_checkpoint_every
        # Continue txn numbering past anything the log already mentions,
        # so a replayed id can never mean two different transactions.
        self._txn_ids = itertools.count(self._wal.max_txn_id() + 1)
        self._active: dict[int, Transaction] = {}
        self.recovered = False
        if len(self._wal):
            self._tables = {
                table: dict(rows) for table, rows in self._wal.replay().items()
            }
            self.recovered = True

    # ----------------------------------------------------------- schema API

    def create_table(self, name: str) -> None:
        """Create ``name`` if absent (idempotent, WAL-logged)."""
        if name not in self._tables:
            self._tables[name] = {}
            self._wal.append(LogRecordType.CREATE_TABLE, table=name)

    def drop_table(self, name: str) -> None:
        """Remove ``name`` and all its rows."""
        if name not in self._tables:
            raise TableNotFound(name)
        if self._active:
            raise TransactionStateError("cannot drop tables with active transactions")
        del self._tables[name]

    def tables(self) -> list[str]:
        """Names of all tables."""
        return sorted(self._tables)

    def row_count(self, table: str) -> int:
        """Number of committed rows in ``table`` (no transaction needed)."""
        if table not in self._tables:
            raise TableNotFound(table)
        return len(self._tables[table])

    # ----------------------------------------------------- transaction API

    def begin(self) -> Transaction:
        """Start a new transaction."""
        txn = Transaction(self, next(self._txn_ids))
        self._active[txn.txn_id] = txn
        self._wal.append(LogRecordType.BEGIN, txn_id=txn.txn_id)
        crash_point("store.after-begin", self._fault_scope)
        return txn

    def transaction(self) -> Transaction:
        """Alias of :meth:`begin`, reads naturally with ``with``."""
        return self.begin()

    def run(self, work: Callable[[Transaction], object]) -> object:
        """Run ``work`` in a transaction, committing on success.

        Any exception aborts the transaction and propagates.
        """
        with self.begin() as txn:
            return work(txn)

    @property
    def active_transactions(self) -> list[int]:
        """Ids of transactions currently in flight."""
        return sorted(self._active)

    # -------------------------------------------------------- durability API

    def checkpoint(self) -> None:
        """Truncate the WAL to a snapshot of current committed state."""
        if self._active:
            raise TransactionStateError(
                "cannot checkpoint with active transactions"
            )
        snapshot = {
            table: copy.deepcopy(rows) for table, rows in self._tables.items()
        }
        self._wal.checkpoint(snapshot)

    def wait_durable(self, lsn: int | None = None) -> None:
        """Durability barrier over the WAL (no-op outside group commit).

        Callers that must not acknowledge work before it is hardened —
        the networked server releasing a reply — invoke this *after*
        leaving :attr:`mutex`, so many transactions ride one fsync.
        """
        self._wal.wait_durable(lsn)

    def close(self) -> None:
        """Release the WAL file handle (idempotent; store stays readable)."""
        self._wal.close()

    @property
    def wal(self) -> WriteAheadLog:
        """The underlying write-ahead log (read-mostly; tests and recovery)."""
        return self._wal

    @property
    def durable(self) -> bool:
        """True when the WAL is backed by a file (state survives restarts)."""
        return self._wal.path is not None

    @property
    def fault_scope(self) -> str | None:
        """Scope token for scoped crash injection (one shard of a fleet)."""
        return self._fault_scope

    @property
    def lock_manager(self) -> LockManager:
        """The underlying lock manager (exposed for the locking baseline)."""
        return self._locks

    def snapshot(self) -> dict[str, dict[str, object]]:
        """Deep copy of all committed state (no transaction needed)."""
        if self._active:
            raise TransactionStateError(
                "snapshot requires quiescence; abort active transactions first"
            )
        return {table: copy.deepcopy(rows) for table, rows in self._tables.items()}

    # --------------------------------------------- internals used by Transaction

    def _require_table(self, table: str) -> dict[str, object]:
        try:
            return self._tables[table]
        except KeyError:
            raise TableNotFound(table) from None

    def _lock(self, txn: Transaction, key: object, mode: LockMode) -> None:
        if not self._locks.try_acquire(txn.txn_id, key, mode):
            self._abort(txn)
            raise TransactionAborted(
                f"txn {txn.txn_id} conflicts on {key!r} ({mode.value})",
                txn_id=txn.txn_id,
            )

    def _get(self, txn: Transaction, table: str, key: str) -> object:
        value = self._get_or_none(txn, table, key)
        if value is None and key not in self._require_table(table):
            raise KeyNotFound(table, key)
        return value

    def _get_or_none(self, txn: Transaction, table: str, key: str) -> object | None:
        rows = self._require_table(table)
        self._lock(txn, (table, key), LockMode.SHARED)
        if key not in rows:
            return None
        return copy.deepcopy(rows[key])

    def _put(self, txn: Transaction, table: str, key: str, value: object) -> None:
        rows = self._require_table(table)
        if key not in rows:
            self._lock(txn, _table_sentinel(table), LockMode.EXCLUSIVE)
        self._lock(txn, (table, key), LockMode.EXCLUSIVE)
        old = rows.get(key, _MISSING)
        txn.undo_log.append(UndoEntry(table, key, old))
        stored = copy.deepcopy(value)
        rows[key] = stored
        self._wal.append(
            LogRecordType.PUT, txn_id=txn.txn_id, table=table, key=key, value=stored
        )
        crash_point("store.after-put", self._fault_scope)

    def _insert(self, txn: Transaction, table: str, key: str, value: object) -> None:
        rows = self._require_table(table)
        self._lock(txn, (table, key), LockMode.EXCLUSIVE)
        if key in rows:
            raise DuplicateKey(table, key)
        self._put(txn, table, key, value)

    def _delete(self, txn: Transaction, table: str, key: str) -> None:
        rows = self._require_table(table)
        self._lock(txn, _table_sentinel(table), LockMode.EXCLUSIVE)
        self._lock(txn, (table, key), LockMode.EXCLUSIVE)
        if key not in rows:
            raise KeyNotFound(table, key)
        txn.undo_log.append(UndoEntry(table, key, rows[key]))
        del rows[key]
        self._wal.append(
            LogRecordType.DELETE, txn_id=txn.txn_id, table=table, key=key
        )

    def _scan(
        self,
        txn: Transaction,
        table: str,
        predicate: Callable[[str, object], bool] | None,
    ) -> Iterator[tuple[str, object]]:
        rows = self._require_table(table)
        self._lock(txn, _table_sentinel(table), LockMode.SHARED)
        # Materialise the key list so the caller may mutate during iteration.
        results: list[tuple[str, object]] = []
        for key in sorted(rows):
            self._lock(txn, (table, key), LockMode.SHARED)
            value = copy.deepcopy(rows[key])
            if predicate is None or predicate(key, value):
                results.append((key, value))
        return iter(results)

    def _rollback_to(self, txn: Transaction, undo_length: int) -> None:
        while len(txn.undo_log) > undo_length:
            entry = txn.undo_log.pop()
            rows = self._tables[entry.table]
            if entry.old_value is _MISSING:
                rows.pop(entry.key, None)
                self._wal.append(
                    LogRecordType.DELETE,
                    txn_id=txn.txn_id,
                    table=entry.table,
                    key=entry.key,
                )
            else:
                rows[entry.key] = entry.old_value
                self._wal.append(
                    LogRecordType.PUT,
                    txn_id=txn.txn_id,
                    table=entry.table,
                    key=entry.key,
                    value=entry.old_value,
                )

    def _commit(self, txn: Transaction) -> None:
        crash_point("store.before-commit", self._fault_scope)
        self._wal.append(LogRecordType.COMMIT, txn_id=txn.txn_id)
        crash_point("store.after-commit", self._fault_scope)
        txn.status = TransactionStatus.COMMITTED
        self._finish(txn)
        if (
            self._auto_checkpoint_every is not None
            and not self._active
            and self._wal.records_since_checkpoint >= self._auto_checkpoint_every
        ):
            self.checkpoint()

    def _abort(self, txn: Transaction) -> None:
        self._rollback_to(txn, 0)
        self._wal.append(LogRecordType.ABORT, txn_id=txn.txn_id)
        txn.status = TransactionStatus.ABORTED
        self._finish(txn)

    def _finish(self, txn: Transaction) -> None:
        self._locks.release_all(txn.txn_id)
        self._active.pop(txn.txn_id, None)
