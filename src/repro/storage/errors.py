"""Exception hierarchy for the transactional storage substrate.

The storage layer backs both the Resource Manager and the promise table
(paper, Section 8).  Every error raised by the substrate derives from
:class:`StorageError` so callers can catch storage failures uniformly while
still distinguishing aborts, deadlocks and misuse.
"""

from __future__ import annotations


class StorageError(Exception):
    """Base class for all storage-substrate errors."""


class TransactionError(StorageError):
    """Base class for errors tied to a specific transaction."""

    def __init__(self, message: str, txn_id: int | None = None) -> None:
        super().__init__(message)
        self.txn_id = txn_id


class TransactionAborted(TransactionError):
    """The transaction was rolled back and cannot perform further work."""


class DeadlockDetected(TransactionAborted):
    """The transaction was chosen as a deadlock victim and aborted.

    The paper (Section 9) contrasts promises with lock-based schemes exactly
    on this point: unfulfillable promise requests are rejected immediately,
    so promise managers never deadlock, whereas the long-duration 2PL
    baseline can and does raise this error under contention.
    """


class LockTimeout(TransactionError):
    """A lock request waited longer than the caller allowed."""


class TransactionStateError(TransactionError):
    """Operation attempted on a transaction in an incompatible state."""


class KeyNotFound(StorageError):
    """A read referenced a key that does not exist in the store."""

    def __init__(self, table: str, key: object) -> None:
        super().__init__(f"key {key!r} not found in table {table!r}")
        self.table = table
        self.key = key


class TableNotFound(StorageError):
    """An operation referenced a table that was never created."""

    def __init__(self, table: str) -> None:
        super().__init__(f"table {table!r} does not exist")
        self.table = table


class DuplicateKey(StorageError):
    """An insert would overwrite an existing row."""

    def __init__(self, table: str, key: object) -> None:
        super().__init__(f"key {key!r} already exists in table {table!r}")
        self.table = table
        self.key = key


class RecoveryError(StorageError):
    """The write-ahead log could not be replayed into a consistent state."""
