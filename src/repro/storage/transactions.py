"""Transaction objects for the embedded store.

A :class:`Transaction` is a handle bound to a :class:`~repro.storage.store.Store`;
all reads and writes go through it so the store can enforce strict two-phase
locking, maintain the undo log, and write WAL records.  The promise manager
wraps each client request in exactly one of these transactions (paper, §8),
covering the application action *and* the subsequent promise checking, so a
detected violation rolls everything back.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator

from .errors import TransactionStateError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .store import Store


class TransactionStatus(enum.Enum):
    """Lifecycle of a transaction."""

    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


_MISSING = object()


@dataclass(frozen=True)
class UndoEntry:
    """Before-image of one key: ``old_value`` is ``_MISSING`` for inserts."""

    table: str
    key: str
    old_value: object


@dataclass(frozen=True)
class Savepoint:
    """Opaque marker for partial rollback (``rollback_to``)."""

    txn_id: int
    undo_length: int


class Transaction:
    """Handle for one ACID transaction against a :class:`Store`.

    Usable as a context manager: commits on clean exit, aborts on exception.
    """

    def __init__(self, store: "Store", txn_id: int) -> None:
        self._store = store
        self.txn_id = txn_id
        self.status = TransactionStatus.ACTIVE
        self.undo_log: list[UndoEntry] = []

    # ------------------------------------------------------------- protocol

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.status is TransactionStatus.ACTIVE:
            if exc_type is None:
                self.commit()
            else:
                self.abort()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Transaction(id={self.txn_id}, status={self.status.value})"

    # ------------------------------------------------------------ data API

    def get(self, table: str, key: str) -> object:
        """Read ``key`` from ``table`` under a shared lock."""
        self._require_active()
        return self._store._get(self, table, key)

    def get_or_none(self, table: str, key: str) -> object | None:
        """Like :meth:`get` but returns ``None`` for a missing key."""
        self._require_active()
        return self._store._get_or_none(self, table, key)

    def exists(self, table: str, key: str) -> bool:
        """True when ``key`` is present in ``table``."""
        return self.get_or_none(table, key) is not None

    def put(self, table: str, key: str, value: object) -> None:
        """Insert or overwrite ``key`` under an exclusive lock."""
        self._require_active()
        self._store._put(self, table, key, value)

    def insert(self, table: str, key: str, value: object) -> None:
        """Insert ``key``; raises :class:`DuplicateKey` when present."""
        self._require_active()
        self._store._insert(self, table, key, value)

    def delete(self, table: str, key: str) -> None:
        """Remove ``key`` under an exclusive lock."""
        self._require_active()
        self._store._delete(self, table, key)

    def update(
        self, table: str, key: str, updater: Callable[[object], object]
    ) -> object:
        """Read-modify-write ``key`` atomically; returns the new value."""
        self._require_active()
        current = self._store._get(self, table, key)
        new_value = updater(current)
        self._store._put(self, table, key, new_value)
        return new_value

    def scan(
        self,
        table: str,
        predicate: Callable[[str, object], bool] | None = None,
    ) -> Iterator[tuple[str, object]]:
        """Iterate ``(key, value)`` rows, optionally filtered.

        Takes a table-level shared lock: the coarse phantom guard the paper
        alludes to when citing predicate locking (§9).
        """
        self._require_active()
        return self._store._scan(self, table, predicate)

    def keys(self, table: str) -> list[str]:
        """All keys of ``table`` visible to this transaction."""
        return [key for key, __ in self.scan(table)]

    # ----------------------------------------------------------- lifecycle

    def savepoint(self) -> Savepoint:
        """Mark the current position for a later partial rollback."""
        self._require_active()
        return Savepoint(txn_id=self.txn_id, undo_length=len(self.undo_log))

    def rollback_to(self, savepoint: Savepoint) -> None:
        """Undo all changes made after ``savepoint`` (locks are kept)."""
        self._require_active()
        if savepoint.txn_id != self.txn_id:
            raise TransactionStateError(
                "savepoint belongs to a different transaction", txn_id=self.txn_id
            )
        self._store._rollback_to(self, savepoint.undo_length)

    def commit(self) -> None:
        """Make all changes durable and release locks."""
        self._require_active()
        self._store._commit(self)

    def abort(self) -> None:
        """Undo all changes and release locks."""
        self._require_active()
        self._store._abort(self)

    @property
    def is_active(self) -> bool:
        """True while the transaction can still perform work."""
        return self.status is TransactionStatus.ACTIVE

    # ------------------------------------------------------------ internals

    def _require_active(self) -> None:
        if self.status is not TransactionStatus.ACTIVE:
            raise TransactionStateError(
                f"transaction {self.txn_id} is {self.status.value}",
                txn_id=self.txn_id,
            )
