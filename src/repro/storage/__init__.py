"""Transactional storage substrate.

An embedded key-value store with ACID transactions, strict two-phase
locking, undo-log rollback and a write-ahead log.  Stands in for the DBMS
behind the paper prototype's Resource Manager (Greenfield et al., Section 8).
"""

from .errors import (
    DeadlockDetected,
    DuplicateKey,
    KeyNotFound,
    LockTimeout,
    RecoveryError,
    StorageError,
    TableNotFound,
    TransactionAborted,
    TransactionError,
    TransactionStateError,
)
from .group_commit import GroupCommitConfig, GroupCommitter
from .locks import LockManager, LockMode, LockStatus
from .store import Store
from .transactions import Savepoint, Transaction, TransactionStatus
from .wal import LogRecord, LogRecordType, WriteAheadLog

__all__ = [
    "DeadlockDetected",
    "DuplicateKey",
    "GroupCommitConfig",
    "GroupCommitter",
    "KeyNotFound",
    "LockManager",
    "LockMode",
    "LockStatus",
    "LockTimeout",
    "LogRecord",
    "LogRecordType",
    "RecoveryError",
    "Savepoint",
    "StorageError",
    "Store",
    "TableNotFound",
    "Transaction",
    "TransactionAborted",
    "TransactionError",
    "TransactionStateError",
    "TransactionStatus",
    "WriteAheadLog",
]
