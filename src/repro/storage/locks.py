"""Strict two-phase locking with deadlock detection.

The lock manager provides shared/exclusive locks over arbitrary hashable
resource keys.  It is *cooperative*: ``acquire`` either grants immediately,
enqueues the requester (returning :data:`LockStatus.WAITING`), or raises
:class:`~repro.storage.errors.DeadlockDetected` when granting the wait would
close a cycle in the waits-for graph.  Callers that must block (the
long-duration-locking baseline of the benchmarks) drive the wait queue by
retrying after other transactions release.

Two usage profiles:

* The storage engine uses it with short transactions, mirroring the
  prototype's internal ACID transaction per client request (paper, §8).
* The locking *baseline* uses it with long-duration locks held across a
  whole business process, reproducing the regime the paper argues against.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Hashable, Iterable

from .errors import DeadlockDetected


class LockMode(enum.Enum):
    """Lock compatibility modes: shared (readers) and exclusive (writers)."""

    SHARED = "S"
    EXCLUSIVE = "X"

    def compatible_with(self, other: "LockMode") -> bool:
        """Two locks are compatible only when both are shared."""
        return self is LockMode.SHARED and other is LockMode.SHARED


class LockStatus(enum.Enum):
    """Result of an acquire call."""

    GRANTED = "granted"
    WAITING = "waiting"


@dataclass
class _LockRequest:
    txn_id: int
    mode: LockMode


@dataclass
class _LockEntry:
    """State of a single lockable key: current holders plus FIFO waiters."""

    holders: dict[int, LockMode] = field(default_factory=dict)
    waiters: deque[_LockRequest] = field(default_factory=deque)


class LockManager:
    """Table of locks with FIFO queuing and waits-for deadlock detection.

    Deadlock policy: the *requesting* transaction is the victim.  Rejecting
    the newcomer keeps the wait graph acyclic without touching transactions
    that may already hold many locks.
    """

    def __init__(self) -> None:
        self._table: dict[Hashable, _LockEntry] = {}
        # txn -> set of txns it waits for (edge txn -> holder)
        self._waits_for: dict[int, set[int]] = {}
        # txn -> keys it holds or waits on, for release_all
        self._keys_of: dict[int, set[Hashable]] = {}

    # ------------------------------------------------------------------ API

    def acquire(self, txn_id: int, key: Hashable, mode: LockMode) -> LockStatus:
        """Request ``mode`` on ``key`` for ``txn_id``.

        Returns GRANTED or WAITING; raises :class:`DeadlockDetected` when
        waiting would create a cycle.  Re-entrant: a transaction already
        holding the key in a sufficient mode is granted immediately, and a
        shared holder that is the *only* holder may upgrade to exclusive.
        """
        entry = self._table.setdefault(key, _LockEntry())
        held = entry.holders.get(txn_id)
        if held is not None:
            if held is LockMode.EXCLUSIVE or mode is LockMode.SHARED:
                return LockStatus.GRANTED
            # Upgrade S -> X: allowed only when sole holder and no waiter
            # would be bypassed unfairly.
            if len(entry.holders) == 1 and not entry.waiters:
                entry.holders[txn_id] = LockMode.EXCLUSIVE
                return LockStatus.GRANTED
            return self._enqueue(txn_id, key, mode, entry)

        if not entry.waiters and self._grantable(entry, mode):
            entry.holders[txn_id] = mode
            self._keys_of.setdefault(txn_id, set()).add(key)
            return LockStatus.GRANTED
        return self._enqueue(txn_id, key, mode, entry)

    def try_acquire(self, txn_id: int, key: Hashable, mode: LockMode) -> bool:
        """Non-blocking acquire: grant immediately or leave no trace.

        This is the "reject rather than block" discipline the promise
        manager uses internally (paper, §9): an unfulfillable request fails
        at once instead of joining a wait queue, so deadlock is impossible.
        """
        entry = self._table.setdefault(key, _LockEntry())
        held = entry.holders.get(txn_id)
        if held is not None:
            if held is LockMode.EXCLUSIVE or mode is LockMode.SHARED:
                return True
            if len(entry.holders) == 1 and not entry.waiters:
                entry.holders[txn_id] = LockMode.EXCLUSIVE
                return True
            return False
        if not entry.waiters and self._grantable(entry, mode):
            entry.holders[txn_id] = mode
            self._keys_of.setdefault(txn_id, set()).add(key)
            return True
        return False

    def release_all(self, txn_id: int) -> list[tuple[int, Hashable]]:
        """Release every lock ``txn_id`` holds or waits for.

        Returns the ``(txn_id, key)`` pairs newly granted by promotion so a
        scheduler can resume the lucky waiters.
        """
        granted: list[tuple[int, Hashable]] = []
        for key in list(self._keys_of.get(txn_id, ())):
            entry = self._table.get(key)
            if entry is None:
                continue
            entry.holders.pop(txn_id, None)
            entry.waiters = deque(
                request for request in entry.waiters if request.txn_id != txn_id
            )
            granted.extend((req_txn, key) for req_txn in self._promote(key, entry))
            if not entry.holders and not entry.waiters:
                del self._table[key]
        self._keys_of.pop(txn_id, None)
        self._waits_for.pop(txn_id, None)
        for edges in self._waits_for.values():
            edges.discard(txn_id)
        return granted

    def holders(self, key: Hashable) -> dict[int, LockMode]:
        """Current holders of ``key`` (copy)."""
        entry = self._table.get(key)
        return dict(entry.holders) if entry else {}

    def waiting(self, key: Hashable) -> list[int]:
        """Transactions queued on ``key`` in FIFO order."""
        entry = self._table.get(key)
        return [request.txn_id for request in entry.waiters] if entry else []

    def locks_held(self, txn_id: int) -> set[Hashable]:
        """Keys on which ``txn_id`` currently holds a granted lock."""
        held = set()
        for key in self._keys_of.get(txn_id, ()):
            entry = self._table.get(key)
            if entry and txn_id in entry.holders:
                held.add(key)
        return held

    def is_waiting(self, txn_id: int) -> bool:
        """True when ``txn_id`` sits in some wait queue."""
        return bool(self._waits_for.get(txn_id))

    # ------------------------------------------------------------ internals

    @staticmethod
    def _grantable(entry: _LockEntry, mode: LockMode) -> bool:
        return all(mode.compatible_with(held) for held in entry.holders.values())

    def _enqueue(
        self, txn_id: int, key: Hashable, mode: LockMode, entry: _LockEntry
    ) -> LockStatus:
        blockers = {holder for holder in entry.holders if holder != txn_id}
        blockers.update(
            request.txn_id for request in entry.waiters if request.txn_id != txn_id
        )
        if self._would_deadlock(txn_id, blockers):
            raise DeadlockDetected(
                f"txn {txn_id} waiting on {key!r} would deadlock", txn_id=txn_id
            )
        entry.waiters.append(_LockRequest(txn_id, mode))
        self._waits_for.setdefault(txn_id, set()).update(blockers)
        self._keys_of.setdefault(txn_id, set()).add(key)
        return LockStatus.WAITING

    def _would_deadlock(self, txn_id: int, blockers: Iterable[int]) -> bool:
        """DFS over waits-for edges: does any blocker (transitively) wait on us?"""
        stack = list(blockers)
        seen: set[int] = set()
        while stack:
            current = stack.pop()
            if current == txn_id:
                return True
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._waits_for.get(current, ()))
        return False

    def _promote(self, key: Hashable, entry: _LockEntry) -> list[int]:
        """Grant queued requests in FIFO order while compatibility allows."""
        newly: list[int] = []
        while entry.waiters:
            request = entry.waiters[0]
            held = entry.holders.get(request.txn_id)
            if held is not None:
                # Queued upgrade: grant when sole holder.
                if len(entry.holders) == 1:
                    entry.holders[request.txn_id] = LockMode.EXCLUSIVE
                else:
                    break
            elif self._grantable(entry, request.mode):
                entry.holders[request.txn_id] = request.mode
            else:
                break
            entry.waiters.popleft()
            newly.append(request.txn_id)
            edges = self._waits_for.get(request.txn_id)
            if edges is not None:
                edges.clear()
        return newly
