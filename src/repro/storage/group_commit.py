"""Group commit: one fsync makes a whole batch of transactions durable.

The serial WAL discipline — flush (and optionally fsync) every record as
it is appended — charges each committing transaction the full price of a
disk barrier.  Under concurrent load that price dominates: eight
transactions committing within a millisecond of each other pay for eight
fsyncs when one would have made all of them durable.

Group commit decouples *appending* from *hardening*.  Appenders write
their records into a shared in-memory buffer and return immediately; a
single flusher thread drains the buffer, writes it to the log file in
one call, issues one ``fsync``, and then releases every transaction
whose commit record made it into that batch.  Two knobs bound the added
latency:

* ``max_batch`` — the flusher never waits for more than this many
  records before hardening what it has;
* ``max_hold`` — nor longer than this many seconds after the first
  unhardened record arrived, so a lone transaction on an idle system is
  not parked waiting for company.

Crash semantics: records the flusher has not hardened yet can be lost.
That is safe *because* acknowledgement waits for hardening — a commit
record lost with its batch belongs to a transaction whose client never
saw an ack (see :meth:`GroupCommitLog.wait_durable`), and WAL replay
folds only committed transactions, so a lost batch suffix rolls the
store back to exactly the acknowledged prefix.  DESIGN.md's
"Concurrency & group commit" section walks through the batch-boundary
recovery argument.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import IO, TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class GroupCommitConfig:
    """Tuning for the batch flusher.

    ``max_batch`` caps how many records accumulate before a flush is
    forced; ``max_hold`` caps how long (seconds) the first record of a
    batch may wait for companions.  ``fsync`` controls whether hardening
    means an fsync barrier (power-loss durability) or just a flush to
    the OS (process-crash durability) — matching the WAL's own
    ``fsync`` flag.
    """

    max_batch: int = 64
    max_hold: float = 0.002
    fsync: bool = True

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if self.max_hold < 0:
            raise ValueError("max_hold cannot be negative")


class GroupCommitter:
    """The shared buffer + flusher thread behind a group-commit WAL.

    The owning :class:`~repro.storage.wal.WriteAheadLog` calls
    :meth:`enqueue` with each serialised record line (under its own
    mutex, so lines arrive in LSN order) and :meth:`wait_durable` when a
    caller needs a durability barrier.  The flusher drains the buffer,
    writes and hardens it in one go, then publishes the highest LSN it
    hardened and wakes every waiter at or below it.
    """

    def __init__(
        self,
        config: GroupCommitConfig,
        handle_of: Callable[[], IO[str] | None],
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.config = config
        #: The WAL's *current* file handle, fetched per flush — a
        #: checkpoint swaps the file out from under us, so the committer
        #: must never cache it.
        self._handle_of = handle_of
        self._metrics = metrics
        self._lock = threading.Lock()
        self._has_work = threading.Condition(self._lock)
        self._durable = threading.Condition(self._lock)
        self._pending: list[tuple[int, str]] = []
        self._durable_lsn = 0
        self._closed = False
        self._first_enqueued_at: float | None = None
        self._thread = threading.Thread(
            target=self._run, name="wal-group-commit", daemon=True
        )
        self._thread.start()

    # ---------------------------------------------------------------- API

    @property
    def durable_lsn(self) -> int:
        """Highest LSN hardened so far."""
        with self._lock:
            return self._durable_lsn

    def enqueue(self, lsn: int, line: str) -> None:
        """Buffer one serialised record for the next batch."""
        with self._lock:
            if self._closed:
                raise RuntimeError("group committer is closed")
            if not self._pending:
                self._first_enqueued_at = time.monotonic()
            self._pending.append((lsn, line))
            # Wake the flusher either way: a full batch flushes at once,
            # a partial one starts its hold-timer from the first record
            # rather than the next poll tick.
            self._has_work.notify_all()

    def wait_durable(self, lsn: int, timeout: float = 30.0) -> None:
        """Block until every record at or below ``lsn`` is hardened.

        This is the ack gate of group commit: a server must not release
        a reply whose commit record is still sitting in the buffer.
        Raises ``TimeoutError`` if the flusher cannot harden within
        ``timeout`` seconds (a wedged disk; far beyond any configured
        hold time).
        """
        deadline = time.monotonic() + timeout
        with self._lock:
            while self._durable_lsn < lsn:
                if self._closed:
                    # close() hardens everything first; if the LSN still
                    # is not durable the caller raced a teardown.
                    raise RuntimeError(
                        "group committer closed before "
                        f"LSN {lsn} became durable"
                    )
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"LSN {lsn} not durable after {timeout:.1f}s "
                        f"(durable up to {self._durable_lsn})"
                    )
                self._has_work.notify_all()
                self._durable.wait(min(remaining, 0.05))

    def flush_now(self) -> None:
        """Synchronously harden everything buffered so far."""
        with self._lock:
            target = self._pending[-1][0] if self._pending else 0
        if target:
            self.wait_durable(target)

    def close(self) -> None:
        """Harden the remaining buffer and stop the flusher (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._has_work.notify_all()
        self._thread.join(timeout=10)

    # ------------------------------------------------------------ flusher

    def _run(self) -> None:
        while True:
            with self._lock:
                while not self._pending and not self._closed:
                    self._has_work.wait(0.05)
                if self._closed and not self._pending:
                    self._durable.notify_all()
                    return
                # Hold for companions unless the batch is already full,
                # the hold timer expired, or we are draining on close.
                if (
                    not self._closed
                    and len(self._pending) < self.config.max_batch
                ):
                    first_at = self._first_enqueued_at or time.monotonic()
                    hold_left = self.config.max_hold - (
                        time.monotonic() - first_at
                    )
                    if hold_left > 0:
                        self._has_work.wait(hold_left)
                batch = self._pending
                self._pending = []
                self._first_enqueued_at = None
            if batch:
                self._flush_batch(batch)

    def _flush_batch(self, batch: list[tuple[int, str]]) -> None:
        highest = batch[-1][0]
        handle = self._handle_of()
        if handle is not None:
            try:
                handle.write("".join(line for __, line in batch))
                handle.flush()
                if self.config.fsync:
                    os.fsync(handle.fileno())
            except (OSError, ValueError):
                # The handle died under us (close/checkpoint race or a
                # genuinely failed disk).  Waiters must not hang forever
                # on an unhardenable batch; surface via metrics and
                # release them — the in-memory log still has the
                # records, exactly like an in-memory WAL.
                if self._metrics is not None:
                    self._metrics.inc("wal.batch.flush_errors")
        if self._metrics is not None:
            self._metrics.inc("wal.batch.flushes")
            self._metrics.inc("wal.batch.records", len(batch))
            self._metrics.observe("wal.batch.size", float(len(batch)))
        with self._lock:
            self._durable_lsn = max(self._durable_lsn, highest)
            self._durable.notify_all()
