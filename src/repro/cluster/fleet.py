"""Lifecycle of an in-process shard fleet: boot, kill, restart, audit.

:class:`ClusterFleet` stands up *N* complete deployments — each with its
own store, write-ahead log, recovery path and
:class:`~repro.net.server.PromiseServer` on its own port — and presents
them as the fleet a :class:`~repro.cluster.gateway.ClusterGateway`
routes over.  Every shard serves the **same endpoint name** (clients
address "shop", not "shop-s3"), while manager id pools are unique per
shard (``shop-s3:prm-1``) so two shards can never mint the same promise
id.

Shards are independent failure domains:

* :meth:`kill` drops one shard's listener and closes its WAL — its
  siblings keep serving, exactly the partial-failure mode the gateway's
  compensation logic exists for;
* :meth:`restart` brings the shard back **on the same port**, recovering
  promises, escrow and the reply journal from its own WAL, so a gateway
  retrying a pre-crash sub-message gets the journaled reply rather than
  a double grant;
* each shard's store carries a scoped fault tag (``shard-3``), so the
  crash-point machinery (:mod:`repro.faults`) can kill exactly one shard
  of a single-process fleet;
* :meth:`audit` runs the consistency :class:`~repro.tools.doctor.Doctor`
  over every shard — the per-shard half of proving no cross-shard
  request left an orphaned sub-promise behind.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Sequence

from ..net.server import NET_REPLY_JOURNAL_TABLE, PromiseServer, ThreadedServer
from ..net.transport import NetworkTransport
from ..obs.metrics import wal_observer
from ..obs.trace import SpanRecorder
from ..protocol.retry import RetryPolicy
from ..recovery import ReplyJournal
from ..faults.history import HistoryRecorder
from ..resilience.admission import AdmissionController
from ..resilience.breaker import CircuitBreaker
from ..services.base import ApplicationService
from ..services.deployment import Deployment
from ..storage.group_commit import GroupCommitConfig
from ..tools.doctor import Doctor, Finding
from .gateway import ClusterGateway
from .partition import PartitionMap

#: Provisioner callback: wire services/strategies and seed resources on
#: one freshly built shard deployment.  Called on first boot *and* on
#: restart — use ``deployment.recovered`` to skip re-seeding.
Provisioner = Callable[[Deployment, int, PartitionMap], None]

#: Admission factory: build one shard's admission controller (or return
#: ``None`` for no admission control).  Called per boot and per restart,
#: so a restarted shard starts with a fresh (full) token bucket.
AdmissionFactory = Callable[[int], "AdmissionController | None"]


@dataclass
class Shard:
    """One member of the fleet (live or killed)."""

    index: int
    deployment: Deployment
    server: PromiseServer
    runner: ThreadedServer
    address: tuple[str, int]
    wal_path: str | None

    @property
    def alive(self) -> bool:
        """True while the shard's listener is up."""
        return self.runner is not None and self.runner._thread is not None


class ClusterFleet:
    """Boot and manage N single-shard promise managers as one fleet."""

    def __init__(
        self,
        shards: int,
        endpoint: str = "shop",
        provision: Provisioner | None = None,
        wal_dir: str | None = None,
        fsync: bool = False,
        auto_checkpoint_every: int | None = None,
        host: str = "127.0.0.1",
        ring: PartitionMap | None = None,
        base_port: int | None = None,
        admission: AdmissionFactory | None = None,
        workers: int = 0,
        group_commit: "GroupCommitConfig | None" = None,
        history: "HistoryRecorder | None" = None,
    ) -> None:
        self.endpoint = endpoint
        self.ring = ring or PartitionMap(shards)
        if self.ring.shards != shards:
            raise ValueError(
                f"partition map covers {self.ring.shards} shards, fleet has {shards}"
            )
        self._count = shards
        self._provision = provision
        self._wal_dir = wal_dir
        self._fsync = fsync
        self._auto_checkpoint_every = auto_checkpoint_every
        self._host = host
        self._base_port = base_port
        self._admission = admission
        #: Parallel-dispatch worker count per shard server (0 = serial)
        #: and the shared group-commit tuning for every shard's WAL.
        self._workers = workers
        self._group_commit = group_commit
        #: Optional isolation auditor: every shard's WAL is attached at
        #: boot and re-attached on restart (which prunes the lost tail).
        self._history = history
        self._shards: list[Shard] = []
        self._started = False
        #: Gateways built by :meth:`gateway`, notified on restart so a
        #: recovered shard's breaker is probed immediately.
        self._gateways: list[ClusterGateway] = []

    # ----------------------------------------------------------- lifecycle

    def start(self) -> list[tuple[str, int]]:
        """Boot every shard; returns their bound addresses."""
        if self._started:
            raise RuntimeError("fleet already started")
        self._started = True
        for index in range(self._count):
            port = 0 if self._base_port is None else self._base_port + index
            self._shards.append(self._boot(index, port=port))
        return self.addresses()

    def stop(self) -> None:
        """Stop every live shard and close its deployment."""
        for shard in self._shards:
            if shard.alive:
                shard.runner.stop()
            shard.deployment.close()
        self._shards = []
        self._started = False
        self._gateways = []

    def __enter__(self) -> "ClusterFleet":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def kill(self, index: int) -> None:
        """Take one shard down: stop its listener, close its WAL.

        The rest of the fleet keeps serving; in-flight requests to this
        shard fail with transport errors, which is the point.
        """
        shard = self._shards[index]
        if shard.alive:
            shard.runner.stop()
        shard.deployment.close()

    def restart(self, index: int) -> tuple[str, int]:
        """Bring a killed shard back on its original port, from its WAL.

        Every gateway built by :meth:`gateway` gets the shard's circuit
        breaker forced half-open: the shard is healthy again, and
        leaving the breaker open would fast-fail it for the rest of the
        open window even though requests would now succeed.
        """
        old = self._shards[index]
        if old.alive:
            raise RuntimeError(f"shard {index} is still running")
        replacement = self._boot(index, port=old.address[1])
        self._shards[index] = replacement
        for gateway in self._gateways:
            gateway.reset_breaker(index)
        return replacement.address

    # ------------------------------------------------------------- access

    def addresses(self) -> list[tuple[str, int]]:
        """Bound ``(host, port)`` of every shard, in shard order."""
        return [shard.address for shard in self._shards]

    def shard(self, index: int) -> Shard:
        """One shard's handle (deployment, server, address)."""
        return self._shards[index]

    def __len__(self) -> int:
        return self._count

    def gateway(
        self,
        timeout: float = 5.0,
        retry: RetryPolicy | None = None,
        name: str = "cluster",
        breaker_threshold: int | None = None,
        breaker_reset: float = 5.0,
        pending_limit: int | None = 256,
        pending_max_age: float | None = None,
        tracer: SpanRecorder | None = None,
        pipelined: bool = False,
    ) -> ClusterGateway:
        """A routing gateway over this fleet's (current) addresses.

        Transports target the shards' ports, which survive
        kill/restart, so one gateway spans shard lifetimes.

        ``breaker_threshold`` (consecutive failures) turns on one
        circuit breaker per shard; a dead shard then fails fast at the
        gateway instead of consuming every request's retry schedule.

        ``pipelined`` makes each shard leg a pipelined connection:
        scatter-gather legs from concurrent gateway callers share one
        socket per shard with many requests in flight, instead of
        serialising on per-connection pool checkout.
        """
        transports = [
            NetworkTransport(
                address,
                timeout=timeout,
                retry=retry or RetryPolicy.network(),
                pipelined=pipelined,
            )
            for address in self.addresses()
        ]
        breakers = None
        if breaker_threshold is not None:
            breakers = [
                CircuitBreaker(
                    endpoint=f"{self.endpoint}-s{index}",
                    failure_threshold=breaker_threshold,
                    reset_timeout=breaker_reset,
                )
                for index in range(self._count)
            ]
        gateway = ClusterGateway(
            transports,
            ring=self.ring,
            name=name,
            breakers=breakers,
            pending_limit=pending_limit,
            pending_max_age=pending_max_age,
            tracer=tracer,
        )
        self._gateways.append(gateway)
        return gateway

    def audit(self) -> dict[int, list[Finding]]:
        """Run the consistency doctor on every live shard.

        An empty list per shard means no orphaned sub-promises, no
        escrow drift, no index damage — the fleet-level acceptance check
        for the gateway's compensation logic.
        """
        findings: dict[int, list[Finding]] = {}
        for shard in self._shards:
            if shard.alive:
                findings[shard.index] = Doctor(shard.deployment.manager).check()
        return findings

    def live_promises(self) -> dict[int, int]:
        """Count of active promises per live shard (orphan hunting)."""
        counts: dict[int, int] = {}
        for shard in self._shards:
            if shard.alive:
                counts[shard.index] = len(
                    shard.deployment.manager.active_promises()
                )
        return counts

    # ----------------------------------------------------------- internals

    def _boot(self, index: int, port: int) -> Shard:
        wal_path = self._wal_path(index)
        deployment = Deployment(
            name=self.endpoint,
            manager_name=f"{self.endpoint}-s{index}",
            fault_scope=f"shard-{index}",
            counter_offers=True,
            wal_path=wal_path,
            fsync=self._fsync,
            auto_checkpoint_every=self._auto_checkpoint_every,
            group_commit=self._group_commit,
        )
        if self._provision is not None:
            self._provision(deployment, index, self.ring)
        if deployment.recovered:
            deployment.recover()
        journal = None
        if deployment.store.durable:
            journal = ReplyJournal(
                deployment.store, table=NET_REPLY_JOURNAL_TABLE
            )
        admission = (
            self._admission(index) if self._admission is not None else None
        )
        server = PromiseServer(
            host=self._host, port=port, reply_journal=journal,
            admission=admission,
            metrics=admission.metrics if admission is not None else None,
            workers=self._workers,
        )
        # Each shard's server owns the shard's registry and span ring;
        # WAL appends land there too, so one ``_metrics`` scrape covers
        # the shard's whole stack (server, admission, storage).
        deployment.store.wal.subscribe(wal_observer(server.metrics))
        deployment.store.wal.set_metrics(server.metrics)
        if self._history is not None:
            self._history.attach(index, deployment.store.wal)
        server.attach_store(deployment.store)
        server.register(
            self.endpoint,
            deployment.endpoint.handle,
            keys=deployment.endpoint.dispatch_keys,
        )
        runner = ThreadedServer(server)
        address = runner.start()
        return Shard(
            index=index,
            deployment=deployment,
            server=server,
            runner=runner,
            address=address,
            wal_path=wal_path,
        )

    def _wal_path(self, index: int) -> str | None:
        if self._wal_dir is None:
            return None
        return os.path.join(self._wal_dir, f"shard-{index}.wal")


def provision_products(
    products: int,
    stock_per_product: int,
    services: Sequence[type] | None = None,
) -> Provisioner:
    """A provisioner seeding ``product-i`` pools onto their ring shards.

    Each shard creates (and routes to the pool strategy) only the pools
    the shared :class:`~repro.cluster.partition.PartitionMap` places on
    it, so a gateway built over the same map agrees on every placement
    without any pin exchange.  Pools are not re-seeded when the shard
    recovered them from its WAL.
    """
    from ..services.merchant import MerchantService

    service_types = list(services) if services is not None else [MerchantService]

    def provision(
        deployment: Deployment, index: int, ring: PartitionMap
    ) -> None:
        for service_type in service_types:
            service = service_type()
            assert isinstance(service, ApplicationService)
            deployment.add_service(service)
        owned = [
            f"product-{number}"
            for number in range(products)
            if ring.shard_of(f"product-{number}") == index
        ]
        if owned:
            deployment.use_pool_strategy(*owned)
        if not deployment.recovered:
            with deployment.seed() as txn:
                for pool_id in owned:
                    deployment.resources.create_pool(
                        txn, pool_id, stock_per_product
                    )

    return provision
