"""Routing gateway presenting a shard fleet as one promise manager.

:class:`ClusterGateway` implements the client-side transport contract
(``send(Message) -> Message``), so an unmodified
:class:`~repro.protocol.client.PromiseClient` talks to a whole fleet
exactly as it talks to one manager.  Three request shapes pass through:

* **Single-shard messages** are forwarded verbatim — same message id end
  to end, so the shard's §6 reply cache deduplicates the client's own
  retries with no gateway bookkeeping at all.
* **Cross-shard promise requests** are split by the
  :class:`~repro.cluster.partition.PartitionMap` and scatter-gathered:
  each shard receives a sub-request carrying only its predicates, under
  a *deterministic* sub-message id derived from the client's
  (``mid/s3``) — a gateway retry therefore hits the shard reply caches
  and gets the original grants back instead of double-granting.  Only
  when **every** shard accepts does the gateway mint a composite promise
  id mapping onto the sub-promises; any rejection or unreachable shard
  triggers **compensating release** of the sub-promises that were
  granted, so no torn cross-shard promise survives.
* **Releases and actions** on composite promises are rewritten onto the
  member sub-promises: the action runs on its resource's shard under
  that shard's sub-promise, and release-on-success fans out to the
  remaining shards afterwards.

Compensation for an *unreachable* shard uses redeliver-then-release: the
gateway re-sends the identical sub-message (the shard's reply cache makes
that a read, not a second grant), and releases whatever that reveals was
granted.  A shard that stays down gets the pair queued; call
:meth:`ClusterGateway.flush_pending` once it is back — until the queue
drains, the grant is time-bounded by its duration anyway, the paper's
backstop against every orphaned promise.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Callable, Mapping, Sequence

from ..core.environment import Environment
from ..core.promise import PromiseRequest, PromiseResponse, PromiseResult
from ..net.server import METRICS_ENDPOINT, SPANS_ENDPOINT
from ..obs.metrics import MetricsRegistry, StatsView
from ..obs.trace import ActiveSpan, SpanRecorder
from ..protocol.client import MessageTransport
from ..protocol.errors import ProtocolError, RequestTimeout, TransportFailure
from ..protocol.messages import ActionOutcomePayload, ActionPayload, Message
from ..resilience.breaker import CircuitBreaker, CircuitOpen
from .partition import PartitionError, PartitionMap

#: Action parameter names inspected (in order) to place an action on the
#: shard owning the resource it touches.
ACTION_RESOURCE_PARAMS = (
    "product",
    "pool",
    "pool_id",
    "resource",
    "resource_id",
    "instance",
    "instance_id",
    "collection",
    "collection_id",
)


class GatewayStats(StatsView):
    """Counters describing how requests moved through the gateway.

    A view over ``gateway.*`` registry metrics; the scatter pool means
    several threads bump these concurrently, so every increment goes
    through the registry's lock rather than a bare ``+=``.
    """

    _prefix = "gateway"
    _fields = (
        "requests",
        "forwarded",
        "scattered",
        "composite_grants",
        "composite_rejections",
        "compensations",
        "pending_compensations",
        "releases_routed",
        "actions_routed",
        "shard_errors",
        "breaker_fast_failures",
        "pending_dropped",
        "remaps",
        "breaker_resets",
        "stale_acks_discarded",
    )


@dataclass
class _PendingCompensation:
    """A sub-promise whose releasing shard was unreachable."""

    shard: int
    recipient: str
    sub_message: Message = field(repr=False)
    queued_at: float = 0.0


class ClusterGateway:
    """One logical promise manager over a fleet of shard transports.

    ``transports[i]`` must deliver messages to shard *i* of the fleet the
    ``ring`` describes; every shard serves the same endpoint name(s), so
    message recipients pass through untouched.  The gateway is itself a
    :class:`~repro.protocol.client.MessageTransport` — hand it to a
    :class:`~repro.protocol.client.PromiseClient` and go.

    ``breakers[i]`` (optional) is a per-shard
    :class:`~repro.resilience.CircuitBreaker`: every send to shard *i*
    consults it first and reports its outcome, so a dead shard stops
    consuming retry budget across scatter-gathers — it fails fast as
    unreachable until its breaker half-opens and a probe succeeds.

    ``pending_limit`` / ``pending_max_age`` bound the dead-shard
    compensation queue by depth and seconds queued.  Dropping a queued
    compensation is safe, just not free: the orphaned sub-promise is
    time-bounded by its own duration — the paper's backstop against
    every orphan — so the bound trades a transient over-reservation for
    a gateway whose memory cannot grow without limit while a shard
    stays dead.  Drops are counted in ``stats.pending_dropped``.
    """

    def __init__(
        self,
        transports: Sequence[MessageTransport],
        ring: PartitionMap | None = None,
        name: str = "cluster",
        breakers: Sequence[CircuitBreaker] | None = None,
        pending_limit: int | None = 256,
        pending_max_age: float | None = None,
        clock: Callable[[], float] = time.monotonic,
        metrics: MetricsRegistry | None = None,
        tracer: SpanRecorder | None = None,
    ) -> None:
        if not transports:
            raise PartitionError("a gateway needs at least one shard transport")
        self._transports = list(transports)
        self.ring = ring or PartitionMap(len(transports))
        if self.ring.shards != len(self._transports):
            raise PartitionError(
                f"partition map covers {self.ring.shards} shards but "
                f"{len(self._transports)} transports were supplied"
            )
        self.breakers = list(breakers) if breakers is not None else None
        if self.breakers is not None and len(self.breakers) != len(
            self._transports
        ):
            raise PartitionError(
                f"{len(self.breakers)} breakers for "
                f"{len(self._transports)} shard transports"
            )
        self.name = name
        self.pending_limit = pending_limit
        self.pending_max_age = pending_max_age
        self._clock = clock
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer
        self.stats = GatewayStats(self.metrics)
        self._scrape_counter = 0
        # composite promise id -> {shard: sub promise id}
        self._composites: dict[str, dict[int, str]] = {}
        # plain (single-shard) promise id -> home shard
        self._homes: dict[str, int] = {}
        self._pending: list[_PendingCompensation] = []
        # Per-shard transport generation, bumped by remap(): a reply
        # that arrives bearing an older generation is an ack from a
        # deposed primary and is discarded, never surfaced to callers.
        self._generations = [0] * len(self._transports)
        # Per-shard replica-group epoch stamped onto outgoing requests
        # (None for unreplicated shards: no stamp, no server-side check).
        self._epochs: list[int | None] = [None] * len(self._transports)

    # ------------------------------------------------------------- transport

    def send(self, message: Message) -> Message:
        """Deliver ``message`` to the fleet and synthesise the one reply."""
        self.metrics.inc("gateway.requests")
        if self.tracer is None or message.trace is None:
            return self._send_routed(message, None)
        # The routing decision gets its own span; the message is
        # re-stamped with that span's context so every shard leg below
        # (and the shard servers' dispatch spans beyond them) hangs off
        # this hop in the trace tree.
        with self.tracer.span(
            "gateway.route",
            parent=message.trace,
            endpoint=message.recipient,
            message_id=message.message_id,
        ) as span:
            return self._send_routed(replace(message, trace=span.context), span)

    def _send_routed(
        self, message: Message, span: ActiveSpan | None
    ) -> Message:
        try:
            plan = self._route(message)
        except PartitionError as exc:
            if span is not None:
                span.set_outcome("partition-fault")
            return self._partition_fault(message, exc)
        if len(plan) == 1 and not self._needs_rewrite(message, plan):
            shard = next(iter(plan))
            self.metrics.inc("gateway.forwarded")
            if span is not None:
                span.annotate(mode="forward", shard=shard)
            reply = self._shard_send(shard, message)
            self._note_homes(message, reply, shard)
            return reply
        self.metrics.inc("gateway.scattered")
        if span is not None:
            span.annotate(
                mode="scatter",
                shards=",".join(str(shard) for shard in sorted(plan)),
            )
        expires_at = (
            time.monotonic() + message.deadline
            if message.deadline is not None
            else None
        )
        return self._scatter(message, plan, expires_at)

    def remap(
        self,
        shard: int,
        transport: MessageTransport,
        epoch: int | None = None,
    ) -> MessageTransport:
        """Point ``shard`` at a new primary (replica failover).

        Swaps the transport, bumps the shard's generation so any reply
        still in flight from the *old* primary is discarded at arrival
        (a deposed primary's late ack must not be surfaced as success),
        records the new fencing ``epoch`` for request stamping, and
        force-half-opens the shard's breaker so the promoted replica is
        probed immediately instead of waiting out the open window.
        Returns the displaced transport so the caller can close it.
        """
        if not 0 <= shard < len(self._transports):
            raise PartitionError(f"no shard {shard} to remap")
        old = self._transports[shard]
        self._transports[shard] = transport
        self._generations[shard] += 1
        if epoch is not None:
            self._epochs[shard] = epoch
        self.metrics.inc("gateway.remaps")
        self.reset_breaker(shard)
        return old

    def set_epoch(self, shard: int, epoch: int | None) -> None:
        """Set the fencing epoch stamped on requests to ``shard``."""
        if not 0 <= shard < len(self._transports):
            raise PartitionError(f"no shard {shard}")
        self._epochs[shard] = epoch

    def transport(self, shard: int) -> MessageTransport:
        """The transport currently routing to ``shard``.

        Callers that wrap or fault-inject transports (the chaos nemesis)
        must read through this accessor rather than hold the list they
        passed to the constructor — :meth:`remap` swaps entries in
        place, and a held reference goes stale at the first failover.
        """
        if not 0 <= shard < len(self._transports):
            raise PartitionError(f"no shard {shard}")
        return self._transports[shard]

    def reset_breaker(self, shard: int) -> bool:
        """Force the shard's breaker half-open (shard restarted/promoted).

        ``ClusterFleet.restart`` and replica failover both bring a
        healthy server back behind an address the breaker has already
        written off; without this nudge the gateway keeps fast-failing
        it until the open window lapses.  Half-open (not closed): the
        next request is a probe, so a wrong hint costs one request.
        """
        if self.breakers is None:
            return False
        if self.breakers[shard].force_half_open():
            self.metrics.inc("gateway.breaker_resets")
            return True
        return False

    def close(self) -> None:
        """Close every shard transport that knows how to close."""
        for transport in self._transports:
            closer = getattr(transport, "close", None)
            if closer is not None:
                closer()

    def __enter__(self) -> "ClusterGateway":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -------------------------------------------------------------- routing

    def _route(self, message: Message) -> dict[int, list[tuple[PromiseRequest, list]]]:
        """Which shards the message involves, with per-shard predicates.

        Returns ``{shard: [(original_request, predicates_for_shard), ...]}``;
        environment-only and action-only messages yield entries with empty
        request lists for the shards they touch.
        """
        plan: dict[int, list[tuple[PromiseRequest, list]]] = {}
        for request in message.promise_requests:
            split = self.ring.split_predicates(request.predicates)
            for shard, predicates in split.items():
                plan.setdefault(shard, []).append((request, predicates))
            for release_id in request.releases:
                for shard in self._shards_of_promise(release_id):
                    plan.setdefault(shard, [])
        if message.environment is not None:
            for promise_id in message.environment.promise_ids:
                for shard in self._shards_of_promise(promise_id):
                    plan.setdefault(shard, [])
        if message.action is not None:
            plan.setdefault(self._action_shard(message), [])
        if not plan:
            plan[0] = []
        return plan

    def _shards_of_promise(self, promise_id: str) -> list[int]:
        members = self._composites.get(promise_id)
        if members is not None:
            return sorted(members)
        home = self._homes.get(promise_id)
        if home is not None:
            return [home]
        # A promise this gateway never saw granted (another gateway, or a
        # restart).  Involve every shard; the rewrite step falls back to
        # broadcasting, and shards that do not know the id report
        # ``unknown-promise`` which the merge tolerates for releases.
        return list(range(self.ring.shards))

    def _action_shard(self, message: Message) -> int:
        assert message.action is not None
        for key in ACTION_RESOURCE_PARAMS:
            value = message.action.params.get(key)
            if isinstance(value, str):
                return self.ring.shard_of(value)
        if message.environment is not None:
            for promise_id in message.environment.promise_ids:
                shards = self._shards_of_promise(promise_id)
                if len(shards) == 1:
                    return shards[0]
                members = self._composites.get(promise_id)
                if members:
                    return min(members)
        return 0

    def _needs_rewrite(self, message: Message, plan: Mapping[int, object]) -> bool:
        """Would forwarding verbatim ship a composite id to a shard?"""
        ids: list[str] = []
        if message.environment is not None:
            ids.extend(message.environment.promise_ids)
        for request in message.promise_requests:
            ids.extend(request.releases)
        return any(promise_id in self._composites for promise_id in ids)

    # -------------------------------------------------------------- scatter

    def _scatter(
        self, message: Message, plan: dict, expires_at: float | None = None
    ) -> Message:
        """Cross-shard execution: grants first, then the action, then
        deferred releases — each phase deterministic and idempotent.

        ``expires_at`` is the absolute form of the client's deadline;
        each phase re-stamps the *remaining* budget onto its
        sub-messages, so a shard reached late in a slow scatter sees an
        honest (smaller, possibly spent) allowance.  Compensations are
        deliberately sent without a deadline — they must run even when
        nobody is waiting for the original request any more.
        """
        faults: list[str] = []

        grant_shards = {shard for shard, parts in plan.items() if parts}
        grant_replies = self._broadcast(
            message,
            {
                shard: self._sub_grant_message(
                    message, shard, plan[shard], expires_at
                )
                for shard in sorted(grant_shards)
            },
            faults,
        )
        responses, all_granted = self._merge_grants(
            message, plan, grant_shards, grant_replies, faults
        )

        outcome: ActionOutcomePayload | None = None
        if message.action is not None:
            if all_granted:
                outcome = self._run_action(message, faults, expires_at)
            else:
                faults.append("action-skipped: promise request rejected")
        elif message.environment is not None and all_granted:
            self._scatter_release(message, faults, expires_at)

        return message.reply(
            message_id=f"{message.message_id}/reply",
            promise_responses=tuple(responses),
            action_outcome=outcome,
            faults=tuple(dict.fromkeys(faults)),
        )

    def _broadcast(
        self,
        message: Message,
        sub_messages: Mapping[int, Message],
        faults: list[str],
    ) -> dict[int, Message]:
        """Send sub-messages concurrently; record per-shard failures."""
        if not sub_messages:
            return {}
        replies: dict[int, Message] = {}

        def one(shard: int) -> tuple[int, Message | None, str | None]:
            try:
                return shard, self._shard_send(shard, sub_messages[shard]), None
            except (TransportFailure, RequestTimeout, ProtocolError) as exc:
                return shard, None, f"shard-{shard}: {type(exc).__name__}: {exc}"

        shards = sorted(sub_messages)
        if len(shards) == 1:
            results = [one(shards[0])]
        else:
            with ThreadPoolExecutor(max_workers=len(shards)) as pool:
                results = list(pool.map(one, shards))
        for shard, reply, error in sorted(results):
            if reply is not None:
                replies[shard] = reply
            else:
                self.metrics.inc("gateway.shard_errors")
                faults.append(f"cluster-shard-unreachable: {error}")
        return replies

    def _sub_grant_message(
        self,
        message: Message,
        shard: int,
        parts: list[tuple[PromiseRequest, list]],
        expires_at: float | None = None,
    ) -> Message:
        """The promise-request message shard ``shard`` receives.

        Ids are derived (``mid/s3``, ``rid/s3``) so a redelivery of the
        client's message regenerates byte-identical sub-messages and the
        shard's reply cache answers for them.
        """
        sub_requests = []
        for request, predicates in parts:
            sub_requests.append(
                PromiseRequest(
                    request_id=f"{request.request_id}/s{shard}",
                    client_id=request.client_id,
                    predicates=tuple(predicates),
                    duration=request.duration,
                    releases=self._releases_on_shard(request.releases, shard),
                )
            )
        return Message(
            message_id=f"{message.message_id}/s{shard}",
            sender=message.sender,
            recipient=message.recipient,
            promise_requests=tuple(sub_requests),
            deadline=self._restamp(expires_at),
            trace=message.trace,
        )

    def _releases_on_shard(
        self, releases: Sequence[str], shard: int
    ) -> tuple[str, ...]:
        """Map requested atomic releases onto this shard's sub-promises."""
        mapped: list[str] = []
        for promise_id in releases:
            members = self._composites.get(promise_id)
            if members is not None:
                if shard in members:
                    mapped.append(members[shard])
            elif self._homes.get(promise_id) == shard:
                # Unknown-home ids are deliberately NOT attached: a shard
                # that never granted the promise would reject the whole
                # sub-request over it.  They release post-grant instead.
                mapped.append(promise_id)
        return tuple(mapped)

    def _merge_grants(
        self,
        message: Message,
        plan: dict,
        grant_shards: set[int],
        replies: dict[int, Message],
        faults: list[str],
    ) -> tuple[list[PromiseResponse], bool]:
        """Combine sub-responses per original request; compensate on
        partial success."""
        responses: list[PromiseResponse] = []
        all_granted = True
        for request in message.promise_requests:
            shards = sorted(
                shard
                for shard in grant_shards
                if any(original is request for original, __ in plan[shard])
            )
            subs: dict[int, PromiseResponse] = {}
            rejection: PromiseResponse | None = None
            unreachable = False
            for shard in shards:
                reply = replies.get(shard)
                if reply is None:
                    unreachable = True
                    continue
                faults.extend(
                    fault for fault in reply.faults if fault not in faults
                )
                sub = self._find_response(reply, f"{request.request_id}/s{shard}")
                if sub is None:
                    unreachable = True
                elif sub.accepted:
                    subs[shard] = sub
                elif rejection is None:
                    rejection = sub
            if rejection is None and not unreachable and len(subs) == len(shards):
                responses.append(
                    self._mint_composite(message, request, subs, faults)
                )
                continue
            all_granted = False
            self.metrics.inc("gateway.composite_rejections")
            self._compensate(message, request, subs, shards, faults)
            reason = (
                rejection.reason
                if rejection is not None
                else "cluster: shard unreachable during scatter-gather"
            )
            responses.append(
                PromiseResponse.rejected(
                    request.request_id,
                    f"cluster: {reason}"
                    if not reason.startswith("cluster")
                    else reason,
                    counter=rejection.counter if rejection is not None else None,
                )
            )
        return responses, all_granted

    def _mint_composite(
        self,
        message: Message,
        request: PromiseRequest,
        subs: dict[int, PromiseResponse],
        faults: list[str],
    ) -> PromiseResponse:
        composite_id = f"{self.name}/{request.request_id}"
        members = {
            shard: sub.promise_id
            for shard, sub in subs.items()
            if sub.promise_id is not None
        }
        self._composites[composite_id] = members
        self.metrics.inc("gateway.composite_grants")
        # Swap releases living on the granting shards went out atomically
        # inside the sub-requests; the rest happen only now that the new
        # promise holds, honouring §6: "if these new promises cannot be
        # granted, the existing promises must continue to hold".
        granted_shards = set(members)
        for promise_id in request.releases:
            old = self._composites.get(promise_id)
            if promise_id == composite_id:
                continue
            if old is not None:
                for shard, sub_id in old.items():
                    if shard not in granted_shards:
                        self._release_sub(message, shard, sub_id, faults)
                self._composites.pop(promise_id, None)
                continue
            home = self._homes.get(promise_id)
            if home is None:
                self._release_everywhere(message, promise_id, faults)
            elif home not in granted_shards:
                self._release_sub(message, home, promise_id, faults)
                self._homes.pop(promise_id, None)
            else:
                self._homes.pop(promise_id, None)
        return PromiseResponse(
            promise_id=composite_id,
            result=PromiseResult.ACCEPTED,
            duration=min(sub.duration for sub in subs.values()),
            correlation=request.request_id,
        )

    def _compensate(
        self,
        message: Message,
        request: PromiseRequest,
        granted: dict[int, PromiseResponse],
        shards: list[int],
        faults: list[str],
    ) -> None:
        """Undo a partially granted cross-shard request.

        Reached shards that granted get a release; unreached shards get
        the identical sub-message redelivered (a cache read when it did
        execute) and a release for whatever that uncovers.
        """
        for shard, sub in granted.items():
            if sub.promise_id is not None:
                self._release_sub(message, shard, sub.promise_id, faults)
        for shard in shards:
            if shard in granted:
                continue
            self._redeliver_and_release(message, request, shard, faults)

    def _redeliver_and_release(
        self,
        message: Message,
        request: PromiseRequest,
        shard: int,
        faults: list[str],
    ) -> None:
        sub_message = Message(
            message_id=f"{message.message_id}/s{shard}",
            sender=message.sender,
            recipient=message.recipient,
            promise_requests=(
                PromiseRequest(
                    request_id=f"{request.request_id}/s{shard}",
                    client_id=request.client_id,
                    predicates=request.predicates,
                    duration=request.duration,
                ),
            ),
            trace=message.trace,
        )
        try:
            reply = self._shard_send(shard, sub_message)
        except (TransportFailure, RequestTimeout, ProtocolError):
            self._queue_pending(shard, message.recipient, sub_message)
            faults.append(
                f"cluster-compensation-pending: shard-{shard} unreachable"
            )
            return
        sub = self._find_response(reply, f"{request.request_id}/s{shard}")
        if sub is not None and sub.accepted and sub.promise_id is not None:
            self._release_sub(message, shard, sub.promise_id, faults)

    def _release_sub(
        self, message: Message, shard: int, sub_promise_id: str, faults: list[str]
    ) -> None:
        release = Message(
            message_id=f"{message.message_id}/rel-{shard}-{sub_promise_id}",
            sender=message.sender,
            recipient=message.recipient,
            environment=Environment.of(sub_promise_id, release=[sub_promise_id]),
            trace=message.trace,
        )
        try:
            self._shard_send(shard, release)
            self.metrics.inc("gateway.compensations")
        except (TransportFailure, RequestTimeout, ProtocolError):
            self._queue_pending(shard, message.recipient, release)
            faults.append(
                f"cluster-compensation-pending: shard-{shard} unreachable"
            )

    # ------------------------------------------------------ actions/releases

    def _run_action(
        self, message: Message, faults: list[str], expires_at: float | None = None
    ) -> ActionOutcomePayload | None:
        """Phase two of a combined message: the action, on its shard,
        under a rewritten environment."""
        assert message.action is not None
        shard = self._action_shard(message)
        environment, companions = self._environment_for(
            message.environment, shard
        )
        action_message = Message(
            message_id=f"{message.message_id}/act",
            sender=message.sender,
            recipient=message.recipient,
            environment=environment,
            action=message.action,
            deadline=self._restamp(expires_at),
            trace=message.trace,
        )
        self.metrics.inc("gateway.actions_routed")
        try:
            reply = self._shard_send(shard, action_message)
        except (TransportFailure, RequestTimeout, ProtocolError) as exc:
            self.metrics.inc("gateway.shard_errors")
            faults.append(
                f"cluster-shard-unreachable: shard-{shard}: "
                f"{type(exc).__name__}: {exc}"
            )
            return None
        faults.extend(fault for fault in reply.faults if fault not in faults)
        outcome = reply.action_outcome
        if outcome is None:
            return None
        released = self._rewrite_released(outcome.released, companions)
        if outcome.success:
            # Release-on-success fans out to the released composites'
            # sub-promises on the *other* shards (the action's shard
            # already released its member atomically with the action).
            for composite_id, sub_ids in companions.items():
                for other_shard, sub_id in sub_ids.items():
                    self._release_sub(message, other_shard, sub_id, faults)
                self._composites.pop(composite_id, None)
        return ActionOutcomePayload(
            success=outcome.success,
            value=outcome.value,
            reason=outcome.reason,
            released=released,
            violations=outcome.violations,
        )

    def _environment_for(
        self, environment: Environment | None, shard: int
    ) -> tuple[Environment | None, dict[str, dict[int, str]]]:
        """Rewrite an environment for the action's shard.

        Returns the shard-local environment plus, for each composite with
        release-on-success, the member sub-promises on *other* shards
        that must be released once the action succeeds.
        """
        if environment is None:
            return None, {}
        ids: list[str] = []
        release: list[str] = []
        companions: dict[str, dict[int, str]] = {}
        for promise_id in environment.promise_ids:
            released = bool(environment.release_after.get(promise_id))
            members = self._composites.get(promise_id)
            if members is None:
                ids.append(promise_id)
                if released:
                    release.append(promise_id)
                continue
            local = members.get(shard)
            if local is not None:
                ids.append(local)
                if released:
                    release.append(local)
            if released:
                companions[promise_id] = {
                    other: sub
                    for other, sub in members.items()
                    if other != shard
                }
        if not ids:
            return None, companions
        return Environment.of(*ids, release=release), companions

    def _rewrite_released(
        self,
        released: tuple[str, ...],
        companions: dict[str, dict[int, str]],
    ) -> tuple[str, ...]:
        """Report composite ids (not internal sub ids) back to the client."""
        sub_to_composite = {}
        for composite_id, members in self._composites.items():
            for sub_id in members.values():
                sub_to_composite[sub_id] = composite_id
        for composite_id, members in companions.items():
            for sub_id in members.values():
                sub_to_composite[sub_id] = composite_id
        rewritten = tuple(
            dict.fromkeys(sub_to_composite.get(sub_id, sub_id) for sub_id in released)
        )
        return rewritten

    def _scatter_release(
        self, message: Message, faults: list[str], expires_at: float | None = None
    ) -> None:
        """An environment-only (pure release) message, fanned out."""
        assert message.environment is not None
        per_shard: dict[int, tuple[list[str], list[str]]] = {}
        dropped_composites: list[str] = []
        for promise_id in message.environment.promise_ids:
            released = bool(message.environment.release_after.get(promise_id))
            members = self._composites.get(promise_id)
            if members is not None:
                for shard, sub_id in members.items():
                    ids, rel = per_shard.setdefault(shard, ([], []))
                    ids.append(sub_id)
                    if released:
                        rel.append(sub_id)
                if released:
                    dropped_composites.append(promise_id)
            else:
                for shard in self._shards_of_promise(promise_id):
                    ids, rel = per_shard.setdefault(shard, ([], []))
                    ids.append(promise_id)
                    if released:
                        rel.append(promise_id)
        sub_messages = {
            shard: Message(
                message_id=f"{message.message_id}/s{shard}",
                sender=message.sender,
                recipient=message.recipient,
                environment=Environment.of(*ids, release=rel),
                deadline=self._restamp(expires_at),
                trace=message.trace,
            )
            for shard, (ids, rel) in per_shard.items()
        }
        broadcast = len(per_shard) > 1 and any(
            self._homes.get(pid) is None and pid not in self._composites
            for pid in message.environment.promise_ids
        )
        replies = self._broadcast(message, sub_messages, faults)
        self.metrics.inc("gateway.releases_routed")
        for shard, sub_message in sub_messages.items():
            # A sub-release that never reached its shard must not be
            # forgotten — queue it (deadline stripped: it has to run
            # even though nobody is waiting) for flush_pending to apply
            # once the shard is back.
            __, rel = per_shard[shard]
            if shard not in replies and rel:
                self._queue_pending(
                    shard,
                    message.recipient,
                    replace(sub_message, deadline=None),
                )
        for reply in replies.values():
            for fault in reply.faults:
                # A broadcast probes shards that never saw the promise;
                # their unknown-promise faults are expected noise.
                if broadcast and fault.startswith("unknown-promise"):
                    continue
                if fault not in faults:
                    faults.append(fault)
        for composite_id in dropped_composites:
            self._composites.pop(composite_id, None)

    def _release_everywhere(
        self, message: Message, promise_id: str, faults: list[str]
    ) -> None:
        """Release a plain promise whose home shard is unknown."""
        shards = self._shards_of_promise(promise_id)
        for shard in shards:
            release = Message(
                message_id=f"{message.message_id}/rel-{shard}-{promise_id}",
                sender=message.sender,
                recipient=message.recipient,
                environment=Environment.of(promise_id, release=[promise_id]),
                trace=message.trace,
            )
            try:
                self._shard_send(shard, release)
            except (TransportFailure, RequestTimeout, ProtocolError):
                self._queue_pending(shard, message.recipient, release)

    # ------------------------------------------------------------- pending

    @property
    def pending_compensations(self) -> int:
        """Sub-promise compensations waiting for a shard to come back."""
        return len(self._pending)

    def flush_pending(self) -> int:
        """Retry queued compensations; returns how many cleared.

        Each queued entry is either a release (re-sent as-is — the
        shard's reply journal makes the release idempotent) or a grant
        redelivery whose revealed sub-promise then gets released.
        Entries past ``pending_max_age`` are pruned first.
        """
        self._prune_pending()
        cleared = 0
        remaining: list[_PendingCompensation] = []
        for entry in self._pending:
            try:
                reply = self._shard_send(entry.shard, entry.sub_message)
            except (TransportFailure, RequestTimeout, ProtocolError):
                remaining.append(entry)
                continue
            if entry.sub_message.promise_requests:
                # Grant redelivery: release whatever it reveals.
                done = True
                for response in reply.promise_responses:
                    if response.accepted and response.promise_id is not None:
                        release = Message(
                            message_id=(
                                f"{entry.sub_message.message_id}"
                                f"/rel-{response.promise_id}"
                            ),
                            sender=entry.sub_message.sender,
                            recipient=entry.recipient,
                            environment=Environment.of(
                                response.promise_id,
                                release=[response.promise_id],
                            ),
                        )
                        try:
                            self._shard_send(entry.shard, release)
                            self.metrics.inc("gateway.compensations")
                        except (
                            TransportFailure,
                            RequestTimeout,
                            ProtocolError,
                        ):
                            done = False
                            remaining.append(
                                _PendingCompensation(
                                    entry.shard,
                                    entry.recipient,
                                    release,
                                    queued_at=self._clock(),
                                )
                            )
                if done:
                    cleared += 1
            else:
                self.metrics.inc("gateway.compensations")
                cleared += 1
        self._pending = remaining
        return cleared

    def _queue_pending(
        self, shard: int, recipient: str, sub_message: Message
    ) -> None:
        self.metrics.inc("gateway.pending_compensations")
        self._pending.append(
            _PendingCompensation(
                shard, recipient, sub_message, queued_at=self._clock()
            )
        )
        self._prune_pending()

    def _prune_pending(self) -> None:
        """Enforce the age and depth bounds on the dead-shard queue."""
        if self.pending_max_age is not None:
            cutoff = self._clock() - self.pending_max_age
            kept = [e for e in self._pending if e.queued_at >= cutoff]
            self.metrics.inc(
                "gateway.pending_dropped", len(self._pending) - len(kept)
            )
            self._pending = kept
        if (
            self.pending_limit is not None
            and len(self._pending) > self.pending_limit
        ):
            excess = len(self._pending) - self.pending_limit
            # Oldest first: they are the closest to their promise-duration
            # backstop expiring on the shard anyway.
            self.metrics.inc("gateway.pending_dropped", excess)
            self._pending = self._pending[excess:]

    # ------------------------------------------------------- introspection

    def metrics_snapshot(self) -> dict[str, object]:
        """Live fleet introspection: own registry plus per-shard scrapes.

        Sends a ``_metrics`` probe straight down each shard transport —
        deliberately bypassing the circuit breakers, because the whole
        point of a scrape is to see into a shard the breaker has written
        off.  A shard that is unreachable (or predates the endpoint)
        appears as ``None`` rather than failing the snapshot.
        """
        return {
            "gateway": self.metrics.snapshot(),
            "shards": [
                self._scrape(shard, METRICS_ENDPOINT)
                for shard in range(len(self._transports))
            ],
        }

    def spans_snapshot(self, trace_id: str | None = None) -> list[dict]:
        """Collect span dicts fleet-wide: local recorder + shard scrapes.

        The union of the gateway's own spans (client attempts route
        through here too when the recorder is shared) and each shard's
        ``_spans`` ring.  Duplicate span ids across sources are expected
        and left to the renderer to fold.
        """
        collected: list[dict] = []
        if self.tracer is not None:
            collected.extend(
                span.to_dict() for span in self.tracer.spans(trace_id)
            )
        params: dict[str, object] = (
            {"trace_id": trace_id} if trace_id is not None else {}
        )
        for shard in range(len(self._transports)):
            value = self._scrape(shard, SPANS_ENDPOINT, params)
            if isinstance(value, list):
                collected.extend(
                    span for span in value if isinstance(span, dict)
                )
        return collected

    def _scrape(
        self,
        shard: int,
        endpoint: str,
        params: Mapping[str, object] | None = None,
    ) -> object | None:
        """One observability probe to one shard; ``None`` on any failure."""
        self._scrape_counter += 1
        probe = Message(
            message_id=f"{self.name}:scrape:{self._scrape_counter}",
            sender=self.name,
            recipient=endpoint,
            action=ActionPayload(
                service="_obs", operation="scrape", params=dict(params or {})
            ),
        )
        try:
            reply = self._transports[shard].send(probe)
        except Exception:  # noqa: BLE001 - a scrape must never raise
            return None
        outcome = reply.action_outcome
        if outcome is None or not outcome.success:
            return None
        return outcome.value

    # ------------------------------------------------------------ internals

    def _shard_send(self, shard: int, message: Message) -> Message:
        """Send to one shard through its circuit breaker (if any).

        Captures the shard's transport generation before sending: if a
        failover remapped the shard while this request was in flight,
        the reply came from the deposed primary and is discarded (and
        its outcome is not recorded against the *new* primary's
        breaker).  Requests to replicated shards are stamped with the
        group's current epoch so a deposed server rejects them itself.

        Traced messages get one ``gateway.shard_send`` span per leg —
        the unit the trace tree shows a scatter-gather fanning out into
        — and the wire message carries the leg span's context, so the
        shard server's dispatch span becomes its child.
        """
        generation = self._generations[shard]
        epoch = self._epochs[shard]
        if epoch is not None and message.epoch is None:
            message = replace(message, epoch=epoch)
        if self.tracer is None or message.trace is None:
            return self._guarded_send(shard, generation, message)
        with self.tracer.span(
            "gateway.shard_send",
            parent=message.trace,
            shard=shard,
            epoch=epoch,
            deadline_remaining=message.deadline,
        ) as span:
            reply = self._guarded_send(
                shard, generation, replace(message, trace=span.context)
            )
            if reply.faults:
                span.set_outcome("fault")
            return reply

    def _guarded_send(
        self, shard: int, generation: int, message: Message
    ) -> Message:
        breaker = self.breakers[shard] if self.breakers else None
        if breaker is None:
            return self._fence_reply(
                shard, generation, self._transports[shard].send(message)
            )
        if not breaker.allow():
            self.metrics.inc("gateway.breaker_fast_failures")
            raise CircuitOpen(breaker.endpoint)
        try:
            reply = self._transports[shard].send(message)
        except TransportFailure:
            if self._generations[shard] == generation:
                breaker.record_failure()
            raise
        if self._generations[shard] == generation:
            breaker.record_success()
        return self._fence_reply(shard, generation, reply)

    def _fence_reply(
        self, shard: int, generation: int, reply: Message
    ) -> Message:
        if self._generations[shard] != generation:
            self.metrics.inc("gateway.stale_acks_discarded")
            raise TransportFailure(
                f"shard-{shard}: reply from deposed primary discarded "
                "(transport generation fence)"
            )
        return reply

    @staticmethod
    def _restamp(expires_at: float | None) -> float | None:
        """The remaining wire budget for a sub-message sent right now."""
        return None if expires_at is None else expires_at - time.monotonic()

    def _note_homes(self, message: Message, reply: Message, shard: int) -> None:
        """Track which shard granted each plain promise id (fast path)."""
        for response in reply.promise_responses:
            if response.accepted and response.promise_id is not None:
                self._homes[response.promise_id] = shard
        if reply.action_outcome is not None:
            for promise_id in reply.action_outcome.released:
                self._homes.pop(promise_id, None)
        if message.environment is not None and message.action is None:
            for promise_id in message.environment.releases():
                self._homes.pop(promise_id, None)

    @staticmethod
    def _find_response(
        reply: Message, correlation: str
    ) -> PromiseResponse | None:
        for response in reply.promise_responses:
            if response.correlation == correlation:
                return response
        return None

    def _partition_fault(self, message: Message, exc: PartitionError) -> Message:
        responses = tuple(
            PromiseResponse.rejected(request.request_id, str(exc))
            for request in message.promise_requests
        )
        return message.reply(
            message_id=f"{message.message_id}/reply",
            promise_responses=responses,
            faults=(f"cluster-partition: {exc}",),
        )
