"""repro.cluster — a sharded promise-manager fleet behind one gateway.

The paper's promise managers are single services; this package is the
scale-out step the position paper gestures at ("promise managers could
be provided by trusted third parties", §2): partition the resource space
over N independent managers and put a routing gateway in front, so
clients keep speaking the unchanged §6 protocol to what looks like one
manager.

* :mod:`~repro.cluster.partition` — the deterministic resource → shard
  map (consistent hashing + explicit co-location pins) every party
  shares.
* :mod:`~repro.cluster.gateway` — :class:`ClusterGateway`, a drop-in
  message transport that forwards single-shard traffic verbatim and
  scatter-gathers cross-shard promise requests with compensating
  release, so no torn cross-shard promise survives a rejection, a
  timeout or a shard crash.
* :mod:`~repro.cluster.fleet` — :class:`ClusterFleet`, booting the
  shards (own store, WAL, recovery, TCP port each) with kill/restart of
  individual members and a fleet-wide consistency audit.
"""

from .fleet import ClusterFleet, Shard, provision_products
from .gateway import ClusterGateway, GatewayStats
from .partition import CrossShardPredicate, PartitionError, PartitionMap

__all__ = [
    "ClusterFleet",
    "ClusterGateway",
    "CrossShardPredicate",
    "GatewayStats",
    "PartitionError",
    "PartitionMap",
    "Shard",
    "provision_products",
]
