"""Deterministic resource → shard placement for a promise-manager fleet.

The paper frames promise managers as services "provided by trusted third
parties" that scale independently of the resource managers they guard;
the first scaling lever is to partition the resource space across N
independent managers so each one's isolation checks stay cheap (the
per-request work of a manager grows with the number of live promises it
holds).  This module supplies the placement function every party — the
fleet booting shards, the gateway routing requests, the CLI seeding
pools — must agree on:

* **Consistent hashing** over resource ids: each shard owns many virtual
  points on a hash ring, a resource belongs to the first point clockwise
  of its own hash.  Growing the fleet from N to N+1 shards moves only
  ~1/(N+1) of the resources, so a resharding migration touches the
  minimum of state.  The hash is :mod:`hashlib` (not Python's ``hash``),
  so every process — gateway, shards, CLI — computes identical
  placements.
* **Explicit pinning** for named resources that must be co-located: a
  hotel's rooms should live on one shard so a "5th floor room with a
  view" promise never spans shards.  Pins always win over the ring.

Predicates route at conjunct granularity: a top-level ``And`` may span
shards (granting each conjunct on its own shard, all-or-nothing via the
gateway's scatter-gather, is exactly granting the conjunction), whereas
an ``Or`` whose branches live on different shards has no such
decomposition and is rejected with a pointer at pinning.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Mapping, Sequence

from ..core.predicates import And, Predicate

#: Virtual points each shard owns on the ring.  Enough that placement is
#: within a few percent of uniform for realistic resource counts, small
#: enough that building a map is instant.
DEFAULT_REPLICAS = 64


class PartitionError(ValueError):
    """A resource or predicate cannot be placed on a single shard."""


class CrossShardPredicate(PartitionError):
    """An indivisible predicate's resources land on different shards.

    Raised for ``Or`` (and ``Not``) predicates spanning shards — the
    fix is to pin the resources involved onto one shard.
    """


def _point(token: str) -> int:
    """A stable 64-bit ring position for ``token``."""
    digest = hashlib.sha1(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class PartitionMap:
    """The resource → shard map a cluster's parties share.

    Shards are numbered ``0 .. shards-1``.  Equality of maps is what the
    correctness of the whole cluster rests on: two processes holding a
    :class:`PartitionMap` built with the same ``shards``, ``replicas``
    and pins place every resource identically.
    """

    def __init__(
        self,
        shards: int,
        replicas: int = DEFAULT_REPLICAS,
        pins: Mapping[str, int] | None = None,
    ) -> None:
        if shards < 1:
            raise PartitionError("a cluster needs at least one shard")
        if replicas < 1:
            raise PartitionError("need at least one ring point per shard")
        self.shards = shards
        self.replicas = replicas
        self._pins: dict[str, int] = {}
        self._ring: list[tuple[int, int]] = sorted(
            (_point(f"shard-{shard}#{replica}"), shard)
            for shard in range(shards)
            for replica in range(replicas)
        )
        self._points = [point for point, __ in self._ring]
        for resource_id, shard in (pins or {}).items():
            self.pin(resource_id, shard)

    # ------------------------------------------------------------ placement

    def pin(self, resource_id: str, shard: int) -> None:
        """Force ``resource_id`` onto ``shard`` regardless of the ring."""
        if not 0 <= shard < self.shards:
            raise PartitionError(
                f"cannot pin {resource_id!r} to shard {shard}: "
                f"cluster has shards 0..{self.shards - 1}"
            )
        self._pins[resource_id] = shard

    def pin_together(self, resource_ids: Iterable[str], shard: int | None = None) -> int:
        """Co-locate a group of named resources on one shard.

        With ``shard`` omitted, the group lands wherever the ring puts
        its first member — deterministic, and pins survive later fleet
        growth (the pin, not the ring, then owns the placement).
        """
        ids = list(resource_ids)
        if not ids:
            raise PartitionError("nothing to pin")
        target = self.shard_of(ids[0]) if shard is None else shard
        for resource_id in ids:
            self.pin(resource_id, target)
        return target

    @property
    def pins(self) -> dict[str, int]:
        """A copy of the explicit placements."""
        return dict(self._pins)

    def shard_of(self, resource_id: str) -> int:
        """The shard owning ``resource_id`` (pin first, then the ring)."""
        pinned = self._pins.get(resource_id)
        if pinned is not None:
            return pinned
        index = bisect.bisect_right(self._points, _point(resource_id))
        if index == len(self._ring):
            index = 0
        return self._ring[index][1]

    def placement(self, resource_ids: Iterable[str]) -> dict[int, set[str]]:
        """Group resources by owning shard."""
        grouped: dict[int, set[str]] = {}
        for resource_id in resource_ids:
            grouped.setdefault(self.shard_of(resource_id), set()).add(resource_id)
        return grouped

    # ----------------------------------------------------------- predicates

    def shard_of_predicate(self, predicate: Predicate) -> int:
        """The single shard able to check ``predicate``.

        Raises :class:`CrossShardPredicate` when its resources span
        shards — callers split top-level conjunctions first (see
        :meth:`split_predicates`).
        """
        resources = sorted(predicate.resources())
        if not resources:
            # A predicate over no resources (degenerate) checks anywhere;
            # put it on shard 0 so placement stays deterministic.
            return 0
        shards = {self.shard_of(resource) for resource in resources}
        if len(shards) > 1:
            raise CrossShardPredicate(
                f"predicate {predicate.describe()} spans shards "
                f"{sorted(shards)}; pin {resources} together to co-locate"
            )
        return next(iter(shards))

    def split_predicates(
        self, predicates: Sequence[Predicate]
    ) -> dict[int, list[Predicate]]:
        """Partition a promise request's predicates by owning shard.

        Top-level conjunctions are flattened first: granting each
        conjunct on its own shard — atomically, via scatter-gather with
        compensation — grants the conjunction.  Any remaining predicate
        must be single-shard or :class:`CrossShardPredicate` is raised.
        """
        split: dict[int, list[Predicate]] = {}
        for predicate in predicates:
            for part in self._flatten(predicate):
                split.setdefault(self.shard_of_predicate(part), []).append(part)
        return split

    @staticmethod
    def _flatten(predicate: Predicate) -> list[Predicate]:
        if isinstance(predicate, And):
            flat: list[Predicate] = []
            for child in predicate.children:
                flat.extend(PartitionMap._flatten(child))
            return flat
        return [predicate]
