"""Per-endpoint circuit breakers (closed → open → half-open).

A dead or slow shard is worse than useless: every request routed at it
consumes a timeout and a retry schedule that healthy shards could have
used.  The breaker watches the outcomes of requests to one endpoint and,
once failures dominate, *opens* — subsequent requests fail immediately
with :class:`CircuitOpen` instead of burning the caller's retry budget.
After ``reset_timeout`` seconds the breaker admits a bounded number of
**probe** requests (half-open); one success closes it again, one failure
re-opens it and restarts the clock.

Two trip conditions, either sufficient:

* ``failure_threshold`` consecutive failures (a hard-down endpoint trips
  fast, before the window fills);
* failure *rate* ≥ ``failure_rate`` over the last ``window`` outcomes,
  once at least ``min_calls`` have been observed (a flapping or slow
  endpoint trips even when successes are interleaved).

:class:`CircuitOpen` subclasses
:class:`~repro.protocol.errors.ProtocolError` — deliberately *not*
:class:`~repro.protocol.errors.TransportFailure` — so retry policies do
not redeliver through an open breaker, and cluster gateways treat it
exactly like an unreachable shard.
"""

from __future__ import annotations

import enum
import time
from collections import deque
from typing import Callable

from ..protocol.errors import ProtocolError


class CircuitOpen(ProtocolError):
    """Fast failure: the endpoint's breaker is open, nothing was sent."""

    def __init__(self, endpoint: str) -> None:
        super().__init__(f"circuit open for {endpoint}")
        self.endpoint = endpoint


class BreakerState(enum.Enum):
    """Where the breaker's state machine currently sits."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Failure-rate breaker for one endpoint (one shard, one address)."""

    def __init__(
        self,
        endpoint: str = "endpoint",
        failure_threshold: int = 5,
        failure_rate: float = 0.5,
        window: int = 20,
        min_calls: int = 5,
        reset_timeout: float = 5.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if not 0.0 < failure_rate <= 1.0:
            raise ValueError("failure_rate must be in (0, 1]")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be at least 1")
        self.endpoint = endpoint
        self.failure_threshold = failure_threshold
        self.failure_rate = failure_rate
        self.window = window
        self.min_calls = min_calls
        self.reset_timeout = reset_timeout
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._state = BreakerState.CLOSED
        self._outcomes: deque[bool] = deque(maxlen=window)
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self.trips = 0
        self.fast_failures = 0
        self.probes = 0

    # -------------------------------------------------------------- queries

    @property
    def state(self) -> BreakerState:
        """Current state, after applying any due open→half-open move."""
        self._maybe_half_open()
        return self._state

    def allow(self) -> bool:
        """May a request go out right now?

        In half-open state this *admits a probe* — the caller must
        report the outcome via :meth:`record_success` /
        :meth:`record_failure`, which is what moves the machine on.
        """
        self._maybe_half_open()
        if self._state is BreakerState.CLOSED:
            return True
        if self._state is BreakerState.HALF_OPEN:
            if self._probes_in_flight < self.half_open_probes:
                self._probes_in_flight += 1
                self.probes += 1
                return True
            self.fast_failures += 1
            return False
        self.fast_failures += 1
        return False

    def guard(self) -> None:
        """Raise :class:`CircuitOpen` unless :meth:`allow` passes."""
        if not self.allow():
            raise CircuitOpen(self.endpoint)

    def force_half_open(self) -> bool:
        """Skip the open window: the operator knows the endpoint is back.

        Called when a shard is restarted or a replica promoted — waiting
        out ``reset_timeout`` would fast-fail traffic at a healthy
        endpoint.  Moves ``OPEN → HALF_OPEN`` immediately so the next
        request is a probe (one success closes the breaker, one failure
        re-opens it — a wrong hint costs a single request, not a lie
        that the endpoint is healthy).  No-op in other states; returns
        True when a transition happened.
        """
        if self._state is not BreakerState.OPEN:
            return False
        self._state = BreakerState.HALF_OPEN
        self._probes_in_flight = 0
        return True

    # ------------------------------------------------------------- outcomes

    def record_success(self) -> None:
        """One request to the endpoint completed."""
        if self._state is BreakerState.HALF_OPEN:
            # The probe came back: the endpoint is alive again.
            self._close()
            return
        self._consecutive_failures = 0
        self._outcomes.append(True)

    def record_failure(self) -> None:
        """One request to the endpoint failed (timeout, reset, refusal)."""
        if self._state is BreakerState.HALF_OPEN:
            self._trip()
            return
        self._consecutive_failures += 1
        self._outcomes.append(False)
        if self._state is BreakerState.CLOSED and self._should_trip():
            self._trip()

    # ------------------------------------------------------------ internals

    def _should_trip(self) -> bool:
        if self._consecutive_failures >= self.failure_threshold:
            return True
        if len(self._outcomes) < self.min_calls:
            return False
        failures = sum(1 for ok in self._outcomes if not ok)
        return failures / len(self._outcomes) >= self.failure_rate

    def _trip(self) -> None:
        self._state = BreakerState.OPEN
        self._opened_at = self._clock()
        self._probes_in_flight = 0
        self.trips += 1

    def _close(self) -> None:
        self._state = BreakerState.CLOSED
        self._outcomes.clear()
        self._consecutive_failures = 0
        self._probes_in_flight = 0

    def _maybe_half_open(self) -> None:
        if (
            self._state is BreakerState.OPEN
            and self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._state = BreakerState.HALF_OPEN
            self._probes_in_flight = 0
