"""Partial-failure and overload protection for the promise fleet.

The paper's promise managers let autonomous services make safe progress
without holding locks across partners (§5–6); this package defends that
progress against the failure modes that dominate at scale: overload,
slow or dead shards, and cascading retries.  Three mechanisms compose:

* :mod:`~repro.resilience.deadline` — end-to-end deadlines carried in
  the SOAP header as a remaining budget, so servers can cheaply reject
  work nobody is waiting for and retries never sleep past it;
* :mod:`~repro.resilience.admission` — server-side admission control
  (bounded queue + token bucket) that sheds promise *checks* before
  *releases*, so degradation never orphans a reservation;
* :mod:`~repro.resilience.breaker` — per-endpoint circuit breakers so
  one dead shard stops consuming the fleet's retry budget.
"""

from .admission import (
    KIND_ACTION,
    KIND_CHECK,
    KIND_RELEASE,
    AdmissionController,
    AdmissionStats,
    classify,
)
from .breaker import BreakerState, CircuitBreaker, CircuitOpen
from .deadline import Deadline, remaining_budget

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "BreakerState",
    "CircuitBreaker",
    "CircuitOpen",
    "Deadline",
    "KIND_ACTION",
    "KIND_CHECK",
    "KIND_RELEASE",
    "classify",
    "remaining_budget",
]
