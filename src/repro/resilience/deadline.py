"""End-to-end request deadlines.

A service-based application's partial failures are bounded in *time*
before they are bounded in anything else: the paper's promises carry
durations precisely so that no reservation outlives its usefulness, and
the same discipline applies to the requests that establish them.  A
:class:`Deadline` is the client-side half of that contract — an absolute
point on the monotonic clock by which the whole request (every retry,
every scatter-gather hop) must have completed.

Deadlines travel on the wire as a *remaining budget* in seconds (the
``<deadline>`` element of the SOAP header, mirroring gRPC's relative
``grpc-timeout``): absolute clocks do not transfer between machines, but
"you have 1.3 seconds left" does.  Each hop re-stamps the remaining
budget before forwarding, and a server that receives a non-positive
budget rejects the request cheaply instead of doing work nobody is
waiting for.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable


@dataclass(frozen=True)
class Deadline:
    """An absolute monotonic-clock deadline for one logical request.

    ``clock`` is injectable so tests can drive time by hand; production
    code uses :func:`time.monotonic`.
    """

    expires_at: float
    clock: Callable[[], float] = field(default=time.monotonic, compare=False)

    @classmethod
    def after(
        cls, budget: float, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        """The deadline ``budget`` seconds from now."""
        return cls(expires_at=clock() + budget, clock=clock)

    def remaining(self) -> float:
        """Seconds left before expiry; negative once past it."""
        return self.expires_at - self.clock()

    @property
    def expired(self) -> bool:
        """True once the deadline has passed."""
        return self.remaining() <= 0

    def budget(self) -> float:
        """The remaining budget clamped at zero (wire-stamp form)."""
        return max(0.0, self.remaining())

    def clamp(self, seconds: float) -> float:
        """``seconds`` shortened so it never runs past the deadline."""
        return min(seconds, self.budget())


def remaining_budget(deadline: object | None) -> float | None:
    """Seconds left on ``deadline``, whatever shape the caller handed us.

    Accepts ``None`` (no deadline), a :class:`Deadline`, anything else
    with a callable ``remaining()``, or a bare float taken as an absolute
    :func:`time.monotonic` timestamp.  Layers that must not import this
    package (to stay dependency-light) duck-type against the same
    shapes; this helper is the one canonical reading of them.
    """
    if deadline is None:
        return None
    remaining = getattr(deadline, "remaining", None)
    if callable(remaining):
        return remaining()
    return float(deadline) - time.monotonic()  # type: ignore[arg-type]
