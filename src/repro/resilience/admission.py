"""Server-side admission control: bounded queue, token bucket, shedding.

A promise manager at saturation has exactly one good move: say "not
now" *cheaply*, before the expensive isolation check runs, to the
requests whose loss hurts least.  This module implements that policy as
an :class:`AdmissionController` the networked server consults on every
inbound message:

* a **token bucket** (``rate`` tokens/second, ``burst`` capacity) caps
  sustained throughput, absorbing short bursts without letting a retry
  storm starve the fleet;
* a **bounded queue** (``max_queue`` admitted-but-unfinished requests)
  keeps latency from growing without limit when the bucket alone is not
  enough;
* **shed priority** orders the pain: promise *checks* (new
  promise-requests) are shed first, application *actions* next, and
  *releases* last — a shed check merely delays a reservation, but a
  shed release strands one, so graceful degradation must never orphan
  what it already granted.  Releases bypass the token bucket entirely
  and are refused only at a hard queue bound twice the soft one.

Checks shed before actions by reserving the bucket's floor: a check
needs the bucket to stay above ``reserve`` tokens after paying, an
action may drain it to zero.  The shed decision surfaces to clients as
a ``503``-style ``overloaded`` protocol fault, which the retry policy
treats as retryable-with-backoff.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator

from ..obs.metrics import MetricsRegistry, StatsView

#: Request kinds, in shed order (first shed first).
KIND_CHECK = "check"
KIND_ACTION = "action"
KIND_RELEASE = "release"


def classify(message: object) -> str:
    """Which admission class a protocol message belongs to.

    Duck-typed against :class:`~repro.protocol.messages.Message` so this
    module needs no protocol import: a message carrying new
    promise-requests is a *check* (shed first), a message carrying an
    action is an *action*, and an environment-only message is a
    *release* (shed last).  A combined check+action message counts as a
    check — its action cannot run if the check is shed anyway.
    """
    if getattr(message, "promise_requests", ()):
        return KIND_CHECK
    if getattr(message, "action", None) is not None:
        return KIND_ACTION
    return KIND_RELEASE


class AdmissionStats(StatsView):
    """What the controller admitted and what it turned away.

    A registry view over ``admission.*`` metrics; the shed decision runs
    on the server's event loop while scrapes read from other threads, so
    counting goes through the registry's lock.
    """

    _prefix = "admission"
    _fields = ("admitted", "shed_checks", "shed_actions", "shed_releases")

    @property
    def shed(self) -> int:
        """Total requests shed across every class."""
        return self.shed_checks + self.shed_actions + self.shed_releases


class AdmissionController:
    """Token-bucket rate limiting plus a bounded admission queue.

    ``rate`` is tokens per second (``None`` disables rate limiting),
    ``burst`` the bucket capacity (default: one second's worth of rate,
    at least 1).  ``reserve`` is the floor checks may not drain the
    bucket below, defaulting to a quarter of the burst — the band in
    which checks are already shed but actions still pass.  ``clock`` is
    injectable for deterministic tests.
    """

    def __init__(
        self,
        max_queue: int = 64,
        rate: float | None = None,
        burst: float | None = None,
        reserve: float | None = None,
        clock: Callable[[], float] = time.monotonic,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_queue < 1:
            raise ValueError("max_queue must be at least 1")
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive (or None to disable)")
        self.max_queue = max_queue
        self.rate = rate
        self.burst = burst if burst is not None else max(1.0, rate or 0.0)
        self.reserve = (
            reserve if reserve is not None else self.burst / 4.0
        )
        self._clock = clock
        self._tokens = self.burst
        self._refilled_at = clock()
        self._in_flight = 0
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.stats = AdmissionStats(self.metrics)

    # ------------------------------------------------------------ decisions

    def admit(self, kind: str) -> bool:
        """Admit or shed one request of class ``kind``.

        Admitted requests must be bracketed with :meth:`slot` so the
        queue depth stays honest.
        """
        if kind == KIND_RELEASE:
            # Releases return capacity; shedding one orphans a granted
            # reservation until its duration expires.  Only the hard
            # bound (a server drowning outright) refuses them, and they
            # never pay tokens.
            if self._in_flight >= 2 * self.max_queue:
                self.metrics.inc("admission.shed_releases")
                return False
            self.metrics.inc("admission.admitted")
            return True
        if self._in_flight >= self.max_queue:
            self._shed(kind)
            return False
        floor = self.reserve if kind == KIND_CHECK else 0.0
        if not self._take_token(floor):
            self._shed(kind)
            return False
        self.metrics.inc("admission.admitted")
        return True

    @contextmanager
    def slot(self) -> Iterator[None]:
        """Occupy one queue slot for the duration of the execution."""
        self._in_flight += 1
        try:
            yield
        finally:
            self._in_flight -= 1

    @property
    def in_flight(self) -> int:
        """Requests admitted and not yet finished."""
        return self._in_flight

    def tokens(self) -> float:
        """Current bucket level (after refill) — for tests and stats."""
        self._refill()
        return self._tokens

    # ------------------------------------------------------------ internals

    def _shed(self, kind: str) -> None:
        if kind == KIND_CHECK:
            self.metrics.inc("admission.shed_checks")
        else:
            self.metrics.inc("admission.shed_actions")

    def _take_token(self, floor: float) -> bool:
        if self.rate is None:
            return True
        self._refill()
        if self._tokens - 1.0 >= floor - 1e-9:
            self._tokens -= 1.0
            return True
        return False

    def _refill(self) -> None:
        assert self.rate is not None
        now = self._clock()
        elapsed = now - self._refilled_at
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._refilled_at = now
