"""Deterministic simulation substrate for the concurrency experiments.

A generator-based discrete-event simulator sharing the promise managers'
logical clock, seeded random streams, workload generators for the paper's
merchant/booking scenarios, and metric collection.
"""

from .metrics import Metrics, SeriesSummary, percentile
from .random import RandomStream, StreamFactory
from .simulator import EventHandle, Process, Simulator
from .workload import (
    BookingDemand,
    OrderJob,
    WorkloadSpec,
    generate_bookings,
    generate_orders,
)

__all__ = [
    "BookingDemand",
    "EventHandle",
    "Metrics",
    "OrderJob",
    "Process",
    "RandomStream",
    "SeriesSummary",
    "Simulator",
    "StreamFactory",
    "WorkloadSpec",
    "generate_bookings",
    "generate_orders",
    "percentile",
]
