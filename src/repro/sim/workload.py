"""Workload generation for the concurrency experiments.

The canonical workload is the paper's merchant scenario (§1, §7): a
population of order-handling clients, each of which *checks* resource
availability, then spends a number of ticks organising payment and
shipping, then *acts* (purchases).  The window between check and act is
where concurrent activity bites — the isolation regimes under test differ
exactly in what they guarantee across that window.

``tightness`` is the contention knob: the ratio of total expected demand
to available stock.  Below 1.0 everybody can win; above 1.0 someone must
lose, and the question the experiments answer is *when* the losers find
out and how much work they waste.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .random import StreamFactory


@dataclass(frozen=True)
class OrderJob:
    """One client's order: arrival time, demands, and work duration."""

    client_id: str
    arrival: int
    demands: tuple[tuple[str, int], ...]
    work_ticks: int

    @property
    def total_quantity(self) -> int:
        """Units demanded across all products."""
        return sum(quantity for __, quantity in self.demands)


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one experiment run."""

    clients: int = 16
    products: int = 1
    stock_per_product: int = 100
    quantity_low: int = 1
    quantity_high: int = 5
    products_per_order: int = 1
    mean_interarrival: float = 2.0
    work_low: int = 5
    work_high: int = 15
    seed: int = 0

    def __post_init__(self) -> None:
        if self.products_per_order > self.products:
            raise ValueError("orders cannot span more products than exist")
        if self.quantity_low > self.quantity_high:
            raise ValueError("quantity_low must be <= quantity_high")
        if self.work_low > self.work_high:
            raise ValueError("work_low must be <= work_high")

    @property
    def pool_ids(self) -> list[str]:
        """Pool ids of all products."""
        return [f"product-{index}" for index in range(self.products)]

    def expected_demand_per_product(self) -> float:
        """Mean total units demanded from one product pool."""
        mean_quantity = (self.quantity_low + self.quantity_high) / 2
        orders_touching = self.clients * self.products_per_order / self.products
        return orders_touching * mean_quantity

    def tightness(self) -> float:
        """Expected demand / stock: > 1 means someone must lose."""
        if self.stock_per_product == 0:
            return float("inf")
        return self.expected_demand_per_product() / self.stock_per_product

    def with_tightness(self, tightness: float) -> "WorkloadSpec":
        """Copy of this spec with stock adjusted to hit ``tightness``."""
        if tightness <= 0:
            raise ValueError("tightness must be positive")
        stock = max(1, round(self.expected_demand_per_product() / tightness))
        return WorkloadSpec(
            clients=self.clients,
            products=self.products,
            stock_per_product=stock,
            quantity_low=self.quantity_low,
            quantity_high=self.quantity_high,
            products_per_order=self.products_per_order,
            mean_interarrival=self.mean_interarrival,
            work_low=self.work_low,
            work_high=self.work_high,
            seed=self.seed,
        )


def generate_orders(spec: WorkloadSpec) -> list[OrderJob]:
    """Deterministically generate the job list for ``spec``."""
    streams = StreamFactory(spec.seed)
    arrivals = streams.stream("arrivals")
    quantities = streams.stream("quantities")
    work = streams.stream("work")
    product_pick = streams.stream("products")

    jobs: list[OrderJob] = []
    clock = 0
    pools = spec.pool_ids
    for index in range(spec.clients):
        clock += arrivals.exponential_ticks(spec.mean_interarrival)
        chosen = product_pick.sample(pools, spec.products_per_order)
        demands = tuple(
            (pool, quantities.uniform_int(spec.quantity_low, spec.quantity_high))
            for pool in sorted(chosen)
        )
        jobs.append(
            OrderJob(
                client_id=f"client-{index}",
                arrival=clock,
                demands=demands,
                work_ticks=work.uniform_int(spec.work_low, spec.work_high),
            )
        )
    return jobs


@dataclass
class BookingDemand:
    """One property-view booking request for the hotel experiments (E5)."""

    client_id: str
    arrival: int
    conditions: dict[str, object] = field(default_factory=dict)
    count: int = 1
    hold_ticks: int = 10


def generate_bookings(
    seed: int,
    clients: int,
    condition_menu: list[dict[str, object]],
    mean_interarrival: float = 2.0,
    hold_low: int = 5,
    hold_high: int = 20,
) -> list[BookingDemand]:
    """Booking requests drawing conditions from a menu of predicates.

    The menu entries are property->value dicts ('floor': 5, 'view': True);
    overlap between entries is what makes the matching problem
    interesting (§3.3's room-512 scenario at scale).
    """
    streams = StreamFactory(seed)
    arrivals = streams.stream("arrivals")
    picks = streams.stream("conditions")
    holds = streams.stream("holds")
    bookings: list[BookingDemand] = []
    clock = 0
    for index in range(clients):
        clock += arrivals.exponential_ticks(mean_interarrival)
        bookings.append(
            BookingDemand(
                client_id=f"guest-{index}",
                arrival=clock,
                conditions=dict(picks.choice(condition_menu)),
                hold_ticks=holds.uniform_int(hold_low, hold_high),
            )
        )
    return bookings
