"""Workload generation for the concurrency experiments.

The canonical workload is the paper's merchant scenario (§1, §7): a
population of order-handling clients, each of which *checks* resource
availability, then spends a number of ticks organising payment and
shipping, then *acts* (purchases).  The window between check and act is
where concurrent activity bites — the isolation regimes under test differ
exactly in what they guarantee across that window.

``tightness`` is the contention knob: the ratio of total expected demand
to available stock.  Below 1.0 everybody can win; above 1.0 someone must
lose, and the question the experiments answer is *when* the losers find
out and how much work they waste.

``partitions`` and ``cross_fraction`` are the *sharding* knobs for the
cluster experiments (F4): products are classed into ``partitions``
groups (product *i* belongs to partition ``i % partitions``, which is
also how a fleet's partition map places the pools on shards), each order
draws all its products from one home partition, and a ``cross_fraction``
share of orders additionally demand a product from a second partition —
the cross-shard requests a routing gateway must scatter-gather.  With
``partitions=1`` (the default) generation is bit-identical to the
pre-cluster workloads, so seeded experiments stay reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .random import StreamFactory


@dataclass(frozen=True)
class OrderJob:
    """One client's order: arrival time, demands, and work duration."""

    client_id: str
    arrival: int
    demands: tuple[tuple[str, int], ...]
    work_ticks: int

    @property
    def total_quantity(self) -> int:
        """Units demanded across all products."""
        return sum(quantity for __, quantity in self.demands)

    def partitions_touched(self, partitions: int) -> frozenset[int]:
        """Which partition classes this order's demands land in."""
        return frozenset(
            int(pool.rsplit("-", 1)[1]) % partitions
            for pool, __ in self.demands
        )


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one experiment run."""

    clients: int = 16
    products: int = 1
    stock_per_product: int = 100
    quantity_low: int = 1
    quantity_high: int = 5
    products_per_order: int = 1
    mean_interarrival: float = 2.0
    work_low: int = 5
    work_high: int = 15
    seed: int = 0
    partitions: int = 1
    cross_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.products_per_order > self.products:
            raise ValueError("orders cannot span more products than exist")
        if self.quantity_low > self.quantity_high:
            raise ValueError("quantity_low must be <= quantity_high")
        if self.work_low > self.work_high:
            raise ValueError("work_low must be <= work_high")
        if self.partitions < 1:
            raise ValueError("partitions must be at least 1")
        if self.partitions > self.products:
            raise ValueError("cannot have more partitions than products")
        if not 0.0 <= self.cross_fraction <= 1.0:
            raise ValueError("cross_fraction must be within [0, 1]")
        if self.cross_fraction > 0 and self.partitions < 2:
            raise ValueError("cross-partition orders need at least 2 partitions")

    @property
    def pool_ids(self) -> list[str]:
        """Pool ids of all products."""
        return [f"product-{index}" for index in range(self.products)]

    def partition_of(self, pool_id: str) -> int:
        """Partition class of a product pool (``i % partitions``)."""
        return int(pool_id.rsplit("-", 1)[1]) % self.partitions

    def pools_in_partition(self, partition: int) -> list[str]:
        """Product pools belonging to one partition class."""
        return [
            pool
            for index, pool in enumerate(self.pool_ids)
            if index % self.partitions == partition
        ]

    def expected_demand_per_product(self) -> float:
        """Mean total units demanded from one product pool."""
        mean_quantity = (self.quantity_low + self.quantity_high) / 2
        orders_touching = self.clients * self.products_per_order / self.products
        return orders_touching * mean_quantity

    def tightness(self) -> float:
        """Expected demand / stock: > 1 means someone must lose."""
        if self.stock_per_product == 0:
            return float("inf")
        return self.expected_demand_per_product() / self.stock_per_product

    def with_tightness(self, tightness: float) -> "WorkloadSpec":
        """Copy of this spec with stock adjusted to hit ``tightness``."""
        if tightness <= 0:
            raise ValueError("tightness must be positive")
        stock = max(1, round(self.expected_demand_per_product() / tightness))
        return WorkloadSpec(
            clients=self.clients,
            products=self.products,
            stock_per_product=stock,
            quantity_low=self.quantity_low,
            quantity_high=self.quantity_high,
            products_per_order=self.products_per_order,
            mean_interarrival=self.mean_interarrival,
            work_low=self.work_low,
            work_high=self.work_high,
            seed=self.seed,
            partitions=self.partitions,
            cross_fraction=self.cross_fraction,
        )


def generate_orders(spec: WorkloadSpec) -> list[OrderJob]:
    """Deterministically generate the job list for ``spec``.

    With ``partitions=1`` the draw sequence is unchanged from the
    pre-cluster generator, keeping every seeded experiment bit-stable.
    With partitions, each order shops inside one home partition, except
    that a ``cross_fraction`` share also takes one product from a second
    partition — the minimum footprint that forces a cluster gateway onto
    its scatter-gather path.
    """
    streams = StreamFactory(spec.seed)
    arrivals = streams.stream("arrivals")
    quantities = streams.stream("quantities")
    work = streams.stream("work")
    product_pick = streams.stream("products")
    partition_pick = streams.stream("partitions")
    cross_pick = streams.stream("cross")

    jobs: list[OrderJob] = []
    clock = 0
    pools = spec.pool_ids
    for index in range(spec.clients):
        clock += arrivals.exponential_ticks(spec.mean_interarrival)
        if spec.partitions <= 1:
            chosen = product_pick.sample(pools, spec.products_per_order)
        else:
            chosen = _pick_partitioned(spec, product_pick, partition_pick, cross_pick)
        demands = tuple(
            (pool, quantities.uniform_int(spec.quantity_low, spec.quantity_high))
            for pool in sorted(chosen)
        )
        jobs.append(
            OrderJob(
                client_id=f"client-{index}",
                arrival=clock,
                demands=demands,
                work_ticks=work.uniform_int(spec.work_low, spec.work_high),
            )
        )
    return jobs


def _pick_partitioned(spec, product_pick, partition_pick, cross_pick) -> list[str]:
    """Choose an order's products under the partition-aware regime."""
    home = partition_pick.uniform_int(0, spec.partitions - 1)
    home_pools = spec.pools_in_partition(home)
    local = product_pick.sample(
        home_pools, min(spec.products_per_order, len(home_pools))
    )
    if not cross_pick.chance(spec.cross_fraction):
        return local
    away = (home + 1 + partition_pick.uniform_int(0, spec.partitions - 2)) % (
        spec.partitions
    )
    away_pool = product_pick.choice(spec.pools_in_partition(away))
    # One away product is enough to make the order cross-partition; keep
    # the total around products_per_order rather than inflating demand.
    if len(local) > 1:
        local = local[:-1]
    return local + [away_pool]


@dataclass
class BookingDemand:
    """One property-view booking request for the hotel experiments (E5)."""

    client_id: str
    arrival: int
    conditions: dict[str, object] = field(default_factory=dict)
    count: int = 1
    hold_ticks: int = 10


def generate_bookings(
    seed: int,
    clients: int,
    condition_menu: list[dict[str, object]],
    mean_interarrival: float = 2.0,
    hold_low: int = 5,
    hold_high: int = 20,
) -> list[BookingDemand]:
    """Booking requests drawing conditions from a menu of predicates.

    The menu entries are property->value dicts ('floor': 5, 'view': True);
    overlap between entries is what makes the matching problem
    interesting (§3.3's room-512 scenario at scale).
    """
    streams = StreamFactory(seed)
    arrivals = streams.stream("arrivals")
    picks = streams.stream("conditions")
    holds = streams.stream("holds")
    bookings: list[BookingDemand] = []
    clock = 0
    for index in range(clients):
        clock += arrivals.exponential_ticks(mean_interarrival)
        bookings.append(
            BookingDemand(
                client_id=f"guest-{index}",
                arrival=clock,
                conditions=dict(picks.choice(condition_menu)),
                hold_ticks=holds.uniform_int(hold_low, hold_high),
            )
        )
    return bookings
