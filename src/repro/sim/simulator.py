"""Deterministic discrete-event simulator.

The paper's claims are about *interleavings*: a condition checked at one
point no longer holding when relied on later, because concurrent
activities ran in between (§1, §7).  A discrete-event simulator reproduces
those interleavings deterministically and at scale — every client of the
benchmark workloads is a generator-based process, and simulated time is
the same :class:`~repro.core.clock.LogicalClock` the promise managers use
for durations and expiry, so promises expire *in* the simulation.

Processes are plain generators yielding integer delays::

    def client(sim):
        yield 3          # think for 3 ticks
        do_something()
        yield 1

    sim.spawn(client(sim))
    sim.run()
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Generator, Iterable

from ..core.clock import LogicalClock

Process = Generator[int, None, None]


@dataclass(order=True)
class _Event:
    time: int
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Cancellable handle to a scheduled event."""

    def __init__(self, event: _Event) -> None:
        self._event = event

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if already fired)."""
        self._event.cancelled = True

    @property
    def time(self) -> int:
        """Tick the event is scheduled for."""
        return self._event.time


class Simulator:
    """Event queue + process scheduler over a logical clock."""

    def __init__(self, clock: LogicalClock | None = None) -> None:
        self.clock = clock or LogicalClock()
        self._queue: list[_Event] = []
        self._sequence = itertools.count()
        self._active_processes = 0
        self.events_processed = 0

    @property
    def now(self) -> int:
        """Current simulated tick."""
        return self.clock.now

    # ----------------------------------------------------------- scheduling

    def schedule(self, delay: int, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` ``delay`` ticks from now."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        event = _Event(self.now + delay, next(self._sequence), callback)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def at(self, time: int, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` at absolute tick ``time``."""
        return self.schedule(max(0, time - self.now), callback)

    def spawn(self, process: Process, delay: int = 0) -> None:
        """Start a generator process after ``delay`` ticks."""
        self._active_processes += 1
        self.schedule(delay, lambda: self._step(process))

    def spawn_all(self, processes: Iterable[Process]) -> None:
        """Start several processes at the current tick."""
        for process in processes:
            self.spawn(process)

    # ------------------------------------------------------------- running

    def run(self, until: int | None = None) -> int:
        """Process events until the queue drains (or tick ``until``).

        Returns the final tick.
        """
        while self._queue:
            event = self._queue[0]
            if until is not None and event.time > until:
                break
            heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.time > self.now:
                self.clock.advance(event.time - self.now)
            self.events_processed += 1
            event.callback()
        if until is not None and until > self.now:
            self.clock.advance(until - self.now)
        return self.now

    @property
    def idle(self) -> bool:
        """True when no events remain."""
        return not any(not event.cancelled for event in self._queue)

    # ------------------------------------------------------------ internals

    def _step(self, process: Process) -> None:
        try:
            delay = next(process)
        except StopIteration:
            self._active_processes -= 1
            return
        if not isinstance(delay, int) or delay < 0:
            raise TypeError(
                f"processes must yield non-negative int delays, got {delay!r}"
            )
        self.schedule(delay, lambda: self._step(process))
