"""Seeded random streams for reproducible workloads.

Every benchmark run is parameterised by an explicit seed; separate streams
(arrivals, quantities, think times) are derived from it so changing one
knob never perturbs the draws of another — the standard variance-reduction
discipline for simulation studies.
"""

from __future__ import annotations

import random


class RandomStream:
    """A named, independently seeded source of random draws."""

    def __init__(self, seed: int, name: str = "stream") -> None:
        self.name = name
        # Derive a stream-specific seed so streams with the same base seed
        # but different names are independent.
        self._rng = random.Random(f"{seed}/{name}")

    def uniform_int(self, low: int, high: int) -> int:
        """Integer drawn uniformly from [low, high]."""
        return self._rng.randint(low, high)

    def exponential(self, mean: float) -> float:
        """Exponential draw with the given mean (Poisson interarrivals)."""
        if mean <= 0:
            return 0.0
        return self._rng.expovariate(1.0 / mean)

    def exponential_ticks(self, mean: float) -> int:
        """Exponential draw rounded to a non-negative integer tick count."""
        return max(0, round(self.exponential(mean)))

    def choice(self, items):
        """Uniform choice from a non-empty sequence."""
        return self._rng.choice(items)

    def sample(self, items, count: int):
        """Sample ``count`` distinct items."""
        return self._rng.sample(list(items), count)

    def shuffle(self, items: list) -> list:
        """Return a shuffled copy (the input list is untouched)."""
        copied = list(items)
        self._rng.shuffle(copied)
        return copied

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._rng.random()

    def chance(self, probability: float) -> bool:
        """Bernoulli draw."""
        return self._rng.random() < probability


class StreamFactory:
    """Derives named :class:`RandomStream` objects from one base seed."""

    def __init__(self, seed: int) -> None:
        self.seed = seed

    def stream(self, name: str) -> RandomStream:
        """A reproducible stream for one purpose (e.g. ``"arrivals"``)."""
        return RandomStream(self.seed, name)
