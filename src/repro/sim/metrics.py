"""Metric collection for simulations and benchmarks.

Counters for discrete outcomes (grants, rejections, late failures,
deadlocks) and series for continuous ones (latency, wait time, wasted
work), with the summary statistics the experiment tables report.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field


@dataclass
class SeriesSummary:
    """Summary statistics of one series."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p95: float

    def as_dict(self) -> dict[str, float]:
        """Plain-dict form for table printing."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.p50,
            "p95": self.p95,
        }


def percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of a non-empty list."""
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, math.ceil(fraction * len(ordered)) - 1))
    return ordered[rank]


@dataclass
class Metrics:
    """A bag of counters and series, keyed by name."""

    counters: Counter = field(default_factory=Counter)
    series: dict[str, list[float]] = field(default_factory=dict)

    def count(self, name: str, increment: int = 1) -> None:
        """Bump a counter."""
        self.counters[name] += increment

    def observe(self, name: str, value: float) -> None:
        """Append a value to a series."""
        self.series.setdefault(name, []).append(float(value))

    def counter(self, name: str) -> int:
        """Read a counter (0 when never bumped)."""
        return self.counters.get(name, 0)

    def summarise(self, name: str) -> SeriesSummary | None:
        """Summary statistics of one series (None when empty)."""
        values = self.series.get(name)
        if not values:
            return None
        return SeriesSummary(
            count=len(values),
            mean=sum(values) / len(values),
            minimum=min(values),
            maximum=max(values),
            p50=percentile(values, 0.50),
            p95=percentile(values, 0.95),
        )

    def rate(self, numerator: str, denominator: str) -> float:
        """Ratio of two counters (0 when the denominator is 0)."""
        total = self.counter(denominator)
        if not total:
            return 0.0
        return self.counter(numerator) / total

    def merge(self, other: "Metrics") -> None:
        """Fold another metrics bag into this one."""
        self.counters.update(other.counters)
        for name, values in other.series.items():
            self.series.setdefault(name, []).extend(values)

    def snapshot(self) -> dict[str, object]:
        """Counters plus series summaries, for reports."""
        result: dict[str, object] = dict(sorted(self.counters.items()))
        for name in sorted(self.series):
            summary = self.summarise(name)
            if summary is not None:
                result[f"{name}(mean)"] = round(summary.mean, 3)
                result[f"{name}(p95)"] = round(summary.p95, 3)
        return result
