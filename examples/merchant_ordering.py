"""Figure 1, live: the merchant ordering process over the SOAP protocol.

Runs the exact walkthrough of the paper's Figure 1 — promise request,
grant, order processing under concurrent sales, and the atomic
purchase+release — through the full stack: client stub → XML envelope →
transport → promise endpoint → promise manager → merchant application →
resource manager.  Then runs the rejection branch.

Run:  python examples/merchant_ordering.py
"""

from repro import Environment, P
from repro.services import Deployment, MerchantService


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


def main() -> None:
    shop = Deployment(name="merchant")
    shop.add_service(MerchantService())
    shop.use_pool_strategy("pink_widgets")
    with shop.seed() as txn:
        shop.resources.create_pool(txn, "pink_widgets", 12)

    order_process = shop.client("order-process")
    rival = shop.client("rival-process")

    banner("Order process: determine we need 5 pink widgets to be in stock")
    response = order_process.request_promise(
        "merchant", [P("quantity('pink_widgets') >= 5")], duration=30
    )
    print(f"promise manager: {'ACCEPTED' if response.accepted else 'REJECTED'} "
          f"as {response.promise_id} for {response.duration} ticks")

    banner("Concurrent order processes sell the same goods meanwhile")
    for amount in (4, 3, 1):
        outcome = rival.call(
            "merchant", "merchant", "sell",
            {"product": "pink_widgets", "quantity": amount},
        )
        print(f"rival sells {amount}: {'ok' if outcome.success else outcome.reason}")

    banner("Order process: continue processing order (payment, shippers)")
    order = order_process.call(
        "merchant", "merchant", "place_order",
        {"customer": "ada", "product": "pink_widgets", "quantity": 5},
    )
    print(f"order opened: {order.value}")
    paid = order_process.call("merchant", "merchant", "pay", {"order_id": order.value})
    print(f"payment recorded: {paid.success}")

    banner("Purchase stock atomically with releasing the promise")
    done = order_process.call(
        "merchant", "merchant", "complete_order", {"order_id": order.value},
        environment=Environment.of(response.promise_id, release=[response.promise_id]),
    )
    print(f"complete_order: {done.success}; released promises: {list(done.released)}")

    stock = order_process.call(
        "merchant", "merchant", "stock_level", {"product": "pink_widgets"}
    )
    print(f"stock after fulfilment: {stock.value}")

    banner("Rejection branch: a second order for 5 more widgets")
    second = order_process.request_promise(
        "merchant", [P("quantity('pink_widgets') >= 5")], duration=30
    )
    print(f"promise manager: REJECTED ({second.reason})")
    print("order process terminates, telling the customer goods are unavailable")

    banner("What actually went over the wire")
    stats = shop.transport.stats
    print(f"{stats.sent} request messages, {stats.bytes_on_wire} bytes of XML")
    print("first envelope:")
    print(shop.transport.wire_log[0])


if __name__ == "__main__":
    main()
