"""Travel planning: the three atomicity requirements of Section 4.

1. *Atomic multi-predicate grant* — a flight, a rental car and a hotel
   room promised all-or-nothing (vs. acquiring them one at a time with
   alternatives and explicit backtracking).
2. *Atomic action + release* — booking the trip consumes every promised
   resource in one unit.
3. *Atomic promise update* — the traveller upgrades the car promise and
   later weakens it, exchanging promises without ever being exposed.

Run:  python examples/travel_booking.py
"""

from repro import Environment, P
from repro.services import (
    Deployment,
    TravelAgent,
    TravelNeed,
    TravelService,
)


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


def main() -> None:
    world = Deployment(name="travel")
    world.add_service(TravelService())
    pools = {
        "flight:QF1": 3,
        "car:compact": 2,
        "car:luxury": 2,
        "hotel:hilton": 3,
    }
    world.use_pool_strategy(*pools)
    with world.seed() as txn:
        for pool_id, quantity in pools.items():
            world.resources.create_pool(txn, pool_id, quantity)

    client = world.client("traveller")
    agent = TravelAgent(client, "travel")

    needs = [
        TravelNeed("flight", P("quantity('flight:QF1') >= 1")),
        TravelNeed(
            "car",
            P("quantity('car:compact') >= 1"),
            (P("quantity('car:luxury') >= 1"),),
        ),
        TravelNeed("hotel", P("quantity('hotel:hilton') >= 1")),
    ]

    banner("Requirement 1: all-or-nothing grant of flight + car + hotel")
    plan = agent.plan_atomic(needs, duration=60)
    print(f"atomic plan: success={plan.success} in {plan.attempts} request")
    trip_promise = plan.promise_ids[0]

    banner("A rival takes the last compact car; incremental planning adapts")
    rival = world.client("rival")
    rival.require_promise("travel", [P("quantity('car:compact') >= 1")], 60)
    plan2 = agent.plan_incremental(needs, duration=60)
    print(
        f"incremental plan: success={plan2.success}, "
        f"{plan2.attempts} promise requests, "
        f"{plan2.alternatives_tried} fallback(s) to alternatives"
    )

    banner("Requirement 3: upgrade then weaken the second trip's promises")
    # Upgrade: the traveller now wants TWO hotel nights — exchange the
    # whole plan-2 promise set for a bigger one atomically.
    upgraded = client.request_promise(
        "travel",
        [
            P("quantity('flight:QF1') >= 1"),
            P("quantity('car:luxury') >= 1"),
            P("quantity('hotel:hilton') >= 2"),
        ],
        duration=60,
        releases=list(plan2.promise_ids),
    )
    print(f"upgrade to 2 hotel nights: {'ACCEPTED' if upgraded.accepted else 'REJECTED'}")

    impossible = client.request_promise(
        "travel",
        [P("quantity('hotel:hilton') >= 5")],
        duration=60,
        releases=[upgraded.promise_id],
    )
    print(
        f"over-reach to 5 nights: REJECTED ({impossible.reason}); "
        f"old promise still active: "
        f"{world.manager.is_promise_active(upgraded.promise_id)}"
    )

    weakened = client.request_promise(
        "travel",
        [P("quantity('flight:QF1') >= 1"), P("quantity('hotel:hilton') >= 1")],
        duration=60,
        releases=[upgraded.promise_id],
    )
    print(f"weaken (drop the car, 1 night): {'ACCEPTED' if weakened.accepted else 'REJECTED'}")

    banner("Requirement 2: book trip #1, consuming its promises atomically")
    outcome = client.call(
        "travel", "travel", "book_trip",
        {"traveller": "ada", "description": "QF1 + compact car + hilton"},
        environment=Environment.of(trip_promise, release=[trip_promise]),
    )
    print(f"book_trip: {outcome.success} -> itinerary {outcome.value}")

    banner("Remaining availability")
    with world.store.begin() as txn:
        for pool_id in pools:
            pool = world.resources.pool(txn, pool_id)
            print(f"{pool_id:15s} available={pool.available} promised={pool.allocated}")


if __name__ == "__main__":
    main()
