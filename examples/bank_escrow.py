"""Bank balances as anonymous resources: escrow promises (Sections 3.1, 9).

Shows the paper's two bank insights:

* Anonymous view (§3.1): a promise that $500 can be withdrawn sets no
  specific bills aside, only quantity.  Many promises may coexist "just
  as long as the account will not be overdrawn if all of these promises
  are followed by withdrawal requests".
* Disjointness (§9): two promises 'balance>=100' and 'balance>=50' jointly
  require 150 — unlike integrity constraints, promise demands *add up*.

Run:  python examples/bank_escrow.py
"""

from repro import Environment, P
from repro.services import BankService, Deployment, account_pool


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


def main() -> None:
    bank = Deployment(name="bank")
    bank.add_service(BankService())
    bank.use_pool_strategy(account_pool("alice"))
    teller = bank.client("teller")
    teller.call("bank", "bank", "open_account", {"account": "alice", "balance": 120})

    pool = account_pool("alice")
    shop = bank.client("web-shop")
    utility = bank.client("utility-biller")

    banner("Integrity constraints vs promises (the §9 example)")
    print("alice's balance: $120")
    first = shop.request_promise("bank", [P(f"quantity('{pool}') >= 100")], 60)
    print(f"web-shop asks to rely on balance>=100: "
          f"{'ACCEPTED' if first.accepted else 'REJECTED'}")
    second = utility.request_promise("bank", [P(f"quantity('{pool}') >= 50")], 60)
    print(f"utility asks to rely on balance>=50:  "
          f"{'ACCEPTED' if second.accepted else 'REJECTED'} ({second.reason})")
    print("both constraints hold at $120, but promises need $150 of "
          "disjoint funds — the second is refused")

    banner("Promised funds cannot be withdrawn from under the shop")
    result = teller.call("bank", "bank", "withdraw", {"account": "alice", "amount": 30})
    print(f"withdraw $30: {'ok' if result.success else 'REFUSED: ' + result.reason}")
    result = teller.call("bank", "bank", "withdraw", {"account": "alice", "amount": 20})
    print(f"withdraw $20: {'ok' if result.success else 'REFUSED: ' + result.reason}")

    banner("The anticipated purchase changes: upgrade $100 -> $110 atomically")
    upgraded = shop.request_promise(
        "bank", [P(f"quantity('{pool}') >= 110")], 60, releases=[first.promise_id]
    )
    print(f"upgrade: {'ACCEPTED' if upgraded.accepted else 'REJECTED'} "
          f"({upgraded.reason})")
    weakened = shop.request_promise(
        "bank", [P(f"quantity('{pool}') >= 60")], 60, releases=[first.promise_id]
    )
    print(f"weaken to $60 instead: {'ACCEPTED' if weakened.accepted else 'REJECTED'}")

    banner("The purchase settles: consume the promise atomically")
    outcome = shop.call(
        "bank", "bank", "balance", {"account": "alice"},
        environment=Environment.of(weakened.promise_id, release=[weakened.promise_id]),
    )
    print(f"settlement: {outcome.success}")
    final = teller.call("bank", "bank", "balance", {"account": "alice"})
    print(f"final balance: {final.value}")


if __name__ == "__main__":
    main()
