"""Four isolation regimes, one contended workload, side by side.

Runs the same simulated merchant workload — 32 order processes racing for
scarce stock — under the paper's Promises model and the three comparison
regimes (unprotected check-then-act, Fast-Path-style commit validation,
and long-duration 2PL), then prints the outcome table.  This is a small
interactive version of benchmark experiments E1/E2.

Run:  python examples/isolation_showdown.py
"""

from repro.baselines import (
    LockingRegime,
    OptimisticRegime,
    PromiseRegime,
    ValidationRegime,
)
from repro.sim.workload import WorkloadSpec


def main() -> None:
    spec = WorkloadSpec(
        clients=32,
        products=3,
        stock_per_product=30,
        quantity_low=2,
        quantity_high=6,
        products_per_order=2,
        mean_interarrival=1.0,
        work_low=5,
        work_high=20,
        seed=2007,
    )
    print(
        f"workload: {spec.clients} clients, {spec.products} products x "
        f"{spec.stock_per_product} units, tightness {spec.tightness():.2f}"
    )

    header = (
        f"{'regime':12s} {'success':>8s} {'early-rej':>10s} {'late-fail':>10s} "
        f"{'deadlock':>9s} {'wasted':>7s} {'lat(mean)':>10s} {'lat(p95)':>9s}"
    )
    print("\n" + header)
    print("-" * len(header))
    for regime_cls in (PromiseRegime, OptimisticRegime, ValidationRegime, LockingRegime):
        regime = regime_cls()
        metrics = regime.run(spec)
        latency = metrics.summarise("latency")
        wasted = sum(metrics.series.get("wasted_work", []))
        print(
            f"{regime.name:12s} "
            f"{metrics.counter('success'):>8d} "
            f"{metrics.counter('early_reject'):>10d} "
            f"{metrics.counter('late_failure'):>10d} "
            f"{metrics.counter('deadlock'):>9d} "
            f"{int(wasted):>7d} "
            f"{latency.mean if latency else 0:>10.1f} "
            f"{latency.p95 if latency else 0:>9.1f}"
        )

    print(
        "\nReading: promises turn every would-be late failure into an\n"
        "immediate rejection (zero wasted work, no deadlocks); locking\n"
        "avoids late failures too but pays with deadlocks and latency."
    )


if __name__ == "__main__":
    main()
