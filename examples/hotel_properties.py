"""Property-view promises over hotel rooms (Section 3.3 and Section 5).

Shows the paper's room-512 scenario: one customer wants *a room with a
view*, another wants *any 5th-floor room*.  Room 512 suits both.  Under
tentative allocation, the promise manager rearranges its provisional
choices so both customers are promised rooms; under naive first-fit
tagging the second customer would be turned away.  Also demonstrates
'or better' grades and essential-vs-desirable negotiation via Or.

Run:  python examples/hotel_properties.py
"""

from repro import Environment, P
from repro.services import Deployment, HotelService

ROOMS = {
    "room-101": {"floor": 1, "view": False, "beds": "twin", "smoking": False, "grade": "standard"},
    "room-102": {"floor": 1, "view": True, "beds": "queen", "smoking": False, "grade": "standard"},
    "room-201": {"floor": 2, "view": False, "beds": "queen", "smoking": False, "grade": "deluxe"},
    "room-512": {"floor": 5, "view": True, "beds": "queen", "smoking": False, "grade": "deluxe"},
    "room-513": {"floor": 5, "view": False, "beds": "twin", "smoking": False, "grade": "suite"},
}
DATE = "2007-03-12"


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


def show_tags(deployment) -> None:
    with deployment.store.begin() as txn:
        for record in sorted(
            deployment.resources.instances_in(txn, "rooms"),
            key=lambda r: r.instance_id,
        ):
            owner = f" -> {record.promise_id}" if record.promise_id else ""
            print(f"  {record.instance_id:22s} {record.status.value}{owner}")


def build() -> Deployment:
    deployment = Deployment(name="hotel")
    service = deployment.add_service(HotelService())
    deployment.use_tentative_strategy("rooms")
    with deployment.seed() as txn:
        service.seed_rooms(txn, deployment.resources, ROOMS, [DATE])
    return deployment


def main() -> None:
    hotel = build()
    date_clause = f"date == '{DATE}'"

    banner("Customer A asks for a room with a view")
    view_customer = hotel.client("view-customer")
    view_promise = view_customer.require_promise(
        "hotel", [P(f"match('rooms', view == true and {date_clause}, count=1)")], 60
    )
    show_tags(hotel)

    banner("Customer B asks for any 5th-floor room — 512 may get stolen")
    floor_customer = hotel.client("floor-customer")
    floor_promise = floor_customer.require_promise(
        "hotel", [P(f"match('rooms', floor == 5 and {date_clause}, count=1)")], 60
    )
    show_tags(hotel)
    print("(the view promise was rearranged if B needed its room)")

    banner("'Or better': a standard-grade request upgraded if needed")
    grade_customer = hotel.client("grade-customer")
    grade_promise = grade_customer.require_promise(
        "hotel",
        [P(f"match('rooms', grade == 'standard'~ and {date_clause}, count=2)")],
        60,
    )
    print(f"granted {grade_promise}: two standard-or-better rooms")
    show_tags(hotel)

    banner("Essential vs desirable: view + twin beds, else just twin beds")
    fussy = hotel.client("fussy-customer")
    response = fussy.request_promise(
        "hotel",
        [P(
            f"match('rooms', view == true and beds == 'twin' and {date_clause}, count=1)"
            f" or match('rooms', beds == 'twin' and {date_clause}, count=1)"
        )],
        60,
    )
    print(f"negotiated promise: {'ACCEPTED' if response.accepted else 'REJECTED'}"
          f" (falls back to the weaker branch when the strong one is gone)")
    show_tags(hotel)

    banner("Both original customers book; each gets a matching room")
    booked_view = view_customer.call(
        "hotel", "hotel", "book", {"guest": "A"},
        environment=Environment.of(view_promise, release=[view_promise]),
    )
    booked_floor = floor_customer.call(
        "hotel", "hotel", "book", {"guest": "B"},
        environment=Environment.of(floor_promise, release=[floor_promise]),
    )
    print(f"bookings: A={booked_view.success} B={booked_floor.success}")
    show_tags(hotel)


if __name__ == "__main__":
    main()
