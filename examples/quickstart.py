"""Quickstart: the Promises pattern in ~40 lines.

A client checks that 5 widgets are in stock by asking for a *promise*,
works on its order while rivals drain the shelf, and then purchases —
guaranteed to succeed because the promise isolated it from the concurrent
sales (Greenfield et al., CIDR 2007).

Run:  python examples/quickstart.py
"""

from repro import (
    Environment,
    P,
    PromiseManager,
    ResourcePoolStrategy,
)


def main() -> None:
    # A promise manager over an embedded transactional store, with the
    # widgets pool implemented by the escrow (resource-pool) technique.
    manager = PromiseManager(name="shop")
    manager.registry.assign("widgets", ResourcePoolStrategy())
    with manager.store.begin() as txn:
        manager.resources.create_pool(txn, "widgets", 20)

    # 1. Check-and-reserve: "quantity('widgets') >= 5" must keep holding.
    response = manager.request_promise_for(
        [P("quantity('widgets') >= 5")], duration=30, client_id="alice"
    )
    print(f"promise granted: {response.accepted} (id={response.promise_id})")

    # 2. Concurrent activity: someone else buys 15 widgets meanwhile.
    outcome = manager.execute(lambda ctx: ctx.sell("widgets", 15))
    print(f"rival bought 15: {outcome.success}")

    # ...but nobody can touch Alice's 5:
    overdraw = manager.execute(lambda ctx: ctx.sell("widgets", 1))
    print(f"rival tried one more: success={overdraw.success} ({overdraw.reason})")

    # 3. Purchase atomically with releasing the promise.
    purchase = manager.execute(
        lambda ctx: "order-42 shipped",
        Environment.of(response.promise_id, release=[response.promise_id]),
        client_id="alice",
    )
    print(f"alice's purchase: {purchase.success} -> {purchase.value}")

    with manager.store.begin() as txn:
        pool = manager.resources.pool(txn, "widgets")
    print(f"final stock: available={pool.available} allocated={pool.allocated}")


if __name__ == "__main__":
    main()
