"""Observing the promise lifecycle: events, violations and expiry.

The paper's related work credits ConTract with "notifying the client when
a checked condition changes" (§9).  This example subscribes a monitor to a
promise manager's event stream and walks through a day at the merchant:
grants, an atomic exchange, a rogue application action that gets rolled
back (VIOLATED), a consumption, and an expiry sweep — then prints the
audit trail the events add up to.

Run:  python examples/promise_monitor.py
"""

from repro import Environment, P, PromiseManager, ResourcePoolStrategy
from repro.core.events import EventKind


def main() -> None:
    manager = PromiseManager(name="shop", counter_offers=True)
    manager.registry.assign("widgets", ResourcePoolStrategy())
    with manager.store.begin() as txn:
        manager.resources.create_pool(txn, "widgets", 20)

    trail = []
    manager.events.subscribe(trail.append)

    def live_monitor(event):
        marker = {
            EventKind.VIOLATED: "!!",
            EventKind.REJECTED: " -",
            EventKind.EXPIRED: " ~",
        }.get(event.kind, "  ")
        print(f"{marker} [{event.at:>3}] {event.kind.value:9s} "
              f"{event.promise_id or '-':14s} {event.detail}")

    manager.events.subscribe(live_monitor)

    print("=== a day at the merchant, as seen by the event stream ===")

    # Two grants.
    first = manager.request_promise_for(
        [P("quantity('widgets') >= 8")], duration=20, client_id="alice"
    )
    second = manager.request_promise_for(
        [P("quantity('widgets') >= 6")], duration=5, client_id="bob"
    )

    # A rejection (with a counter-offer in the reason data).
    rejected = manager.request_promise_for(
        [P("quantity('widgets') >= 10")], duration=20, client_id="carol"
    )
    if rejected.counter is not None:
        print(f"   (carol was offered: {rejected.counter.describe()})")

    # An atomic exchange: alice upgrades 8 -> 10... which needs bob's 6
    # to be impossible; she weakens to 4 instead.
    manager.request_promise_for(
        [P("quantity('widgets') >= 4")],
        duration=20,
        client_id="alice",
        releases=[first.promise_id],
    )

    # A rogue action that would break bob's promise: rolled back.
    def rogue(ctx):
        ctx.resources.unreserve(ctx.txn, "widgets", 5)
        ctx.resources.remove_stock(ctx.txn, "widgets", 5)
        return "raided the escrow"

    manager.execute(rogue, client_id="mallory")

    # Bob consumes his promise (purchase + release as one unit).
    manager.execute(
        lambda ctx: "bob's order shipped",
        Environment.of(second.promise_id, release=[second.promise_id]),
        client_id="bob",
    )

    # Time passes; alice never came back — her promise expires.
    manager.clock.advance(25)
    manager.expire_due()

    print("\n=== audit trail summary ===")
    counts = {}
    for event in trail:
        counts[event.kind.value] = counts.get(event.kind.value, 0) + 1
    for kind, count in sorted(counts.items()):
        print(f"{kind:9s} x{count}")
    with manager.store.begin() as txn:
        pool = manager.resources.pool(txn, "widgets")
    print(f"\nfinal stock: available={pool.available} allocated={pool.allocated}")


if __name__ == "__main__":
    main()
