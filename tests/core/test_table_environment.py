"""Unit tests for the promise table and promise environments."""

from __future__ import annotations

import pytest

from repro.core.environment import Environment
from repro.core.errors import UnknownPromise
from repro.core.promise import Promise, PromiseStatus
from repro.core.predicates import quantity_at_least
from repro.core.table import PromiseTable
from repro.storage.store import Store


def make_promise(promise_id, expires=10, status=PromiseStatus.ACTIVE, client="alice"):
    return Promise(
        promise_id=promise_id,
        client_id=client,
        predicates=(quantity_at_least("w", 1),),
        granted_at=0,
        expires_at=expires,
        status=status,
    )


@pytest.fixture
def store():
    return Store()


@pytest.fixture
def table(store):
    return PromiseTable(store)


class TestPromiseTable:
    def test_insert_get_roundtrip(self, store, table):
        with store.begin() as txn:
            table.insert(txn, make_promise("p1"))
            loaded = table.get(txn, "p1")
        assert loaded.promise_id == "p1"
        assert loaded.predicates == (quantity_at_least("w", 1),)

    def test_get_unknown_raises(self, store, table):
        with store.begin() as txn:
            with pytest.raises(UnknownPromise):
                table.get(txn, "ghost")

    def test_get_or_none(self, store, table):
        with store.begin() as txn:
            assert table.get_or_none(txn, "ghost") is None

    def test_update_unknown_raises(self, store, table):
        with store.begin() as txn:
            with pytest.raises(UnknownPromise):
                table.update(txn, make_promise("ghost"))
            txn.abort()

    def test_mark_changes_status(self, store, table):
        with store.begin() as txn:
            table.insert(txn, make_promise("p1"))
            updated = table.mark(txn, "p1", PromiseStatus.RELEASED)
            assert updated.status is PromiseStatus.RELEASED
            assert table.get(txn, "p1").status is PromiseStatus.RELEASED

    def test_active_filters_status(self, store, table):
        with store.begin() as txn:
            table.insert(txn, make_promise("p1"))
            table.insert(txn, make_promise("p2", status=PromiseStatus.RELEASED))
            assert [p.promise_id for p in table.active(txn)] == ["p1"]

    def test_active_filters_expiry_when_now_given(self, store, table):
        with store.begin() as txn:
            table.insert(txn, make_promise("p1", expires=5))
            table.insert(txn, make_promise("p2", expires=50))
            assert [p.promise_id for p in table.active(txn, now=10)] == ["p2"]

    def test_due_for_expiry(self, store, table):
        with store.begin() as txn:
            table.insert(txn, make_promise("p1", expires=5))
            table.insert(txn, make_promise("p2", expires=50))
            table.insert(
                txn, make_promise("p3", expires=5, status=PromiseStatus.RELEASED)
            )
            due = table.due_for_expiry(txn, now=10)
            assert [p.promise_id for p in due] == ["p1"]

    def test_by_client(self, store, table):
        with store.begin() as txn:
            table.insert(txn, make_promise("p1", client="alice"))
            table.insert(txn, make_promise("p2", client="bob"))
            assert [p.promise_id for p in table.by_client(txn, "bob")] == ["p2"]

    def test_count_active(self, store, table):
        with store.begin() as txn:
            table.insert(txn, make_promise("p1"))
            table.insert(txn, make_promise("p2"))
            assert table.count_active(txn) == 2

    def test_vacuum_removes_dead_rows(self, store, table):
        with store.begin() as txn:
            table.insert(txn, make_promise("p1"))
            table.insert(txn, make_promise("p2", status=PromiseStatus.RELEASED))
            table.insert(txn, make_promise("p3", status=PromiseStatus.EXPIRED))
            assert table.vacuum(txn) == 2
            assert [p.promise_id for p in table.all_promises(txn)] == ["p1"]

    def test_insertion_is_transactional(self, store, table):
        txn = store.begin()
        table.insert(txn, make_promise("p1"))
        txn.abort()
        with store.begin() as check:
            assert table.get_or_none(check, "p1") is None


class TestEnvironment:
    def test_of_builder(self):
        env = Environment.of("p1", "p2", release=["p2"])
        assert env.promise_ids == ("p1", "p2")
        assert env.releases() == ["p2"]
        assert env.kept() == ["p1"]

    def test_empty(self):
        env = Environment.empty()
        assert env.is_empty
        assert env.releases() == []

    def test_release_outside_environment_rejected(self):
        with pytest.raises(ValueError):
            Environment.of("p1", release=["p2"])

    def test_release_options_must_reference_members(self):
        with pytest.raises(ValueError):
            Environment(promise_ids=("p1",), release_after={"p2": True})

    def test_roundtrip(self):
        env = Environment.of("p1", "p2", "p3", release=["p1", "p3"])
        decoded = Environment.from_dict(env.to_dict())
        assert decoded.promise_ids == env.promise_ids
        assert decoded.releases() == env.releases()

    def test_malformed_payload_rejected(self):
        with pytest.raises(ValueError):
            Environment.from_dict({"promise_ids": "not-a-list"})
