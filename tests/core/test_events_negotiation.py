"""Tests for promise lifecycle events and negotiation (extensions).

Events reproduce the ConTract-style notification the paper cites in §9;
negotiation implements the §3.3 essential-vs-desirable dialogue.
"""

from __future__ import annotations

import pytest

from repro.core.environment import Environment
from repro.core.events import EventHub, EventKind, PromiseEvent
from repro.core.parser import P
from repro.core.predicates import quantity_at_least


def collect(manager):
    """Subscribe a list-collector to a manager's event stream."""
    seen: list[PromiseEvent] = []
    manager.events.subscribe(seen.append)
    return seen


def kinds(events):
    return [event.kind for event in events]


class TestEventHub:
    def test_subscribe_emit_unsubscribe(self):
        hub = EventHub()
        seen = []
        listener = hub.subscribe(seen.append)
        event = PromiseEvent(EventKind.GRANTED, at=1, promise_id="p")
        hub.emit(event)
        hub.unsubscribe(listener)
        hub.unsubscribe(listener)  # idempotent
        hub.emit(event)
        assert seen == [event]

    def test_listener_errors_are_isolated(self):
        hub = EventHub()
        seen = []

        def broken(event):
            raise RuntimeError("observer bug")

        hub.subscribe(broken)
        hub.subscribe(seen.append)
        hub.emit(PromiseEvent(EventKind.EXPIRED, at=0))
        assert len(seen) == 1

    def test_history(self):
        hub = EventHub(keep_history=True)
        hub.emit(PromiseEvent(EventKind.GRANTED, at=0))
        hub.emit(PromiseEvent(EventKind.RELEASED, at=1))
        assert kinds(hub.history) == [EventKind.GRANTED, EventKind.RELEASED]


class TestManagerEvents:
    def test_grant_release_cycle(self, pool_manager):
        seen = collect(pool_manager)
        response = pool_manager.request_promise_for(
            [quantity_at_least("widgets", 5)], 10
        )
        pool_manager.release(response.promise_id)
        assert kinds(seen) == [EventKind.GRANTED, EventKind.RELEASED]
        assert seen[0].promise_id == response.promise_id

    def test_rejection_event_carries_reason(self, pool_manager):
        seen = collect(pool_manager)
        pool_manager.request_promise_for([quantity_at_least("widgets", 999)], 10)
        assert kinds(seen) == [EventKind.REJECTED]
        assert "widgets" in seen[0].detail

    def test_consume_event(self, pool_manager):
        seen = collect(pool_manager)
        response = pool_manager.request_promise_for(
            [quantity_at_least("widgets", 5)], 10
        )
        pool_manager.execute(
            lambda ctx: "buy",
            Environment.of(response.promise_id, release=[response.promise_id]),
        )
        assert kinds(seen) == [EventKind.GRANTED, EventKind.CONSUMED]

    def test_expiry_event(self, pool_manager):
        seen = collect(pool_manager)
        response = pool_manager.request_promise_for(
            [quantity_at_least("widgets", 5)], duration=3
        )
        pool_manager.clock.advance(3)
        pool_manager.expire_due()
        assert kinds(seen) == [EventKind.GRANTED, EventKind.EXPIRED]
        assert seen[1].promise_id == response.promise_id

    def test_violation_event(self, manager):
        with manager.store.begin() as txn:
            manager.resources.create_pool(txn, "gadgets", 50)
        seen = collect(manager)
        manager.request_promise_for([quantity_at_least("gadgets", 30)], 10)
        manager.execute(
            lambda ctx: ctx.resources.remove_stock(ctx.txn, "gadgets", 40)
        )
        assert EventKind.VIOLATED in kinds(seen)

    def test_failed_action_emits_nothing_extra(self, pool_manager):
        from repro.core.manager import ActionResult

        response = pool_manager.request_promise_for(
            [quantity_at_least("widgets", 5)], 10
        )
        seen = collect(pool_manager)
        pool_manager.execute(
            lambda ctx: ActionResult.failed("nope"),
            Environment.of(response.promise_id, release=[response.promise_id]),
        )
        # The release was rolled back with the action: no CONSUMED event.
        assert kinds(seen) == []

    def test_exchange_emits_release_then_grant(self, pool_manager):
        old = pool_manager.request_promise_for(
            [quantity_at_least("widgets", 5)], 50
        )
        seen = collect(pool_manager)
        pool_manager.request_promise_for(
            [quantity_at_least("widgets", 10)], 50, releases=[old.promise_id]
        )
        assert kinds(seen) == [EventKind.RELEASED, EventKind.GRANTED]
        assert "exchanged for" in seen[0].detail


class TestManagerNegotiation:
    def test_first_alternative_wins_when_possible(self, rooms_manager):
        index, response = rooms_manager.request_first_grantable(
            [
                [P("match('rooms', view == true, count=1)")],
                [P("match('rooms', count=1)")],
            ],
            duration=10,
        )
        assert index == 0 and response.accepted

    def test_falls_back_to_weaker_alternative(self, rooms_manager):
        # Exhaust the two viewed rooms first.
        rooms_manager.request_promise_for(
            [P("match('rooms', view == true, count=2)")], 10
        )
        index, response = rooms_manager.request_first_grantable(
            [
                [P("match('rooms', view == true, count=1)")],
                [P("match('rooms', count=1)")],
            ],
            duration=10,
        )
        assert index == 1 and response.accepted

    def test_total_failure_returns_minus_one(self, rooms_manager):
        index, response = rooms_manager.request_first_grantable(
            [[P("match('rooms', count=9)")], [P("match('rooms', count=8)")]],
            duration=10,
        )
        assert index == -1 and not response.accepted

    def test_empty_alternatives_rejected(self, rooms_manager):
        with pytest.raises(ValueError):
            rooms_manager.request_first_grantable([], duration=10)

    def test_failed_negotiation_keeps_releases(self, pool_manager):
        held = pool_manager.request_promise_for(
            [quantity_at_least("widgets", 50)], 50
        )
        index, __ = pool_manager.request_first_grantable(
            [[quantity_at_least("widgets", 500)],
             [quantity_at_least("widgets", 400)]],
            duration=50,
            releases=[held.promise_id],
        )
        assert index == -1
        assert pool_manager.is_promise_active(held.promise_id)


class TestClientNegotiation:
    def test_over_the_wire(self):
        from repro.services import Deployment
        from tests.conftest import ROOMS, ROOMS_SCHEMA

        deployment = Deployment(name="hotel")
        with deployment.seed() as txn:
            deployment.resources.define_collection(txn, ROOMS_SCHEMA)
            for instance_id, properties in ROOMS.items():
                deployment.resources.add_instance(
                    txn, instance_id, "rooms", dict(properties)
                )
        client = deployment.client("guest")
        client.require_promise(
            "hotel", [P("match('rooms', view == true, count=2)")], 10
        )
        index, response = client.negotiate(
            "hotel",
            [
                [P("match('rooms', view == true, count=1)")],
                [P("match('rooms', floor == 5, count=1)")],
                [P("match('rooms', count=1)")],
            ],
            duration=10,
        )
        assert index == 1 and response.accepted
