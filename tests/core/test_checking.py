"""Unit tests for the promise checking engine."""

from __future__ import annotations

import pytest

from repro.core.checking import Demand, check_satisfiable
from repro.core.errors import PredicateUnsupported
from repro.core.predicates import (
    And,
    InstanceState,
    Or,
    named_available,
    property_match,
    quantity_at_least,
    where,
)


class FakeState:
    def __init__(self, pools=None, instances=None, orderings=None):
        self._pools = pools or {}
        self._instances = {i.instance_id: i for i in (instances or [])}
        self._orderings = orderings or {}

    def pool_available(self, pool_id):
        return self._pools.get(pool_id, 0)

    def instance(self, instance_id):
        return self._instances.get(instance_id)

    def instances_in(self, collection_id):
        return [
            i for i in self._instances.values()
            if i.collection_id == collection_id
        ]

    def property_ordering(self, collection_id, name):
        return self._orderings.get((collection_id, name))


def room(instance_id, floor, view=False, status="available"):
    return InstanceState(
        instance_id=instance_id,
        collection_id="rooms",
        status=status,
        properties={"floor": floor, "view": view},
    )


def demand(owner, *predicates):
    return Demand(owner_id=owner, predicates=tuple(predicates))


class TestQuantityChecking:
    def test_sum_within_capacity(self):
        state = FakeState(pools={"w": 10})
        result = check_satisfiable(
            [demand("p1", quantity_at_least("w", 4)),
             demand("p2", quantity_at_least("w", 6))],
            state,
        )
        assert result.ok
        assert result.pool_usage == {"w": 10}

    def test_sum_exceeding_capacity_fails(self):
        state = FakeState(pools={"w": 9})
        result = check_satisfiable(
            [demand("p1", quantity_at_least("w", 4)),
             demand("p2", quantity_at_least("w", 6))],
            state,
        )
        assert not result.ok
        assert set(result.failed_owners) == {"p1", "p2"}
        assert "w" in result.reason

    def test_disjointness_semantics_of_section9(self):
        # balance>100 and balance>50 together require 150 (§9).
        state = FakeState(pools={"acct": 120})
        result = check_satisfiable(
            [demand("p1", quantity_at_least("acct", 100)),
             demand("p2", quantity_at_least("acct", 50))],
            state,
        )
        assert not result.ok

    def test_pool_offset_extends_capacity(self):
        state = FakeState(pools={"w": 3})
        result = check_satisfiable(
            [demand("p1", quantity_at_least("w", 5))],
            state,
            pool_offsets={"w": 2},
        )
        assert result.ok

    def test_unknown_pool_fails(self):
        result = check_satisfiable(
            [demand("p1", quantity_at_least("ghost", 1))], FakeState()
        )
        assert not result.ok


class TestInstanceChecking:
    def test_named_instance_available(self):
        state = FakeState(instances=[room("r1", 1)])
        result = check_satisfiable([demand("p1", named_available("r1"))], state)
        assert result.ok
        assert result.instances_for("p1") == ["r1"]

    def test_named_instance_taken_fails(self):
        state = FakeState(instances=[room("r1", 1, status="taken")])
        result = check_satisfiable([demand("p1", named_available("r1"))], state)
        assert not result.ok

    def test_duplicate_named_promises_fail(self):
        # §3.2: one named instance, at most one unexpired promise.
        state = FakeState(instances=[room("r1", 1)])
        result = check_satisfiable(
            [demand("p1", named_available("r1")),
             demand("p2", named_available("r1"))],
            state,
        )
        assert not result.ok

    def test_unknown_instance_fails(self):
        result = check_satisfiable(
            [demand("p1", named_available("ghost"))], FakeState()
        )
        assert not result.ok

    def test_tagged_instance_reserved_for_owner(self):
        state = FakeState(instances=[room("r1", 1, status="promised")])
        # Owner may re-match its own tagged instance...
        ok_result = check_satisfiable(
            [demand("p1", named_available("r1"))],
            state,
            tagged_instances={"r1": "p1"},
        )
        assert ok_result.ok
        # ...but nobody else may.
        bad_result = check_satisfiable(
            [demand("p2", named_available("r1"))],
            state,
            tagged_instances={"r1": "p1"},
        )
        assert not bad_result.ok


class TestPropertyChecking:
    def test_overlapping_predicates_resolved_by_matching(self):
        # §3.3: room 512 suits both 'view' and '5th floor'; the matching
        # must give each promise a distinct room.
        state = FakeState(
            instances=[
                room("room-101", 1, view=True),
                room("room-512", 5, view=True),
            ]
        )
        result = check_satisfiable(
            [
                demand("view", property_match("rooms", [where("view", "==", True)])),
                demand("floor5", property_match("rooms", [where("floor", "==", 5)])),
            ],
            state,
        )
        assert result.ok
        assert result.instances_for("floor5") == ["room-512"]
        assert result.instances_for("view") == ["room-101"]

    def test_overlap_without_enough_rooms_fails(self):
        state = FakeState(instances=[room("room-512", 5, view=True)])
        result = check_satisfiable(
            [
                demand("view", property_match("rooms", [where("view", "==", True)])),
                demand("floor5", property_match("rooms", [where("floor", "==", 5)])),
            ],
            state,
        )
        assert not result.ok

    def test_count_demand_takes_multiple_instances(self):
        state = FakeState(instances=[room(f"r{i}", 5) for i in range(3)])
        result = check_satisfiable(
            [demand("p1", property_match("rooms", [where("floor", "==", 5)], count=3))],
            state,
        )
        assert result.ok
        assert len(result.instances_for("p1")) == 3

    def test_named_excluded_from_anonymous_pool(self):
        # §3.2: a promise for seat 24G excludes it from 'any seat' counts.
        seats = [room("24F", 1), room("24G", 1)]
        state = FakeState(instances=seats)
        result = check_satisfiable(
            [
                demand("named", named_available("24G")),
                demand("any", property_match("rooms", count=2)),
            ],
            state,
        )
        assert not result.ok  # only 2 seats for 3 slots

    def test_named_and_anonymous_coexist_when_enough(self):
        seats = [room("24F", 1), room("24G", 1), room("24H", 1)]
        state = FakeState(instances=seats)
        result = check_satisfiable(
            [
                demand("named", named_available("24G")),
                demand("any", property_match("rooms", count=2)),
            ],
            state,
        )
        assert result.ok
        assert result.instances_for("named") == ["24G"]
        assert "24G" not in result.instances_for("any")


class TestOrBranches:
    def test_or_falls_back_to_second_branch(self):
        state = FakeState(pools={"a": 0, "b": 5})
        predicate = Or.of(quantity_at_least("a", 1), quantity_at_least("b", 1))
        result = check_satisfiable([demand("p1", predicate)], state)
        assert result.ok
        assert result.chosen_branches["p1"] == 1

    def test_or_across_promises_finds_compatible_combination(self):
        # Both promises prefer pool a (capacity 1); one must take b.
        state = FakeState(pools={"a": 1, "b": 1})
        predicate = Or.of(quantity_at_least("a", 1), quantity_at_least("b", 1))
        result = check_satisfiable(
            [demand("p1", predicate), demand("p2", predicate)], state
        )
        assert result.ok
        branches = {result.chosen_branches["p1"], result.chosen_branches["p2"]}
        assert branches == {0, 1}

    def test_unsatisfiable_or_fails(self):
        state = FakeState(pools={"a": 0, "b": 0})
        predicate = Or.of(quantity_at_least("a", 1), quantity_at_least("b", 1))
        result = check_satisfiable([demand("p1", predicate)], state)
        assert not result.ok

    def test_combination_explosion_bounded(self):
        predicate = Or.of(*[quantity_at_least(f"pool-{i}", 1) for i in range(4)])
        demands = [demand(f"p{i}", predicate) for i in range(5)]  # 4^5 > 256
        with pytest.raises(PredicateUnsupported):
            check_satisfiable(demands, FakeState())

    def test_mixed_and_or(self):
        state = FakeState(
            pools={"w": 5},
            instances=[room("r1", 5)],
        )
        predicate = And.of(
            quantity_at_least("w", 2),
            Or.of(named_available("r1"), named_available("r2")),
        )
        result = check_satisfiable([demand("p1", predicate)], state)
        assert result.ok
        assert result.instances_for("p1") == ["r1"]


class TestMultiPredicateDemands:
    def test_travel_style_all_or_nothing(self):
        state = FakeState(
            pools={"cars": 1},
            instances=[room("r1", 1)],
        )
        result = check_satisfiable(
            [demand("trip", quantity_at_least("cars", 1), named_available("r1"))],
            state,
        )
        assert result.ok

    def test_travel_style_fails_if_any_leg_fails(self):
        state = FakeState(pools={"cars": 0}, instances=[room("r1", 1)])
        result = check_satisfiable(
            [demand("trip", quantity_at_least("cars", 1), named_available("r1"))],
            state,
        )
        assert not result.ok

    def test_empty_demand_set_is_vacuously_satisfiable(self):
        result = check_satisfiable([], FakeState())
        assert result.ok
        assert result.assignment == {}
