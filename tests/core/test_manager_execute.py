"""Promise-manager action execution: the §8 pipeline."""

from __future__ import annotations

import pytest

from repro.core.environment import Environment
from repro.core.errors import ActionFailed, PromiseExpired, UnknownPromise
from repro.core.manager import ActionResult
from repro.core.parser import P
from repro.core.predicates import quantity_at_least
from repro.resources.records import InstanceStatus


def grant(manager, predicates, duration=10, client="alice"):
    response = manager.request_promise_for(predicates, duration, client)
    assert response.accepted
    return response.promise_id


class TestActionExecution:
    def test_successful_action_commits(self, pool_manager):
        def action(ctx):
            ctx.txn.put("pools", "marker", {"pool_id": "marker", "available": 0,
                                            "allocated": 0, "unit": "unit"})
            return ActionResult.ok("done")

        outcome = pool_manager.execute(action)
        assert outcome.success and outcome.value == "done"
        with pool_manager.store.begin() as txn:
            assert txn.exists("pools", "marker")

    def test_failed_action_rolls_back(self, pool_manager):
        def action(ctx):
            ctx.resources.remove_stock(ctx.txn, "widgets", 50)
            return ActionResult.failed("changed my mind")

        outcome = pool_manager.execute(action)
        assert not outcome.success
        with pool_manager.store.begin() as txn:
            assert pool_manager.resources.pool(txn, "widgets").available == 100

    def test_action_failed_exception_rolls_back(self, pool_manager):
        def action(ctx):
            ctx.resources.remove_stock(ctx.txn, "widgets", 50)
            raise ActionFailed("purchase", "no shipper")

        outcome = pool_manager.execute(action)
        assert not outcome.success
        assert "no shipper" in outcome.reason
        with pool_manager.store.begin() as txn:
            assert pool_manager.resources.pool(txn, "widgets").available == 100

    def test_unexpected_exception_propagates_but_aborts(self, pool_manager):
        def action(ctx):
            ctx.resources.remove_stock(ctx.txn, "widgets", 50)
            raise RuntimeError("bug in the application")

        with pytest.raises(RuntimeError):
            pool_manager.execute(action)
        with pool_manager.store.begin() as txn:
            assert pool_manager.resources.pool(txn, "widgets").available == 100

    def test_plain_return_value_is_success(self, pool_manager):
        outcome = pool_manager.execute(lambda ctx: 42)
        assert outcome.success and outcome.value == 42

    def test_environment_with_unknown_promise(self, pool_manager):
        with pytest.raises(UnknownPromise):
            pool_manager.execute(lambda ctx: 1, Environment.of("ghost"))

    def test_environment_with_expired_promise(self, pool_manager):
        promise_id = grant(pool_manager, [quantity_at_least("widgets", 1)], 5)
        pool_manager.clock.advance(6)
        with pytest.raises(PromiseExpired):
            pool_manager.execute(lambda ctx: 1, Environment.of(promise_id))

    def test_environment_with_released_promise(self, pool_manager):
        from repro.core.errors import PromiseStateError

        promise_id = grant(pool_manager, [quantity_at_least("widgets", 1)])
        pool_manager.release(promise_id)
        with pytest.raises(PromiseStateError):
            pool_manager.execute(lambda ctx: 1, Environment.of(promise_id))


class TestAtomicActionPlusRelease:
    """§4 second requirement: action and release succeed or fail together."""

    def test_success_consumes_promise(self, pool_manager):
        promise_id = grant(pool_manager, [quantity_at_least("widgets", 10)])
        outcome = pool_manager.execute(
            lambda ctx: "purchased",
            Environment.of(promise_id, release=[promise_id]),
        )
        assert outcome.success
        assert outcome.released == (promise_id,)
        assert not pool_manager.is_promise_active(promise_id)
        with pool_manager.store.begin() as txn:
            pool = pool_manager.resources.pool(txn, "widgets")
        assert (pool.available, pool.allocated) == (90, 0)

    def test_failure_keeps_promise(self, pool_manager):
        promise_id = grant(pool_manager, [quantity_at_least("widgets", 10)])
        outcome = pool_manager.execute(
            lambda ctx: ActionResult.failed("no shipper is available"),
            Environment.of(promise_id, release=[promise_id]),
        )
        assert not outcome.success
        # §4: "if the purchase fails ... the promise should remain in force"
        assert pool_manager.is_promise_active(promise_id)
        with pool_manager.store.begin() as txn:
            pool = pool_manager.resources.pool(txn, "widgets")
        assert (pool.available, pool.allocated) == (90, 10)

    def test_kept_promises_survive_success(self, pool_manager):
        keep = grant(pool_manager, [quantity_at_least("widgets", 5)])
        consume = grant(pool_manager, [quantity_at_least("widgets", 5)])
        outcome = pool_manager.execute(
            lambda ctx: "ok",
            Environment.of(keep, consume, release=[consume]),
        )
        assert outcome.success
        assert pool_manager.is_promise_active(keep)
        assert not pool_manager.is_promise_active(consume)


class TestViolationDetection:
    """§8 'Executing Actions': the post-action check and rollback."""

    def test_rogue_action_violating_sat_promise_rolls_back(self, manager):
        with manager.store.begin() as txn:
            manager.resources.create_pool(txn, "gadgets", 50)
        grant(manager, [quantity_at_least("gadgets", 30)])

        def rogue(ctx):
            # Drains stock below the promised threshold.
            ctx.resources.remove_stock(ctx.txn, "gadgets", 40)
            return "sold 40"

        outcome = manager.execute(rogue)
        assert not outcome.success
        assert outcome.violated
        with manager.store.begin() as txn:
            assert manager.resources.pool(txn, "gadgets").available == 50

    def test_action_within_headroom_commits(self, manager):
        with manager.store.begin() as txn:
            manager.resources.create_pool(txn, "gadgets", 50)
        grant(manager, [quantity_at_least("gadgets", 30)])

        outcome = manager.execute(
            lambda ctx: ctx.resources.remove_stock(ctx.txn, "gadgets", 20)
        )
        assert outcome.success
        with manager.store.begin() as txn:
            assert manager.resources.pool(txn, "gadgets").available == 30

    def test_rogue_action_taking_promised_room_rolls_back(self, rooms_manager):
        grant(rooms_manager, [P("match('rooms', floor == 5, count=2)")])

        def rogue(ctx):
            # Takes one of the only two 5th-floor rooms.
            ctx.resources.set_instance_status(
                ctx.txn, "room-512", InstanceStatus.TAKEN
            )
            return "stole the room"

        outcome = rooms_manager.execute(rogue)
        assert not outcome.success and outcome.violated
        with rooms_manager.store.begin() as txn:
            record = rooms_manager.resources.instance(txn, "room-512")
        assert record.status is InstanceStatus.AVAILABLE

    def test_taking_unpromised_room_is_fine(self, rooms_manager):
        grant(rooms_manager, [P("match('rooms', floor == 5, count=1)")])

        def action(ctx):
            ctx.resources.set_instance_status(
                ctx.txn, "room-101", InstanceStatus.TAKEN
            )
            return "took 101"

        outcome = rooms_manager.execute(action)
        assert outcome.success

    def test_violation_names_the_broken_promise(self, manager):
        with manager.store.begin() as txn:
            manager.resources.create_pool(txn, "gadgets", 50)
        promise_id = grant(manager, [quantity_at_least("gadgets", 30)])
        outcome = manager.execute(
            lambda ctx: ctx.resources.remove_stock(ctx.txn, "gadgets", 40)
        )
        assert promise_id in {v.promise_id for v in outcome.violations}

    def test_violating_a_released_promise_is_allowed(self, manager):
        """§8: changes may violate promises released atomically with the
        action."""
        with manager.store.begin() as txn:
            manager.resources.create_pool(txn, "gadgets", 50)
        promise_id = grant(manager, [quantity_at_least("gadgets", 30)])

        def consume_all(ctx):
            ctx.resources.remove_stock(ctx.txn, "gadgets", 20)
            return "drained below promise level"

        # Consuming 30 via release + draining 20 via the action leaves 0,
        # fine because the promise is released in the same unit.
        outcome = manager.execute(
            consume_all, Environment.of(promise_id, release=[promise_id])
        )
        assert outcome.success
        with manager.store.begin() as txn:
            assert manager.resources.pool(txn, "gadgets").available == 0


class TestSatisfiabilityConsumption:
    """Consuming a satisfiability promise takes the delayed-choice
    resources (§5)."""

    def test_consume_takes_matching_instance(self, rooms_manager):
        promise_id = grant(
            rooms_manager, [P("match('rooms', floor == 5, count=1)")]
        )
        outcome = rooms_manager.execute(
            lambda ctx: "booked",
            Environment.of(promise_id, release=[promise_id]),
        )
        assert outcome.success
        with rooms_manager.store.begin() as txn:
            taken = [
                record.instance_id
                for record in rooms_manager.resources.instances_in(txn, "rooms")
                if record.status is InstanceStatus.TAKEN
            ]
        assert len(taken) == 1
        assert taken[0] in ("room-512", "room-513")

    def test_consume_respects_other_promises(self, rooms_manager):
        # view promise must keep a viewed room even after the floor-5
        # promise consumes; the only safe choice for floor-5 is room-513.
        view2 = grant(
            rooms_manager, [P("match('rooms', view == true, count=2)")]
        )
        floor5 = grant(
            rooms_manager, [P("match('rooms', floor == 5, count=1)")]
        )
        outcome = rooms_manager.execute(
            lambda ctx: "booked", Environment.of(floor5, release=[floor5])
        )
        assert outcome.success
        with rooms_manager.store.begin() as txn:
            record = rooms_manager.resources.instance(txn, "room-513")
        assert record.status is InstanceStatus.TAKEN
        assert rooms_manager.is_promise_active(view2)

    def test_consume_quantity_removes_stock(self, manager):
        with manager.store.begin() as txn:
            manager.resources.create_pool(txn, "gadgets", 50)
        promise_id = grant(manager, [quantity_at_least("gadgets", 30)])
        outcome = manager.execute(
            lambda ctx: "bought", Environment.of(promise_id, release=[promise_id])
        )
        assert outcome.success
        with manager.store.begin() as txn:
            assert manager.resources.pool(txn, "gadgets").available == 20
