"""Unit tests for the predicate expression language."""

from __future__ import annotations

import pytest

from repro.core.errors import PredicateSyntaxError
from repro.core.parser import P, parse_predicate, render_predicate, tokenize
from repro.core.predicates import (
    And,
    InstanceAvailable,
    Not,
    Op,
    Or,
    PropertyMatch,
    QuantityAtLeast,
)


class TestTokenizer:
    def test_tokens_have_positions(self):
        tokens = tokenize("quantity('w') >= 5")
        assert tokens[0].kind == "QUANTITY"
        assert tokens[0].position == 0

    def test_keywords_are_distinguished(self):
        kinds = [token.kind for token in tokenize("and or not true false count in")]
        assert kinds == ["AND", "OR", "NOT", "TRUE", "FALSE", "COUNT", "IN"]

    def test_unknown_character_rejected(self):
        with pytest.raises(PredicateSyntaxError):
            tokenize("quantity('w') >= 5 @")

    def test_strings_with_escapes(self):
        tokens = tokenize(r"available('it\'s here')")
        assert tokens[2].kind == "STRING"


class TestQuantitySyntax:
    def test_basic(self):
        predicate = P("quantity('widgets') >= 5")
        assert predicate == QuantityAtLeast("widgets", 5)

    def test_only_ge_supported(self):
        for op in ("<=", "<", ">", "==", "!="):
            with pytest.raises(PredicateSyntaxError):
                P(f"quantity('w') {op} 5")

    def test_float_amount_rejected(self):
        with pytest.raises(PredicateSyntaxError):
            P("quantity('w') >= 2.5")

    def test_double_quotes(self):
        assert P('quantity("w") >= 1') == QuantityAtLeast("w", 1)


class TestAvailableSyntax:
    def test_basic(self):
        assert P("available('room-212@hilton@2007-03-12')") == InstanceAvailable(
            "room-212@hilton@2007-03-12"
        )


class TestMatchSyntax:
    def test_no_conditions(self):
        predicate = P("match('rooms')")
        assert predicate == PropertyMatch("rooms", (), 1)

    def test_count_only(self):
        predicate = P("match('rooms', count=3)")
        assert predicate == PropertyMatch("rooms", (), 3)

    def test_conditions(self):
        predicate = P("match('rooms', floor == 5 and view == true)")
        assert isinstance(predicate, PropertyMatch)
        assert len(predicate.conditions) == 2
        assert predicate.conditions[0].name == "floor"
        assert predicate.conditions[1].value is True

    def test_conditions_and_count(self):
        predicate = P("match('rooms', floor >= 2, count=2)")
        assert predicate.count == 2
        assert predicate.conditions[0].op is Op.GE

    def test_or_better_tilde(self):
        predicate = P("match('seats', cabin == 'economy'~)")
        assert predicate.conditions[0].or_better

    def test_or_better_requires_equality(self):
        with pytest.raises(PredicateSyntaxError):
            P("match('seats', row >= 10~)")

    def test_in_lists(self):
        predicate = P("match('rooms', floor in [1, 3, 5])")
        condition = predicate.conditions[0]
        assert condition.op is Op.IN
        assert condition.value == (1, 3, 5)

    def test_string_and_float_literals(self):
        predicate = P("match('rooms', beds == 'twin' and rate <= 99.5)")
        assert predicate.conditions[0].value == "twin"
        assert predicate.conditions[1].value == 99.5

    def test_float_count_rejected(self):
        with pytest.raises(PredicateSyntaxError):
            P("match('rooms', count=1.5)")

    def test_function_keywords_as_property_names(self):
        # Keywords are context-sensitive: fine as property names.
        predicate = P("match('c', match == 1 and quantity >= 2 and count != 3)")
        assert [c.name for c in predicate.conditions] == [
            "match", "quantity", "count",
        ]

    def test_bare_count_property_vs_count_clause(self):
        with_clause = P("match('c', count >= 5, count=2)")
        assert with_clause.count == 2
        assert with_clause.conditions[0].name == "count"

    def test_boolean_keywords_stay_reserved(self):
        with pytest.raises(PredicateSyntaxError):
            P("match('c', and == 1)")


class TestCombinators:
    def test_and(self):
        predicate = P("quantity('a') >= 1 and quantity('b') >= 2")
        assert isinstance(predicate, And)
        assert len(predicate.children) == 2

    def test_or(self):
        predicate = P("available('x') or available('y')")
        assert isinstance(predicate, Or)

    def test_not(self):
        predicate = P("not available('x')")
        assert isinstance(predicate, Not)

    def test_precedence_and_binds_tighter(self):
        predicate = P(
            "quantity('a') >= 1 or quantity('b') >= 1 and quantity('c') >= 1"
        )
        assert isinstance(predicate, Or)
        assert isinstance(predicate.children[1], And)

    def test_parentheses_override(self):
        predicate = P(
            "(quantity('a') >= 1 or quantity('b') >= 1) and quantity('c') >= 1"
        )
        assert isinstance(predicate, And)
        assert isinstance(predicate.children[0], Or)

    def test_nested_not(self):
        predicate = P("not not available('x')")
        assert isinstance(predicate, Not)
        assert isinstance(predicate.child, Not)


class TestErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "",
            "quantity('w')",
            "quantity('w') >=",
            "available()",
            "match()",
            "quantity('w') >= 5 extra",
            "(quantity('w') >= 5",
            "match('rooms', floor ==)",
            "and quantity('w') >= 1",
            "match('rooms', count=)",
        ],
    )
    def test_rejects(self, source):
        with pytest.raises(PredicateSyntaxError):
            parse_predicate(source)

    def test_error_carries_position(self):
        with pytest.raises(PredicateSyntaxError) as excinfo:
            parse_predicate("quantity('w') == 5")
        assert excinfo.value.position is not None


class TestRendering:
    @pytest.mark.parametrize(
        "source",
        [
            "quantity('widgets') >= 5",
            "available('room-212')",
            "match('rooms', count=1)",
            "match('rooms', floor == 5 and view == true, count=2)",
            "match('seats', cabin == 'economy'~, count=1)",
            "match('rooms', floor in [1, 3, 5], count=1)",
            "quantity('a') >= 1 and quantity('b') >= 2",
            "available('x') or available('y')",
            "not available('x')",
            "(quantity('a') >= 1 or available('x')) and quantity('c') >= 3",
        ],
    )
    def test_roundtrip(self, source):
        parsed = parse_predicate(source)
        rendered = render_predicate(parsed)
        assert parse_predicate(rendered) == parsed

    def test_string_escaping_roundtrip(self):
        predicate = PropertyMatch(
            "rooms", (P("match('x', a == 'it\\'s')").conditions), 1
        )
        rendered = render_predicate(predicate)
        assert parse_predicate(rendered) == predicate
