"""Tests for counter-offers — §6's 'accepted with the condition XX'.

The manager can answer a rejection with the strongest *weakening* of the
request it could actually grant, computed by probing the grant path in a
sacrificial transaction.
"""

from __future__ import annotations

import pytest

from repro.core.manager import PromiseManager
from repro.core.parser import P
from repro.core.predicates import PropertyMatch, QuantityAtLeast
from repro.core.promise import PromiseResponse
from repro.resources.manager import ResourceManager
from repro.storage.store import Store
from repro.strategies.registry import StrategyRegistry
from repro.strategies.resource_pool import ResourcePoolStrategy


@pytest.fixture
def offering_manager(store, resources, clock):
    registry = StrategyRegistry()
    registry.assign("widgets", ResourcePoolStrategy())
    manager = PromiseManager(
        store=store, resources=resources, clock=clock,
        registry=registry, name="offer", counter_offers=True,
    )
    with store.begin() as txn:
        resources.create_pool(txn, "widgets", 30)
    return manager


class TestProbe:
    def test_probe_leaves_no_trace(self, offering_manager):
        assert offering_manager.probe([QuantityAtLeast("widgets", 10)], 10)
        with offering_manager.store.begin() as txn:
            pool = offering_manager.resources.pool(txn, "widgets")
        assert (pool.available, pool.allocated) == (30, 0)
        assert offering_manager.active_promises() == []

    def test_probe_false_beyond_capacity(self, offering_manager):
        assert not offering_manager.probe([QuantityAtLeast("widgets", 31)], 10)

    def test_probe_accounts_for_existing_promises(self, offering_manager):
        offering_manager.request_promise_for([QuantityAtLeast("widgets", 20)], 50)
        assert offering_manager.probe([QuantityAtLeast("widgets", 10)], 10)
        assert not offering_manager.probe([QuantityAtLeast("widgets", 11)], 10)

    def test_probe_refuses_delegated_resources(self, offering_manager):
        from repro.strategies.delegation import DelegationStrategy

        upstream = PromiseManager(name="up")
        with upstream.store.begin() as txn:
            upstream.resources.create_pool(txn, "remote", 100)
        offering_manager.registry.assign(
            "remote", DelegationStrategy(upstream, "probe-test")
        )
        assert not offering_manager.probe([QuantityAtLeast("remote", 1)], 10)
        # And no upstream promise leaked.
        assert upstream.active_promises() == []


class TestQuantityCounterOffers:
    def test_offers_max_grantable_amount(self, offering_manager):
        response = offering_manager.request_promise_for(
            [QuantityAtLeast("widgets", 50)], 10
        )
        assert not response.accepted
        assert response.counter == QuantityAtLeast("widgets", 30)

    def test_offer_reflects_outstanding_promises(self, offering_manager):
        offering_manager.request_promise_for([QuantityAtLeast("widgets", 25)], 50)
        response = offering_manager.request_promise_for(
            [QuantityAtLeast("widgets", 10)], 10
        )
        assert response.counter == QuantityAtLeast("widgets", 5)

    def test_no_offer_when_nothing_grantable(self, offering_manager):
        offering_manager.request_promise_for([QuantityAtLeast("widgets", 30)], 50)
        response = offering_manager.request_promise_for(
            [QuantityAtLeast("widgets", 5)], 10
        )
        assert not response.accepted
        assert response.counter is None

    def test_counter_offer_is_actually_grantable(self, offering_manager):
        response = offering_manager.request_promise_for(
            [QuantityAtLeast("widgets", 50)], 10
        )
        accepted = offering_manager.request_promise_for([response.counter], 10)
        assert accepted.accepted

    def test_disabled_by_default(self, pool_manager):
        response = pool_manager.request_promise_for(
            [QuantityAtLeast("widgets", 500)], 10
        )
        assert response.counter is None

    def test_multi_predicate_requests_get_no_offer(self, offering_manager):
        with offering_manager.store.begin() as txn:
            offering_manager.resources.create_pool(txn, "gadgets", 5)
        response = offering_manager.request_promise_for(
            [QuantityAtLeast("widgets", 500), QuantityAtLeast("gadgets", 1)],
            10,
        )
        assert response.counter is None


class TestPropertyCounterOffers:
    @pytest.fixture
    def hotel(self, store, resources, clock):
        from tests.conftest import ROOMS, ROOMS_SCHEMA

        manager = PromiseManager(
            store=store, resources=resources, clock=clock,
            name="hotel", counter_offers=True,
        )
        with store.begin() as txn:
            resources.define_collection(txn, ROOMS_SCHEMA)
            for instance_id, properties in ROOMS.items():
                resources.add_instance(txn, instance_id, "rooms", dict(properties))
        return manager

    def test_offers_max_grantable_count(self, hotel):
        # Only two rooms have a view.
        response = hotel.request_promise_for(
            [P("match('rooms', view == true, count=4)")], 10
        )
        assert not response.accepted
        assert isinstance(response.counter, PropertyMatch)
        assert response.counter.count == 2
        assert response.counter.conditions == response.counter.conditions

    def test_count_one_requests_get_no_offer(self, hotel):
        hotel.request_promise_for([P("match('rooms', view == true, count=2)")], 50)
        response = hotel.request_promise_for(
            [P("match('rooms', view == true, count=1)")], 10
        )
        assert response.counter is None


class TestCounterOffersOverTheWire:
    def test_counter_survives_xml(self):
        from repro.services import Deployment

        deployment = Deployment(name="shop", counter_offers=True)
        deployment.use_pool_strategy("widgets")
        with deployment.seed() as txn:
            deployment.resources.create_pool(txn, "widgets", 12)
        client = deployment.client("alice")
        response = client.request_promise(
            "shop", [P("quantity('widgets') >= 100")], 10
        )
        assert not response.accepted
        assert response.counter == QuantityAtLeast("widgets", 12)
        # Accept the counter-offer by re-requesting it.
        accepted = client.request_promise("shop", [response.counter], 10)
        assert accepted.accepted

    def test_serialisation_roundtrip(self):
        response = PromiseResponse.rejected(
            "req-1", "not enough", counter=QuantityAtLeast("w", 7)
        )
        decoded = PromiseResponse.from_dict(response.to_dict())
        assert decoded.counter == QuantityAtLeast("w", 7)
