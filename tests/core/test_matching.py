"""Unit tests for Hopcroft–Karp bipartite matching."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.matching import (
    is_perfect_for_left,
    maximum_bipartite_matching,
    unmatched_lefts,
)


class TestSmallGraphs:
    def test_empty(self):
        assert maximum_bipartite_matching({}) == {}

    def test_single_edge(self):
        assert maximum_bipartite_matching({"l": ["r"]}) == {"l": "r"}

    def test_left_with_no_candidates(self):
        matching = maximum_bipartite_matching({"l": []})
        assert matching == {}

    def test_two_competing_for_one(self):
        matching = maximum_bipartite_matching({"a": ["r"], "b": ["r"]})
        assert len(matching) == 1

    def test_augmenting_path_needed(self):
        # a prefers r1 but must cede it to b, which has no alternative.
        adjacency = {"a": ["r1", "r2"], "b": ["r1"]}
        matching = maximum_bipartite_matching(adjacency)
        assert matching == {"a": "r2", "b": "r1"}

    def test_long_augmenting_chain(self):
        adjacency = {
            "a": ["1"],
            "b": ["1", "2"],
            "c": ["2", "3"],
            "d": ["3", "4"],
        }
        matching = maximum_bipartite_matching(adjacency)
        assert len(matching) == 4

    def test_matching_is_injective(self):
        adjacency = {f"l{i}": ["r1", "r2", "r3"] for i in range(3)}
        matching = maximum_bipartite_matching(adjacency)
        assert len(set(matching.values())) == len(matching) == 3


class TestPerfectMatching:
    def test_saturated(self):
        saturated, __ = is_perfect_for_left({"a": ["x"], "b": ["y"]})
        assert saturated

    def test_unsaturated(self):
        saturated, matching = is_perfect_for_left({"a": ["x"], "b": ["x"]})
        assert not saturated
        assert len(matching) == 1

    def test_unmatched_lefts(self):
        adjacency = {"a": ["x"], "b": ["x"], "c": []}
        matching = maximum_bipartite_matching(adjacency)
        missing = unmatched_lefts(adjacency, matching)
        assert len(missing) == 2


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_networkx_cardinality(self, seed):
        import random

        rng = random.Random(seed)
        lefts = [f"l{i}" for i in range(rng.randint(1, 12))]
        rights = [f"r{i}" for i in range(rng.randint(1, 12))]
        adjacency = {
            left: [right for right in rights if rng.random() < 0.4]
            for left in lefts
        }
        ours = maximum_bipartite_matching(adjacency)

        graph = nx.Graph()
        graph.add_nodes_from(lefts, bipartite=0)
        graph.add_nodes_from(rights, bipartite=1)
        for left, candidates in adjacency.items():
            for right in candidates:
                graph.add_edge(left, right)
        reference = nx.bipartite.maximum_matching(graph, top_nodes=lefts)
        # networkx returns both directions; halve it.
        assert len(ours) == len(reference) // 2
