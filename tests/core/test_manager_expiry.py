"""Promise expiry semantics (paper, §2)."""

from __future__ import annotations

import pytest

from repro.core.errors import PromiseExpired
from repro.core.environment import Environment
from repro.core.parser import P
from repro.core.predicates import quantity_at_least
from repro.core.promise import PromiseStatus
from repro.resources.records import InstanceStatus


class TestExpirySweep:
    def test_expire_due_marks_and_reports(self, pool_manager):
        response = pool_manager.request_promise_for(
            [quantity_at_least("widgets", 10)], duration=5
        )
        pool_manager.clock.advance(5)
        expired = pool_manager.expire_due()
        assert expired == [response.promise_id]
        assert (
            pool_manager.promise(response.promise_id).status
            is PromiseStatus.EXPIRED
        )

    def test_expiry_returns_escrowed_units(self, pool_manager):
        pool_manager.request_promise_for([quantity_at_least("widgets", 10)], 5)
        pool_manager.clock.advance(5)
        pool_manager.expire_due()
        with pool_manager.store.begin() as txn:
            pool = pool_manager.resources.pool(txn, "widgets")
        assert (pool.available, pool.allocated) == (100, 0)

    def test_expiry_frees_tagged_rooms(self, tagged_rooms_manager):
        manager = tagged_rooms_manager
        manager.request_promise_for([P("available('room-512')")], 5)
        manager.clock.advance(5)
        manager.expire_due()
        with manager.store.begin() as txn:
            record = manager.resources.instance(txn, "room-512")
        assert record.status is InstanceStatus.AVAILABLE

    def test_unexpired_promises_untouched(self, pool_manager):
        keep = pool_manager.request_promise_for(
            [quantity_at_least("widgets", 5)], duration=100
        )
        drop = pool_manager.request_promise_for(
            [quantity_at_least("widgets", 5)], duration=5
        )
        pool_manager.clock.advance(10)
        expired = pool_manager.expire_due()
        assert expired == [drop.promise_id]
        assert pool_manager.is_promise_active(keep.promise_id)

    def test_sweep_runs_implicitly_on_grant(self, pool_manager):
        # Fill the pool, let it all expire, then a new grant must succeed
        # without anyone calling expire_due.
        pool_manager.request_promise_for([quantity_at_least("widgets", 100)], 5)
        pool_manager.clock.advance(6)
        response = pool_manager.request_promise_for(
            [quantity_at_least("widgets", 100)], duration=5
        )
        assert response.accepted


class TestExpiredUse:
    def test_execute_under_expired_promise_errors(self, pool_manager):
        """§2: 'promise-expired' errors for operations under expired
        promises."""
        response = pool_manager.request_promise_for(
            [quantity_at_least("widgets", 10)], duration=5
        )
        pool_manager.clock.advance(10)
        with pytest.raises(PromiseExpired):
            pool_manager.execute(
                lambda ctx: "too late",
                Environment.of(response.promise_id, release=[response.promise_id]),
            )

    def test_exact_boundary_tick_is_expired(self, pool_manager):
        response = pool_manager.request_promise_for(
            [quantity_at_least("widgets", 1)], duration=5
        )
        pool_manager.clock.advance(5)  # expires_at == now
        with pytest.raises(PromiseExpired):
            pool_manager.execute(
                lambda ctx: 1, Environment.of(response.promise_id)
            )

    def test_just_before_expiry_still_works(self, pool_manager):
        response = pool_manager.request_promise_for(
            [quantity_at_least("widgets", 1)], duration=5
        )
        pool_manager.clock.advance(4)
        outcome = pool_manager.execute(
            lambda ctx: "in time",
            Environment.of(response.promise_id, release=[response.promise_id]),
        )
        assert outcome.success

    def test_expired_capacity_is_reusable_by_others(self, pool_manager):
        pool_manager.request_promise_for([quantity_at_least("widgets", 100)], 5)
        blocked = pool_manager.request_promise_for(
            [quantity_at_least("widgets", 1)], duration=5
        )
        assert not blocked.accepted
        pool_manager.clock.advance(6)
        retry = pool_manager.request_promise_for(
            [quantity_at_least("widgets", 1)], duration=5
        )
        assert retry.accepted

    def test_is_promise_active_reflects_expiry_without_sweep(self, pool_manager):
        response = pool_manager.request_promise_for(
            [quantity_at_least("widgets", 1)], duration=5
        )
        pool_manager.clock.advance(5)
        assert not pool_manager.is_promise_active(response.promise_id)


class TestVacuum:
    def test_vacuum_drops_dead_promises(self, pool_manager):
        a = pool_manager.request_promise_for([quantity_at_least("widgets", 1)], 5)
        b = pool_manager.request_promise_for([quantity_at_least("widgets", 1)], 50)
        pool_manager.release(a.promise_id)
        assert pool_manager.vacuum() == 1
        assert pool_manager.is_promise_active(b.promise_id)
