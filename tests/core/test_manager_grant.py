"""Promise-manager grant/reject/release semantics."""

from __future__ import annotations

import pytest

from repro.core.errors import (
    PromiseExpired,
    PromiseStateError,
    UnknownPromise,
)
from repro.core.parser import P
from repro.core.promise import PromiseStatus
from repro.core.predicates import quantity_at_least


class TestGranting:
    def test_grant_within_capacity(self, pool_manager):
        response = pool_manager.request_promise_for(
            [quantity_at_least("widgets", 10)], duration=10
        )
        assert response.accepted
        assert response.promise_id is not None
        assert response.duration == 10

    def test_escrow_moves_units(self, pool_manager):
        pool_manager.request_promise_for([quantity_at_least("widgets", 10)], 10)
        with pool_manager.store.begin() as txn:
            pool = pool_manager.resources.pool(txn, "widgets")
        assert (pool.available, pool.allocated) == (90, 10)

    def test_reject_beyond_capacity(self, pool_manager):
        response = pool_manager.request_promise_for(
            [quantity_at_least("widgets", 101)], duration=10
        )
        assert not response.accepted
        assert "widgets" in response.reason

    def test_rejection_leaves_no_trace(self, pool_manager):
        pool_manager.request_promise_for([quantity_at_least("widgets", 101)], 10)
        with pool_manager.store.begin() as txn:
            pool = pool_manager.resources.pool(txn, "widgets")
            assert (pool.available, pool.allocated) == (100, 0)
            assert pool_manager.table.count_active(txn) == 0

    def test_concurrent_promises_up_to_capacity(self, pool_manager):
        granted = 0
        for __ in range(12):
            response = pool_manager.request_promise_for(
                [quantity_at_least("widgets", 10)], duration=10
            )
            granted += 1 if response.accepted else 0
        assert granted == 10  # 10 × 10 units fills the 100-unit pool

    def test_correlation_echoes_request_id(self, pool_manager):
        from repro.core.promise import PromiseRequest

        request = PromiseRequest(
            "my-req", (quantity_at_least("widgets", 1),), duration=5
        )
        response = pool_manager.request_promise(request)
        assert response.correlation == "my-req"

    def test_max_duration_caps_grant(self, pool_manager):
        pool_manager.max_duration = 5
        response = pool_manager.request_promise_for(
            [quantity_at_least("widgets", 1)], duration=50
        )
        assert response.accepted
        assert response.duration == 5

    def test_promise_recorded_in_table(self, pool_manager):
        response = pool_manager.request_promise_for(
            [quantity_at_least("widgets", 3)], duration=10, client_id="alice"
        )
        promise = pool_manager.promise(response.promise_id)
        assert promise.client_id == "alice"
        assert promise.status is PromiseStatus.ACTIVE
        assert promise.expires_at == 10


class TestRelease:
    def test_release_returns_units(self, pool_manager):
        response = pool_manager.request_promise_for(
            [quantity_at_least("widgets", 10)], duration=10
        )
        pool_manager.release(response.promise_id)
        with pool_manager.store.begin() as txn:
            pool = pool_manager.resources.pool(txn, "widgets")
        assert (pool.available, pool.allocated) == (100, 0)
        assert not pool_manager.is_promise_active(response.promise_id)

    def test_release_with_consume_drains_units(self, pool_manager):
        response = pool_manager.request_promise_for(
            [quantity_at_least("widgets", 10)], duration=10
        )
        pool_manager.release(response.promise_id, consume=True)
        with pool_manager.store.begin() as txn:
            pool = pool_manager.resources.pool(txn, "widgets")
        assert (pool.available, pool.allocated) == (90, 0)

    def test_release_unknown_raises(self, pool_manager):
        with pytest.raises(UnknownPromise):
            pool_manager.release("ghost")

    def test_double_release_raises(self, pool_manager):
        response = pool_manager.request_promise_for(
            [quantity_at_least("widgets", 1)], duration=10
        )
        pool_manager.release(response.promise_id)
        with pytest.raises(PromiseStateError):
            pool_manager.release(response.promise_id)

    def test_release_expired_raises(self, pool_manager):
        response = pool_manager.request_promise_for(
            [quantity_at_least("widgets", 1)], duration=5
        )
        pool_manager.clock.advance(6)
        with pytest.raises(PromiseExpired):
            pool_manager.release(response.promise_id)


class TestSatisfiabilityDefault:
    def test_grant_without_mutating_resources(self, manager):
        with manager.store.begin() as txn:
            manager.resources.create_pool(txn, "gadgets", 50)
        response = manager.request_promise_for(
            [quantity_at_least("gadgets", 30)], duration=10
        )
        assert response.accepted
        with manager.store.begin() as txn:
            pool = manager.resources.pool(txn, "gadgets")
        # Satisfiability strategy records nothing in the RM.
        assert (pool.available, pool.allocated) == (50, 0)

    def test_joint_demand_respected(self, manager):
        with manager.store.begin() as txn:
            manager.resources.create_pool(txn, "gadgets", 50)
        first = manager.request_promise_for([quantity_at_least("gadgets", 30)], 10)
        second = manager.request_promise_for([quantity_at_least("gadgets", 30)], 10)
        assert first.accepted
        assert not second.accepted  # 60 > 50: §9 disjointness

    def test_release_frees_demand(self, manager):
        with manager.store.begin() as txn:
            manager.resources.create_pool(txn, "gadgets", 50)
        first = manager.request_promise_for([quantity_at_least("gadgets", 30)], 10)
        manager.release(first.promise_id)
        second = manager.request_promise_for([quantity_at_least("gadgets", 30)], 10)
        assert second.accepted


class TestPropertyPromises:
    def test_overlapping_predicates_coexist(self, rooms_manager):
        view = rooms_manager.request_promise_for(
            [P("match('rooms', view == true, count=1)")], 10
        )
        floor5 = rooms_manager.request_promise_for(
            [P("match('rooms', floor == 5, count=1)")], 10
        )
        assert view.accepted and floor5.accepted

    def test_exhaustion_rejected(self, rooms_manager):
        # Two rooms have view=True (102, 512).
        first = rooms_manager.request_promise_for(
            [P("match('rooms', view == true, count=2)")], 10
        )
        second = rooms_manager.request_promise_for(
            [P("match('rooms', view == true, count=1)")], 10
        )
        assert first.accepted
        assert not second.accepted

    def test_or_better_grade(self, rooms_manager):
        # All suite+deluxe rooms: 201, 512 (deluxe), 513 (suite).
        response = rooms_manager.request_promise_for(
            [P("match('rooms', grade == 'deluxe'~, count=3)")], 10
        )
        assert response.accepted

    def test_or_predicate_hedges(self, rooms_manager):
        response = rooms_manager.request_promise_for(
            [P("available('room-999') or available('room-101')")], 10
        )
        assert response.accepted

    def test_multi_client_isolation(self, rooms_manager):
        # Five rooms total; a sixth single-room promise must fail.
        granted = 0
        for __ in range(6):
            response = rooms_manager.request_promise_for(
                [P("match('rooms', count=1)")], 10
            )
            granted += 1 if response.accepted else 0
        assert granted == 5


class TestAtomicMultiPredicate:
    """§4 first requirement: several predicates grant as a unit."""

    def test_all_granted_together(self, pool_manager):
        with pool_manager.store.begin() as txn:
            pool_manager.resources.create_pool(txn, "cars", 5)
        pool_manager.registry.assign(
            "cars", pool_manager.registry.strategy_for("widgets")
        )
        response = pool_manager.request_promise_for(
            [quantity_at_least("widgets", 10), quantity_at_least("cars", 1)],
            duration=10,
        )
        assert response.accepted

    def test_one_failing_leg_rejects_all(self, pool_manager):
        with pool_manager.store.begin() as txn:
            pool_manager.resources.create_pool(txn, "cars", 0)
        pool_manager.registry.assign(
            "cars", pool_manager.registry.strategy_for("widgets")
        )
        response = pool_manager.request_promise_for(
            [quantity_at_least("widgets", 10), quantity_at_least("cars", 1)],
            duration=10,
        )
        assert not response.accepted
        # The widgets escrow from the first leg must have been undone.
        with pool_manager.store.begin() as txn:
            pool = pool_manager.resources.pool(txn, "widgets")
        assert (pool.available, pool.allocated) == (100, 0)

    def test_predicates_spanning_strategies(self, pool_manager):
        # widgets uses the pool strategy; gadgets falls to the default
        # satisfiability strategy — one request may span both.
        with pool_manager.store.begin() as txn:
            pool_manager.resources.create_pool(txn, "gadgets", 5)
        response = pool_manager.request_promise_for(
            [quantity_at_least("widgets", 10), quantity_at_least("gadgets", 2)],
            duration=10,
        )
        assert response.accepted
        promise = pool_manager.promise(response.promise_id)
        assert set(promise.meta["strategies"]) == {
            "resource_pool",
            "satisfiability",
        }
