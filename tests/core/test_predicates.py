"""Unit tests for the predicate model."""

from __future__ import annotations

import pytest

from repro.core.errors import PredicateError, PredicateUnsupported
from repro.core.predicates import (
    And,
    InstanceAvailable,
    InstanceState,
    Not,
    Op,
    Or,
    Predicate,
    PropertyCondition,
    PropertyMatch,
    QuantityAtLeast,
    named_available,
    property_match,
    quantity_at_least,
    where,
)


class FakeState:
    """Minimal ResourceStateView for predicate evaluation."""

    def __init__(self, pools=None, instances=None, orderings=None):
        self._pools = pools or {}
        self._instances = {i.instance_id: i for i in (instances or [])}
        self._orderings = orderings or {}

    def pool_available(self, pool_id):
        return self._pools.get(pool_id, 0)

    def instance(self, instance_id):
        return self._instances.get(instance_id)

    def instances_in(self, collection_id):
        return [
            i for i in self._instances.values()
            if i.collection_id == collection_id
        ]

    def property_ordering(self, collection_id, name):
        return self._orderings.get((collection_id, name))


def room(instance_id, floor, view=False, status="available", grade="standard"):
    return InstanceState(
        instance_id=instance_id,
        collection_id="rooms",
        status=status,
        properties={"floor": floor, "view": view, "grade": grade},
    )


class TestQuantityAtLeast:
    def test_satisfied(self):
        state = FakeState(pools={"w": 10})
        assert QuantityAtLeast("w", 5).evaluate(state)

    def test_boundary_exact(self):
        state = FakeState(pools={"w": 5})
        assert QuantityAtLeast("w", 5).evaluate(state)

    def test_unsatisfied(self):
        state = FakeState(pools={"w": 4})
        assert not QuantityAtLeast("w", 5).evaluate(state)

    def test_unknown_pool_is_empty(self):
        assert not QuantityAtLeast("nope", 1).evaluate(FakeState())

    def test_zero_or_negative_amount_rejected(self):
        with pytest.raises(PredicateError):
            QuantityAtLeast("w", 0)
        with pytest.raises(PredicateError):
            QuantityAtLeast("w", -3)

    def test_resources(self):
        assert QuantityAtLeast("w", 1).resources() == frozenset({"w"})

    def test_serialisation_roundtrip(self):
        predicate = quantity_at_least("w", 7)
        assert Predicate.from_dict(predicate.to_dict()) == predicate


class TestInstanceAvailable:
    def test_available(self):
        state = FakeState(instances=[room("r1", 1)])
        assert InstanceAvailable("r1").evaluate(state)

    def test_promised_still_counts_as_not_taken(self):
        # Evaluation in isolation only excludes TAKEN instances — promise
        # ownership is the checker's concern, not the predicate's.
        state = FakeState(instances=[room("r1", 1, status="promised")])
        assert InstanceAvailable("r1").evaluate(state)

    def test_taken_fails(self):
        state = FakeState(instances=[room("r1", 1, status="taken")])
        assert not InstanceAvailable("r1").evaluate(state)

    def test_unknown_instance_fails(self):
        assert not InstanceAvailable("ghost").evaluate(FakeState())

    def test_serialisation_roundtrip(self):
        predicate = named_available("seat-24G")
        assert Predicate.from_dict(predicate.to_dict()) == predicate


class TestPropertyMatch:
    def test_count_satisfied(self):
        state = FakeState(instances=[room("r1", 5), room("r2", 5)])
        assert property_match("rooms", [where("floor", "==", 5)], count=2).evaluate(state)

    def test_count_unsatisfied(self):
        state = FakeState(instances=[room("r1", 5)])
        assert not property_match("rooms", [where("floor", "==", 5)], count=2).evaluate(state)

    def test_empty_conditions_match_anything(self):
        state = FakeState(instances=[room("r1", 1), room("r2", 2)])
        assert property_match("rooms", count=2).evaluate(state)

    def test_taken_instances_excluded(self):
        state = FakeState(instances=[room("r1", 5, status="taken")])
        assert not property_match("rooms", [where("floor", "==", 5)]).evaluate(state)

    def test_missing_property_never_matches(self):
        state = FakeState(instances=[room("r1", 5)])
        assert not property_match("rooms", [where("wifi", "==", True)]).evaluate(state)

    def test_inequality_operators(self):
        state = FakeState(instances=[room("r1", 3)])
        assert property_match("rooms", [where("floor", ">=", 2)]).evaluate(state)
        assert property_match("rooms", [where("floor", "<", 4)]).evaluate(state)
        assert not property_match("rooms", [where("floor", ">", 3)]).evaluate(state)

    def test_in_operator(self):
        state = FakeState(instances=[room("r1", 3)])
        assert property_match("rooms", [where("floor", Op.IN, (1, 3, 5))]).evaluate(state)
        assert not property_match("rooms", [where("floor", Op.IN, (2, 4))]).evaluate(state)

    def test_type_mismatch_is_false_not_error(self):
        state = FakeState(instances=[room("r1", "three")])
        assert not property_match("rooms", [where("floor", ">=", 2)]).evaluate(state)

    def test_or_better_with_ordering(self):
        state = FakeState(
            instances=[room("r1", 1, grade="deluxe")],
            orderings={("rooms", "grade"): ("standard", "deluxe", "suite")},
        )
        better = property_match(
            "rooms", [where("grade", "==", "standard", or_better=True)]
        )
        assert better.evaluate(state)

    def test_or_better_rejects_worse(self):
        state = FakeState(
            instances=[room("r1", 1, grade="standard")],
            orderings={("rooms", "grade"): ("standard", "deluxe", "suite")},
        )
        predicate = property_match(
            "rooms", [where("grade", "==", "deluxe", or_better=True)]
        )
        assert not predicate.evaluate(state)

    def test_or_better_without_ordering_is_plain_equality(self):
        state = FakeState(instances=[room("r1", 1, grade="deluxe")])
        predicate = property_match(
            "rooms", [where("grade", "==", "standard", or_better=True)]
        )
        assert not predicate.evaluate(state)

    def test_or_better_requires_equality(self):
        with pytest.raises(PredicateError):
            PropertyCondition("grade", Op.GE, "standard", or_better=True)

    def test_zero_count_rejected(self):
        with pytest.raises(PredicateError):
            property_match("rooms", count=0)

    def test_serialisation_roundtrip(self):
        predicate = property_match(
            "rooms",
            [where("floor", "==", 5), where("grade", "==", "deluxe", or_better=True)],
            count=3,
        )
        assert Predicate.from_dict(predicate.to_dict()) == predicate


class TestCombinators:
    def setup_method(self):
        self.a = quantity_at_least("w", 1)
        self.b = quantity_at_least("x", 2)
        self.c = named_available("r1")

    def test_and_evaluation(self):
        state = FakeState(pools={"w": 5, "x": 5})
        assert (self.a & self.b).evaluate(state)
        assert not (self.a & quantity_at_least("x", 99)).evaluate(state)

    def test_or_evaluation(self):
        state = FakeState(pools={"w": 5})
        assert (self.a | self.b).evaluate(state)
        assert not (self.b | quantity_at_least("y", 1)).evaluate(state)

    def test_not_evaluation(self):
        state = FakeState(pools={"w": 5})
        assert (~self.b).evaluate(state)
        assert not (~self.a).evaluate(state)

    def test_and_flattens(self):
        nested = And.of(self.a, And.of(self.b, self.c))
        assert len(nested.children) == 3

    def test_or_flattens(self):
        nested = Or.of(self.a, Or.of(self.b, self.c))
        assert len(nested.children) == 3

    def test_empty_combinator_rejected(self):
        with pytest.raises(PredicateError):
            And.of()
        with pytest.raises(PredicateError):
            Or.of()

    def test_resources_union(self):
        combined = (self.a & self.b) | self.c
        assert combined.resources() == frozenset({"w", "x", "r1"})

    def test_serialisation_roundtrip(self):
        predicate = Or.of(And.of(self.a, self.b), Not(self.c))
        assert Predicate.from_dict(predicate.to_dict()) == predicate

    def test_unknown_kind_rejected(self):
        with pytest.raises(PredicateError):
            Predicate.from_dict({"kind": "alien"})


class TestNormalForms:
    def test_atom_conjuncts(self):
        atom = quantity_at_least("w", 1)
        assert atom.conjuncts() == [atom]

    def test_and_conjuncts(self):
        a, b = quantity_at_least("w", 1), named_available("r1")
        assert And.of(a, b).conjuncts() == [a, b]

    def test_or_has_no_conjuncts(self):
        with pytest.raises(PredicateUnsupported):
            (quantity_at_least("w", 1) | named_available("r1")).conjuncts()

    def test_dnf_of_or(self):
        a, b = quantity_at_least("w", 1), quantity_at_least("x", 1)
        branches = (a | b).dnf()
        assert branches == [[a], [b]]

    def test_dnf_distributes_and_over_or(self):
        a, b, c = (
            quantity_at_least("w", 1),
            quantity_at_least("x", 1),
            quantity_at_least("y", 1),
        )
        branches = And.of(a, Or.of(b, c)).dnf()
        assert branches == [[a, b], [a, c]]

    def test_dnf_rejects_not(self):
        with pytest.raises(PredicateUnsupported):
            Not(quantity_at_least("w", 1)).dnf()

    def test_dnf_explosion_bounded(self):
        # 2^8 = 256 branches exceeds the 128-branch cap.
        ors = [
            Or.of(quantity_at_least(f"a{i}", 1), quantity_at_least(f"b{i}", 1))
            for i in range(8)
        ]
        with pytest.raises(PredicateUnsupported):
            And.of(*ors).dnf()

    def test_describe_is_readable(self):
        predicate = And.of(
            quantity_at_least("w", 5),
            property_match("rooms", [where("floor", "==", 5)]),
        )
        text = predicate.describe()
        assert "quantity('w') >= 5" in text
        assert "floor == 5" in text
