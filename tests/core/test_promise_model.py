"""Unit tests for the promise/request/response model and the clock."""

from __future__ import annotations

import pytest

from repro.core.clock import LogicalClock
from repro.core.errors import PredicateError
from repro.core.promise import (
    IdGenerator,
    Promise,
    PromiseRequest,
    PromiseResponse,
    PromiseResult,
    PromiseStatus,
    total_quantity_demand,
)
from repro.core.predicates import named_available, quantity_at_least


class TestPromiseRequest:
    def test_requires_predicates(self):
        with pytest.raises(PredicateError):
            PromiseRequest("r1", (), duration=5)

    def test_requires_positive_duration(self):
        with pytest.raises(PredicateError):
            PromiseRequest("r1", (quantity_at_least("w", 1),), duration=0)

    def test_resources_union(self):
        request = PromiseRequest(
            "r1",
            (quantity_at_least("w", 1), named_available("x")),
            duration=5,
        )
        assert request.resources == frozenset({"w", "x"})

    def test_roundtrip(self):
        request = PromiseRequest(
            "r1",
            (quantity_at_least("w", 3),),
            duration=7,
            client_id="alice",
            releases=("old-1", "old-2"),
        )
        assert PromiseRequest.from_dict(request.to_dict()) == request


class TestPromiseResponse:
    def test_accepted_flag(self):
        response = PromiseResponse("p1", PromiseResult.ACCEPTED, 5, "r1")
        assert response.accepted

    def test_rejected_builder(self):
        response = PromiseResponse.rejected("r1", "no stock")
        assert not response.accepted
        assert response.promise_id is None
        assert response.reason == "no stock"

    def test_roundtrip(self):
        response = PromiseResponse("p1", PromiseResult.ACCEPTED, 5, "r1", "fine")
        assert PromiseResponse.from_dict(response.to_dict()) == response

    def test_rejected_roundtrip_keeps_null_promise(self):
        response = PromiseResponse.rejected("r1", "nope")
        decoded = PromiseResponse.from_dict(response.to_dict())
        assert decoded.promise_id is None


class TestPromise:
    def _promise(self, expires=10, status=PromiseStatus.ACTIVE):
        return Promise(
            promise_id="p1",
            client_id="alice",
            predicates=(quantity_at_least("w", 5),),
            granted_at=0,
            expires_at=expires,
            status=status,
            meta={"strategies": ["resource_pool"], "resource_pool": {"escrow": {"w": 5}}},
        )

    def test_expiry_boundary(self):
        promise = self._promise(expires=10)
        assert not promise.is_expired_at(9)
        assert promise.is_expired_at(10)
        assert promise.is_expired_at(11)

    def test_is_active(self):
        assert self._promise().is_active
        assert not self._promise(status=PromiseStatus.RELEASED).is_active
        assert not self._promise(status=PromiseStatus.EXPIRED).is_active

    def test_roundtrip_preserves_meta(self):
        promise = self._promise()
        decoded = Promise.from_dict(promise.to_dict())
        assert decoded.meta == promise.meta
        assert decoded.predicates == promise.predicates
        assert decoded.status is PromiseStatus.ACTIVE

    def test_resources(self):
        assert self._promise().resources == frozenset({"w"})


class TestTotalQuantityDemand:
    def test_sums_active_only(self):
        active = Promise("p1", "a", (quantity_at_least("w", 5),), 0, 10)
        released = Promise(
            "p2", "b", (quantity_at_least("w", 7),), 0, 10,
            status=PromiseStatus.RELEASED,
        )
        assert total_quantity_demand([active, released], "w") == 5

    def test_ignores_other_pools(self):
        promise = Promise(
            "p1", "a",
            (quantity_at_least("w", 5), quantity_at_least("x", 3)),
            0, 10,
        )
        assert total_quantity_demand([promise], "x") == 3


class TestIdGenerator:
    def test_sequential(self):
        ids = IdGenerator("prm")
        assert ids.next_id() == "prm-1"
        assert ids.next_id() == "prm-2"

    def test_take(self):
        ids = IdGenerator("x")
        assert ids.take(3) == ["x-1", "x-2", "x-3"]


class TestLogicalClock:
    def test_starts_at_zero(self):
        assert LogicalClock().now == 0

    def test_advance(self):
        clock = LogicalClock()
        assert clock.advance(5) == 5
        assert clock.now == 5

    def test_advance_to(self):
        clock = LogicalClock(3)
        clock.advance_to(10)
        assert clock.now == 10
        clock.advance_to(4)  # no going back
        assert clock.now == 10

    def test_negative_rejected(self):
        clock = LogicalClock()
        with pytest.raises(ValueError):
            clock.advance(-1)
        with pytest.raises(ValueError):
            LogicalClock(-5)

    def test_observers(self):
        clock = LogicalClock()
        seen = []
        clock.subscribe(seen.append)
        clock.advance(2)
        clock.advance(0)  # zero advance does not notify
        clock.advance(1)
        assert seen == [2, 3]

    def test_unsubscribe(self):
        clock = LogicalClock()
        seen = []
        clock.subscribe(seen.append)
        clock.unsubscribe(seen.append)
        clock.unsubscribe(seen.append)  # idempotent
        clock.advance(1)
        assert seen == []
