"""The three atomicity requirements of §4, end to end."""

from __future__ import annotations

from repro.core.environment import Environment
from repro.core.manager import ActionResult
from repro.core.parser import P
from repro.core.predicates import quantity_at_least
from repro.core.promise import PromiseStatus


class TestRequirement1MultiPredicate:
    """'Request guarantees on several predicates at once' — travel style."""

    def _seed(self, manager):
        with manager.store.begin() as txn:
            manager.resources.create_pool(txn, "flights:QF1", 2)
            manager.resources.create_pool(txn, "cars:compact", 1)
            manager.resources.create_pool(txn, "rooms:hilton", 1)

    def test_all_or_nothing_success(self, manager):
        self._seed(manager)
        response = manager.request_promise_for(
            [
                quantity_at_least("flights:QF1", 1),
                quantity_at_least("cars:compact", 1),
                quantity_at_least("rooms:hilton", 1),
            ],
            duration=20,
        )
        assert response.accepted

    def test_all_or_nothing_failure(self, manager):
        self._seed(manager)
        # Take the only rental car first.
        manager.request_promise_for([quantity_at_least("cars:compact", 1)], 20)
        response = manager.request_promise_for(
            [
                quantity_at_least("flights:QF1", 1),
                quantity_at_least("cars:compact", 1),
                quantity_at_least("rooms:hilton", 1),
            ],
            duration=20,
        )
        assert not response.accepted
        # Neither the flight nor the room may be held by the failed request.
        flight = manager.request_promise_for(
            [quantity_at_least("flights:QF1", 2)], 20
        )
        room = manager.request_promise_for(
            [quantity_at_least("rooms:hilton", 1)], 20
        )
        assert flight.accepted and room.accepted


class TestRequirement2ActionPlusRelease:
    """'Perform an action which depends on, but violates, a previously
    promised condition, together with releasing the promise.'"""

    def test_gallery_purchase_success(self, tagged_rooms_manager):
        manager = tagged_rooms_manager
        response = manager.request_promise_for([P("available('room-512')")], 10)
        outcome = manager.execute(
            lambda ctx: "sold",
            Environment.of(response.promise_id, release=[response.promise_id]),
        )
        assert outcome.success
        assert (
            manager.promise(response.promise_id).status
            is PromiseStatus.RELEASED
        )

    def test_gallery_purchase_failure_keeps_promise(self, tagged_rooms_manager):
        manager = tagged_rooms_manager
        response = manager.request_promise_for([P("available('room-512')")], 10)
        outcome = manager.execute(
            lambda ctx: ActionResult.failed("no shipper available that day"),
            Environment.of(response.promise_id, release=[response.promise_id]),
        )
        assert not outcome.success
        # §4: "if the purchase fails ... then the promise should remain in
        # force".
        assert manager.is_promise_active(response.promise_id)
        # And the room is still promised to us, not given away.
        other = manager.request_promise_for([P("available('room-512')")], 10)
        assert not other.accepted


class TestRequirement3AtomicUpdate:
    """'Modify the predicate whose preservation is promised, by obtaining
    a new promise and releasing a previous one atomically.'"""

    def _grant(self, manager, amount, duration=50):
        response = manager.request_promise_for(
            [quantity_at_least("widgets", amount)], duration
        )
        assert response.accepted
        return response.promise_id

    def test_upgrade_success(self, pool_manager):
        old = self._grant(pool_manager, 100)  # whole pool
        response = pool_manager.request_promise_for(
            [quantity_at_least("widgets", 100)],
            duration=50,
            releases=[old],
        )
        # Without the atomic exchange this would be impossible: the pool
        # cannot hold 200 units of promises at once.
        assert response.accepted
        assert not pool_manager.is_promise_active(old)

    def test_upgrade_failure_keeps_old_promise(self, pool_manager):
        old = self._grant(pool_manager, 50)
        response = pool_manager.request_promise_for(
            [quantity_at_least("widgets", 200)],  # impossible
            duration=50,
            releases=[old],
        )
        assert not response.accepted
        # §6: "the existing promises must continue to hold".
        assert pool_manager.is_promise_active(old)
        with pool_manager.store.begin() as txn:
            pool = pool_manager.resources.pool(txn, "widgets")
        assert (pool.available, pool.allocated) == (50, 50)

    def test_weaken_frees_capacity(self, pool_manager):
        old = self._grant(pool_manager, 100)
        response = pool_manager.request_promise_for(
            [quantity_at_least("widgets", 20)],
            duration=50,
            releases=[old],
        )
        assert response.accepted
        with pool_manager.store.begin() as txn:
            pool = pool_manager.resources.pool(txn, "widgets")
        assert (pool.available, pool.allocated) == (80, 20)

    def test_bank_style_upgrade_weaken_cycle(self, pool_manager):
        # $100 promise -> upgrade to $200 -> weaken to $50 (§4's example,
        # over the widgets pool standing in for an account).
        p100 = self._grant(pool_manager, 100)
        upgraded = pool_manager.request_promise_for(
            [quantity_at_least("widgets", 100)], 50, releases=[p100]
        )
        assert upgraded.accepted
        weakened = pool_manager.request_promise_for(
            [quantity_at_least("widgets", 50)],
            50,
            releases=[upgraded.promise_id],
        )
        assert weakened.accepted
        with pool_manager.store.begin() as txn:
            pool = pool_manager.resources.pool(txn, "widgets")
        assert pool.allocated == 50

    def test_exchange_across_views(self, rooms_manager):
        # Swap a view-room promise for a 5th-floor promise atomically.
        old = rooms_manager.request_promise_for(
            [P("match('rooms', view == true, count=2)")], 50
        )
        new = rooms_manager.request_promise_for(
            [P("match('rooms', floor == 5, count=2)")],
            50,
            releases=[old.promise_id],
        )
        assert new.accepted
        assert not rooms_manager.is_promise_active(old.promise_id)
