"""Deployment lifecycle: idempotent close, context manager, shard naming."""

from __future__ import annotations

from repro.core.parser import P
from repro.services.deployment import Deployment
from repro.services.merchant import MerchantService


def build(tmp_path=None, **kwargs) -> Deployment:
    deployment = Deployment(name="shop", **kwargs)
    deployment.add_service(MerchantService())
    deployment.use_pool_strategy("widgets")
    with deployment.seed() as txn:
        deployment.resources.create_pool(txn, "widgets", 10)
    return deployment


class TestClose:
    def test_close_is_idempotent(self, tmp_path):
        deployment = build(wal_path=str(tmp_path / "shop.wal"))
        deployment.close()
        deployment.close()  # second close must be a no-op, not an error

    def test_context_manager_closes(self, tmp_path):
        wal = str(tmp_path / "shop.wal")
        with build(wal_path=wal) as deployment:
            client = deployment.client("alice")
            assert client.request_promise(
                "shop", [P("quantity('widgets') >= 1")], 10
            ).accepted
        # The WAL handle is released: a second deployment can open it.
        with Deployment(name="shop", wal_path=wal) as reopened:
            assert reopened.recovered

    def test_close_then_context_exit_is_safe(self):
        with build() as deployment:
            deployment.close()
        # __exit__ called close() again; reaching here is the assertion.


class TestManagerName:
    def test_manager_name_defaults_to_endpoint_name(self):
        with build() as deployment:
            client = deployment.client("alice")
            response = client.request_promise(
                "shop", [P("quantity('widgets') >= 1")], 10
            )
            assert response.promise_id.startswith("shop:")

    def test_manager_name_separates_id_pools_from_endpoint(self):
        """Two shards sharing the endpoint name must not mint colliding
        promise ids."""
        ids = []
        for shard in range(2):
            with Deployment(
                name="shop", manager_name=f"shop-s{shard}"
            ) as deployment:
                deployment.add_service(MerchantService())
                deployment.use_pool_strategy("widgets")
                with deployment.seed() as txn:
                    deployment.resources.create_pool(txn, "widgets", 10)
                client = deployment.client("alice")
                response = client.request_promise(
                    "shop", [P("quantity('widgets') >= 1")], 10
                )
                ids.append(response.promise_id)
        assert ids[0] != ids[1]
        assert ids[0].startswith("shop-s0:")
        assert ids[1].startswith("shop-s1:")
