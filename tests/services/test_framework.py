"""Tests for the service framework and Deployment wiring."""

from __future__ import annotations

import pytest

from repro.core.manager import ActionContext, ActionResult
from repro.protocol.messages import ActionPayload
from repro.services.base import (
    ApplicationService,
    ServiceError,
    ServiceRegistry,
    failed,
    ok,
    require,
)
from repro.services.deployment import Deployment


class EchoService(ApplicationService):
    name = "echo"

    def op_say(self, ctx: ActionContext, text: str) -> ActionResult:
        """Echo the text back."""
        return ok(text)

    def op_guarded(self, ctx: ActionContext, value: int) -> ActionResult:
        require(value > 0, "value must be positive")
        return ok(value)

    def op_kwargs(self, ctx: ActionContext, **params) -> ActionResult:
        return ok(sorted(params))

    def _not_an_operation(self, ctx):  # pragma: no cover
        raise AssertionError("must never be discovered")


class TestOperationDiscovery:
    def test_operations_found_by_prefix(self):
        service = EchoService()
        assert set(service.operations()) == {"say", "guarded", "kwargs"}

    def test_action_binding(self):
        service = EchoService()
        action = service.action_for("say", {"text": "hi"})
        result = action(None)  # ctx unused by op_say
        assert result.value == "hi"

    def test_unknown_operation_rejected(self):
        with pytest.raises(ServiceError):
            EchoService().action_for("teleport", {})

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ServiceError):
            EchoService().action_for("say", {"text": "hi", "volume": 11})

    def test_var_keyword_operations_accept_anything(self):
        action = EchoService().action_for("kwargs", {"a": 1, "b": 2})
        assert action(None).value == ["a", "b"]

    def test_require_guard(self):
        from repro.core.errors import ActionFailed

        action = EchoService().action_for("guarded", {"value": -1})
        with pytest.raises(ActionFailed):
            action(None)

    def test_ok_and_failed_helpers(self):
        assert ok(5).success and ok(5).value == 5
        assert not failed("why").success and failed("why").reason == "why"


class TestServiceRegistry:
    def test_register_and_resolve(self):
        registry = ServiceRegistry()
        registry.register(EchoService())
        resolve = registry.resolver()
        action = resolve(ActionPayload("echo", "say", {"text": "yo"}))
        assert action(None).value == "yo"

    def test_duplicate_registration_rejected(self):
        registry = ServiceRegistry()
        registry.register(EchoService())
        with pytest.raises(ServiceError):
            registry.register(EchoService())

    def test_unknown_service(self):
        with pytest.raises(ServiceError):
            ServiceRegistry().service("ghost")

    def test_names(self):
        registry = ServiceRegistry()
        registry.register(EchoService())
        assert registry.names() == ["echo"]


class TestDeployment:
    def test_full_wiring(self):
        deployment = Deployment(name="dep")
        deployment.add_service(EchoService())
        client = deployment.client("tester")
        outcome = client.call("dep", "echo", "say", {"text": "ping"})
        assert outcome.success and outcome.value == "ping"

    def test_strategy_helpers_route(self):
        deployment = Deployment(name="dep")
        deployment.use_pool_strategy("a", "b")
        deployment.use_tags_strategy("c")
        deployment.use_tentative_strategy("d")
        assignments = deployment.registry.assignments()
        assert assignments == {
            "a": "resource_pool",
            "b": "resource_pool",
            "c": "allocated_tags",
            "d": "tentative",
        }

    def test_pool_strategy_reused_across_calls(self):
        deployment = Deployment(name="dep")
        first = deployment.use_pool_strategy("a")
        second = deployment.use_pool_strategy("b")
        assert first is second

    def test_shared_transport_hosts_multiple_deployments(self):
        first = Deployment(name="one")
        first.add_service(EchoService())
        second = Deployment(name="two", transport=first.transport)

        class OtherService(EchoService):
            name = "other"

        second.add_service(OtherService())
        client = first.client("c")
        assert client.call("one", "echo", "say", {"text": "1"}).value == "1"
        assert client.call("two", "other", "say", {"text": "2"}).value == "2"

    def test_wire_format_disabled(self):
        deployment = Deployment(name="dep", wire_format=False)
        deployment.add_service(EchoService())
        client = deployment.client("tester")
        client.call("dep", "echo", "say", {"text": "x"})
        assert deployment.transport.stats.bytes_on_wire == 0

    def test_max_duration_propagates(self):
        from repro.core.parser import P

        deployment = Deployment(name="dep", max_duration=7)
        deployment.add_service(EchoService())
        with deployment.seed() as txn:
            deployment.resources.create_pool(txn, "w", 5)
        response = deployment.client("c").request_promise(
            "dep", [P("quantity('w') >= 1")], 500
        )
        assert response.duration == 7
