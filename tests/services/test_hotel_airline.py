"""Tests for the hotel and airline services."""

from __future__ import annotations

import pytest

from repro.core.environment import Environment
from repro.core.parser import P
from repro.resources.records import InstanceStatus
from repro.services.airline import AirlineService, seat_id
from repro.services.deployment import Deployment
from repro.services.hotel import HotelService, room_night

ROOMS = {
    "room-101": {"floor": 1, "view": False, "beds": "twin", "smoking": False, "grade": "standard"},
    "room-102": {"floor": 1, "view": True, "beds": "queen", "smoking": False, "grade": "standard"},
    "room-512": {"floor": 5, "view": True, "beds": "queen", "smoking": False, "grade": "deluxe"},
    "room-513": {"floor": 5, "view": False, "beds": "twin", "smoking": True, "grade": "suite"},
}
DATES = ["2007-03-12", "2007-03-13"]


@pytest.fixture
def hotel():
    deployment = Deployment(name="hotel")
    service = deployment.add_service(HotelService())
    deployment.use_tentative_strategy("rooms")
    with deployment.seed() as txn:
        service.seed_rooms(txn, deployment.resources, ROOMS, DATES)
    return deployment


@pytest.fixture
def airline():
    deployment = Deployment(name="airline")
    service = deployment.add_service(AirlineService())
    with deployment.seed() as txn:
        service.seed_flight(
            txn, deployment.resources, "QF1@2007-10-08",
            economy_rows=3, business_rows=1,
        )
    return deployment


class TestHotel:
    def test_room_nights_are_distinct_instances(self, hotel):
        with hotel.store.begin() as txn:
            records = hotel.resources.instances_in(txn, "rooms")
        assert len(records) == len(ROOMS) * len(DATES)

    def test_property_promise_and_booking(self, hotel):
        client = hotel.client("guest")
        promise_id = client.require_promise(
            "hotel",
            [P("match('rooms', floor == 5 and date == '2007-03-12', count=1)")],
            20,
        )
        outcome = client.call(
            "hotel", "hotel", "book", {"guest": "guest"},
            environment=Environment.of(promise_id, release=[promise_id]),
        )
        assert outcome.success
        with hotel.store.begin() as txn:
            taken = [
                record.instance_id
                for record in hotel.resources.instances_in(txn, "rooms")
                if record.status is InstanceStatus.TAKEN
            ]
        assert len(taken) == 1
        assert taken[0].endswith("@2007-03-12")
        assert taken[0].startswith("room-51")

    def test_section_33_concurrent_overlapping_requests(self, hotel):
        """One customer asks for a view, another for any 5th-floor room;
        both succeed although room 512 suits both (§3.3)."""
        date_clause = "date == '2007-03-12'"
        view_client = hotel.client("view-customer")
        floor_client = hotel.client("floor-customer")
        view_promise = view_client.require_promise(
            "hotel", [P(f"match('rooms', view == true and {date_clause}, count=1)")], 20
        )
        floor_promise = floor_client.require_promise(
            "hotel", [P(f"match('rooms', floor == 5 and {date_clause}, count=1)")], 20
        )
        assert view_promise and floor_promise
        # Both bookings complete.
        assert view_client.call(
            "hotel", "hotel", "book", {"guest": "v"},
            environment=Environment.of(view_promise, release=[view_promise]),
        ).success
        assert floor_client.call(
            "hotel", "hotel", "book", {"guest": "f"},
            environment=Environment.of(floor_promise, release=[floor_promise]),
        ).success

    def test_named_booking_direct(self, hotel):
        client = hotel.client("guest")
        outcome = client.call(
            "hotel", "hotel", "book_named",
            {"guest": "g", "room": "room-101", "date": "2007-03-12"},
        )
        assert outcome.success
        again = client.call(
            "hotel", "hotel", "book_named",
            {"guest": "h", "room": "room-101", "date": "2007-03-12"},
        )
        assert not again.success

    def test_cancel_restores_named_room(self, hotel):
        client = hotel.client("guest")
        booked = client.call(
            "hotel", "hotel", "book_named",
            {"guest": "g", "room": "room-101", "date": "2007-03-12"},
        )
        cancelled = client.call("hotel", "hotel", "cancel", {"booking_id": booked.value})
        assert cancelled.success
        status = client.call(
            "hotel", "hotel", "room_status",
            {"room": "room-101", "date": "2007-03-12"},
        )
        assert status.value["status"] == "available"

    def test_direct_booking_cannot_steal_promised_room(self, hotel):
        """The §8 guarantee: a check-then-act booking that would break a
        granted promise is rolled back (or rearranged away)."""
        client = hotel.client("guest")
        # Promise both view rooms on the date.
        promise_id = client.require_promise(
            "hotel",
            [P("match('rooms', view == true and date == '2007-03-12', count=2)")],
            20,
        )
        outcome = client.call(
            "hotel", "hotel", "book_named",
            {"guest": "thief", "room": "room-512", "date": "2007-03-12"},
        )
        # Tentative tags mean 512 is PROMISED -> the direct booking fails
        # its own availability check.
        assert not outcome.success
        assert hotel.manager.is_promise_active(promise_id)


class TestAirline:
    FLIGHT = "QF1@2007-10-08"

    def test_seed_counts(self, airline):
        with airline.store.begin() as txn:
            seats = airline.resources.instances_in(txn, self.FLIGHT)
        cabins = {}
        for seat in seats:
            cabins[seat.properties["cabin"]] = cabins.get(seat.properties["cabin"], 0) + 1
        assert cabins == {"business": 4, "economy": 18}

    def test_named_and_anonymous_interaction(self, airline):
        """§3.2: a promise for seat 24G excludes it from anonymous economy
        promises."""
        client = airline.client("pax")
        named_seat = seat_id(self.FLIGHT, 2, "A")  # first economy row is 2
        named = client.require_promise(
            "airline", [P(f"available('{named_seat}')")], 20
        )
        # 17 economy seats remain for anonymous promises; 18 must fail.
        anonymous = client.request_promise(
            "airline",
            [P(f"match('{self.FLIGHT}', cabin == 'economy', count=18)")],
            20,
        )
        assert not anonymous.accepted
        fits = client.request_promise(
            "airline",
            [P(f"match('{self.FLIGHT}', cabin == 'economy', count=17)")],
            20,
        )
        assert fits.accepted
        assert airline.manager.is_promise_active(named)

    def test_or_better_upgrade(self, airline):
        """§3.3: an economy-or-better promise can be satisfied by
        business class."""
        client = airline.client("pax")
        # Take every economy seat with one promise.
        client.require_promise(
            "airline",
            [P(f"match('{self.FLIGHT}', cabin == 'economy', count=18)")],
            20,
        )
        # Plain economy is exhausted...
        plain = client.request_promise(
            "airline", [P(f"match('{self.FLIGHT}', cabin == 'economy', count=1)")], 20
        )
        assert not plain.accepted
        # ...but economy-or-better is satisfied by a business seat.
        upgraded = client.request_promise(
            "airline", [P(f"match('{self.FLIGHT}', cabin == 'economy'~, count=1)")], 20
        )
        assert upgraded.accepted

    def test_ticket_under_promise(self, airline):
        client = airline.client("pax")
        promise_id = client.require_promise(
            "airline", [P(f"match('{self.FLIGHT}', cabin == 'business', count=1)")], 20
        )
        outcome = client.call(
            "airline", "airline", "ticket",
            {"passenger": "alice", "flight": self.FLIGHT},
            environment=Environment.of(promise_id, release=[promise_id]),
        )
        assert outcome.success
        seat_map = client.call("airline", "airline", "seat_map", {"flight": self.FLIGHT})
        taken = [seat for seat, status in seat_map.value.items() if status == "taken"]
        assert len(taken) == 1

    def test_direct_ticket_named_seat(self, airline):
        client = airline.client("pax")
        outcome = client.call(
            "airline", "airline", "ticket_named",
            {"passenger": "bob", "flight": self.FLIGHT, "seat": "2B"},
        )
        assert outcome.success
        repeat = client.call(
            "airline", "airline", "ticket_named",
            {"passenger": "carol", "flight": self.FLIGHT, "seat": "2B"},
        )
        assert not repeat.success
