"""Tests for the merchant and bank services."""

from __future__ import annotations

import pytest

from repro.core.environment import Environment
from repro.core.parser import P
from repro.services.bank import BankService, account_pool
from repro.services.deployment import Deployment
from repro.services.merchant import MerchantService


@pytest.fixture
def shop():
    deployment = Deployment(name="shop")
    deployment.add_service(MerchantService())
    deployment.use_pool_strategy("widgets")
    with deployment.seed() as txn:
        deployment.resources.create_pool(txn, "widgets", 20)
    return deployment


@pytest.fixture
def bank():
    deployment = Deployment(name="bank")
    deployment.add_service(BankService())
    deployment.use_pool_strategy(account_pool("alice"), account_pool("bob"))
    client = deployment.client("teller")
    client.call("bank", "bank", "open_account", {"account": "alice", "balance": 500})
    client.call("bank", "bank", "open_account", {"account": "bob", "balance": 100})
    return deployment


class TestMerchantLifecycle:
    def test_full_order_flow(self, shop):
        client = shop.client("alice")
        promise_id = client.require_promise(
            "shop", [P("quantity('widgets') >= 5")], 20
        )
        order = client.call(
            "shop", "merchant", "place_order",
            {"customer": "alice", "product": "widgets", "quantity": 5},
        )
        assert order.success
        assert client.call("shop", "merchant", "pay", {"order_id": order.value}).success
        done = client.call(
            "shop", "merchant", "complete_order", {"order_id": order.value},
            environment=Environment.of(promise_id, release=[promise_id]),
        )
        assert done.success
        stock = client.call("shop", "merchant", "stock_level", {"product": "widgets"})
        assert stock.value == {"available": 15, "allocated": 0}

    def test_complete_requires_payment(self, shop):
        client = shop.client("alice")
        order = client.call(
            "shop", "merchant", "place_order",
            {"customer": "alice", "product": "widgets", "quantity": 5},
        )
        done = client.call(
            "shop", "merchant", "complete_order", {"order_id": order.value}
        )
        assert not done.success
        assert "not paid" in done.reason

    def test_cancel_order(self, shop):
        client = shop.client("alice")
        order = client.call(
            "shop", "merchant", "place_order",
            {"customer": "alice", "product": "widgets", "quantity": 5},
        )
        assert client.call("shop", "merchant", "cancel_order", {"order_id": order.value}).success
        status = client.call("shop", "merchant", "order_status", {"order_id": order.value})
        assert status.value["status"] == "cancelled"

    def test_unknown_order_operations_fail(self, shop):
        client = shop.client("alice")
        for operation in ("pay", "complete_order", "cancel_order", "order_status"):
            outcome = client.call("shop", "merchant", operation, {"order_id": "nope"})
            assert not outcome.success

    def test_sell_drains_available_only(self, shop):
        client = shop.client("alice")
        client.require_promise("shop", [P("quantity('widgets') >= 15")], 20)
        # 5 unpromised units remain; selling 6 must fail.
        ok = client.call("shop", "merchant", "sell", {"product": "widgets", "quantity": 5})
        assert ok.success
        too_much = client.call("shop", "merchant", "sell", {"product": "widgets", "quantity": 1})
        assert not too_much.success

    def test_restock(self, shop):
        client = shop.client("alice")
        client.call("shop", "merchant", "restock", {"product": "widgets", "quantity": 30})
        stock = client.call("shop", "merchant", "stock_level", {"product": "widgets"})
        assert stock.value["available"] == 50


class TestFigure1Walkthrough:
    """The exact message walkthrough of Figure 1."""

    def test_accepted_path(self, shop):
        client = shop.client("order-process")
        # "Send promise request that (quantity of 'pink widgets' >= 5)"
        promise_id = client.require_promise(
            "shop", [P("quantity('widgets') >= 5")], 30
        )
        # "Continue processing order (organise payment, shippers)"
        order = client.call(
            "shop", "merchant", "place_order",
            {"customer": "c", "product": "widgets", "quantity": 5},
        )
        client.call("shop", "merchant", "pay", {"order_id": order.value})
        # "Send 'purchase stock' request ... and release promise"
        done = client.call(
            "shop", "merchant", "complete_order", {"order_id": order.value},
            environment=Environment.of(promise_id, release=[promise_id]),
        )
        assert done.success
        assert done.released == (promise_id,)

    def test_rejected_path_terminates_order(self, shop):
        from repro.core.errors import PromiseRejected

        client = shop.client("order-process")
        # Drain stock so the promise is rejected.
        client.call("shop", "merchant", "sell", {"product": "widgets", "quantity": 18})
        with pytest.raises(PromiseRejected):
            client.require_promise("shop", [P("quantity('widgets') >= 5")], 30)
        # "Terminate order process saying goods unavailable" — no order
        # record was ever created.
        with shop.store.begin() as txn:
            assert txn.keys("merchant_orders") == []

    def test_guaranteed_despite_concurrent_orders(self, shop):
        """'the required stock will be available when needed, even though
        concurrent order processes may be also selling the same type of
        goods' (§2)."""
        alice = shop.client("alice")
        promise_id = alice.require_promise(
            "shop", [P("quantity('widgets') >= 5")], 30
        )
        # Concurrent processes drain everything else.
        rival = shop.client("rival")
        assert rival.call(
            "shop", "merchant", "sell", {"product": "widgets", "quantity": 15}
        ).success
        assert not rival.call(
            "shop", "merchant", "sell", {"product": "widgets", "quantity": 1}
        ).success
        # Alice's purchase still succeeds.
        done = alice.call(
            "shop", "merchant", "place_order",
            {"customer": "alice", "product": "widgets", "quantity": 5},
        )
        assert done.success
        order_id = done.value
        alice.call("shop", "merchant", "pay", {"order_id": order_id})
        final = alice.call(
            "shop", "merchant", "complete_order", {"order_id": order_id},
            environment=Environment.of(promise_id, release=[promise_id]),
        )
        assert final.success


class TestBank:
    def test_balances(self, bank):
        client = bank.client("teller")
        balance = client.call("bank", "bank", "balance", {"account": "alice"})
        assert balance.value == {"available": 500, "promised": 0, "total": 500}

    def test_deposit_withdraw(self, bank):
        client = bank.client("teller")
        client.call("bank", "bank", "deposit", {"account": "alice", "amount": 100})
        client.call("bank", "bank", "withdraw", {"account": "alice", "amount": 300})
        balance = client.call("bank", "bank", "balance", {"account": "alice"})
        assert balance.value["available"] == 300

    def test_overdraft_rejected(self, bank):
        client = bank.client("teller")
        outcome = client.call("bank", "bank", "withdraw", {"account": "bob", "amount": 200})
        assert not outcome.success

    def test_negative_amounts_rejected(self, bank):
        client = bank.client("teller")
        assert not client.call("bank", "bank", "deposit", {"account": "bob", "amount": -5}).success
        assert not client.call("bank", "bank", "withdraw", {"account": "bob", "amount": 0}).success

    def test_transfer(self, bank):
        client = bank.client("teller")
        outcome = client.call(
            "bank", "bank", "transfer",
            {"source": "alice", "target": "bob", "amount": 250},
        )
        assert outcome.success
        assert client.call("bank", "bank", "balance", {"account": "alice"}).value["available"] == 250
        assert client.call("bank", "bank", "balance", {"account": "bob"}).value["available"] == 350

    def test_transfer_insufficient_is_atomic(self, bank):
        client = bank.client("teller")
        outcome = client.call(
            "bank", "bank", "transfer",
            {"source": "bob", "target": "alice", "amount": 999},
        )
        assert not outcome.success
        assert client.call("bank", "bank", "balance", {"account": "alice"}).value["available"] == 500
        assert client.call("bank", "bank", "balance", {"account": "bob"}).value["available"] == 100

    def test_balance_promise_escrows_funds(self, bank):
        """§3.1: the bank can grant many promises against an account as
        long as it cannot be overdrawn if all are exercised."""
        client = bank.client("shop")
        p1 = client.require_promise("bank", [P(f"quantity('{account_pool('alice')}') >= 300")], 20)
        p2 = client.require_promise("bank", [P(f"quantity('{account_pool('alice')}') >= 200")], 20)
        # 500 is fully promised: another withdrawal or promise must fail.
        from repro.core.errors import PromiseRejected

        with pytest.raises(PromiseRejected):
            client.require_promise("bank", [P(f"quantity('{account_pool('alice')}') >= 1")], 20)
        assert not client.call(
            "bank", "bank", "withdraw", {"account": "alice", "amount": 1}
        ).success
        # Consume one, release the other.
        outcome = client.call(
            "bank", "bank", "balance", {"account": "alice"},
            environment=Environment.of(p1, release=[p1]),
        )
        assert outcome.success
        client.release("bank", p2)
        balance = client.call("bank", "bank", "balance", {"account": "alice"})
        assert balance.value == {"available": 200, "promised": 0, "total": 200}
