"""Direct tests for the shipping service's operations."""

from __future__ import annotations

import pytest

from repro.core.environment import Environment
from repro.core.parser import P
from repro.services.deployment import Deployment
from repro.services.shipping import ShippingService, capacity_pool


@pytest.fixture
def shipper():
    deployment = Deployment(name="shipper")
    service = deployment.add_service(ShippingService())
    deployment.use_pool_strategy(*(capacity_pool(day) for day in range(3)))
    with deployment.seed() as txn:
        service.seed_capacity(txn, deployment.resources, days=3, per_day=4)
    return deployment


class TestCapacity:
    def test_seeded_capacity(self, shipper):
        client = shipper.client("ops")
        outcome = client.call("shipper", "shipping", "capacity", {"day": 1})
        assert outcome.value == {"available": 4, "allocated": 0}

    def test_unknown_day_reports_internal_fault(self, shipper):
        from repro.protocol.errors import ProtocolError

        client = shipper.client("ops")
        with pytest.raises(ProtocolError) as excinfo:
            client.call("shipper", "shipping", "capacity", {"day": 9})
        assert "internal-error" in str(excinfo.value)
        # The endpoint survived: the next request works normally.
        assert client.call("shipper", "shipping", "capacity", {"day": 0}).success


class TestScheduling:
    def test_promised_schedule(self, shipper):
        client = shipper.client("merchant")
        promise_id = client.require_promise(
            "shipper", [P(f"quantity('{capacity_pool(1)}') >= 2")], 20
        )
        outcome = client.call(
            "shipper", "shipping", "schedule",
            {"order_id": "ord-9", "day": 1, "parcels": 2},
            environment=Environment.of(promise_id, release=[promise_id]),
        )
        assert outcome.success
        capacity = client.call("shipper", "shipping", "capacity", {"day": 1})
        assert capacity.value == {"available": 2, "allocated": 0}

    def test_unprotected_schedule_drains_capacity(self, shipper):
        client = shipper.client("merchant")
        for __ in range(4):
            assert client.call(
                "shipper", "shipping", "schedule_unprotected",
                {"order_id": "o", "day": 0},
            ).success
        fifth = client.call(
            "shipper", "shipping", "schedule_unprotected",
            {"order_id": "o", "day": 0},
        )
        assert not fifth.success

    def test_unprotected_cannot_raid_promised_capacity(self, shipper):
        client = shipper.client("merchant")
        client.require_promise(
            "shipper", [P(f"quantity('{capacity_pool(2)}') >= 3")], 20
        )
        # Only one unit of day-2 capacity remains unpromised.
        assert client.call(
            "shipper", "shipping", "schedule_unprotected",
            {"order_id": "o", "day": 2},
        ).success
        assert not client.call(
            "shipper", "shipping", "schedule_unprotected",
            {"order_id": "o", "day": 2},
        ).success

    def test_shipment_records_promises(self, shipper):
        client = shipper.client("merchant")
        promise_id = client.require_promise(
            "shipper", [P(f"quantity('{capacity_pool(0)}') >= 1")], 20
        )
        outcome = client.call(
            "shipper", "shipping", "schedule",
            {"order_id": "ord-1", "day": 0},
            environment=Environment.of(promise_id, release=[promise_id]),
        )
        with shipper.store.begin() as txn:
            record = txn.get("shipments", outcome.value)
        assert record["promises"] == [promise_id]
        assert record["order_id"] == "ord-1"
