"""Tests for the gallery, shipping (delegation) and travel services."""

from __future__ import annotations

import pytest

from repro.core.environment import Environment
from repro.core.parser import P
from repro.resources.records import InstanceStatus
from repro.services.deployment import Deployment
from repro.services.gallery import GalleryService
from repro.services.merchant import MerchantService
from repro.services.shipping import ShippingService, capacity_pool
from repro.services.travel import TravelAgent, TravelNeed, TravelService

PAINTINGS = {
    "blue-poles": {"artist": "Pollock", "year": 1952, "price": 1_300_000},
    "nude-descending": {"artist": "Duchamp", "year": 1912, "price": 900_000},
}


@pytest.fixture
def gallery():
    deployment = Deployment(name="gallery")
    service = deployment.add_service(GalleryService())
    deployment.use_tags_strategy("paintings")
    with deployment.seed() as txn:
        service.seed_catalogue(txn, deployment.resources, PAINTINGS)
    return deployment


class TestGallery:
    def test_purchase_releases_promise(self, gallery):
        client = gallery.client("collector")
        promise_id = client.require_promise(
            "gallery", [P("available('blue-poles')")], 20
        )
        outcome = client.call(
            "gallery", "gallery", "purchase",
            {"buyer": "collector", "painting": "blue-poles"},
            environment=Environment.of(promise_id, release=[promise_id]),
        )
        assert outcome.success
        catalogue = client.call("gallery", "gallery", "catalogue", {})
        assert catalogue.value["blue-poles"] == "taken"

    def test_failed_purchase_keeps_promise(self, gallery):
        """§4: 'if the purchase fails for some reason (perhaps no shipper
        is available that day) then the promise should remain in force'."""
        client = gallery.client("collector")
        promise_id = client.require_promise(
            "gallery", [P("available('blue-poles')")], 20
        )
        outcome = client.call(
            "gallery", "gallery", "purchase",
            {"buyer": "collector", "painting": "blue-poles",
             "shipper_available": False},
            environment=Environment.of(promise_id, release=[promise_id]),
        )
        assert not outcome.success
        assert "no shipper" in outcome.reason
        assert gallery.manager.is_promise_active(promise_id)
        # And nobody else can get the painting meanwhile.
        rival = gallery.client("rival")
        response = rival.request_promise(
            "gallery", [P("available('blue-poles')")], 20
        )
        assert not response.accepted
        # The retry next day succeeds under the same promise.
        retry = client.call(
            "gallery", "gallery", "purchase",
            {"buyer": "collector", "painting": "blue-poles"},
            environment=Environment.of(promise_id, release=[promise_id]),
        )
        assert retry.success


@pytest.fixture
def shipping_world():
    """Merchant deployment delegating shipping capacity upstream (§7/E8)."""
    shipper = Deployment(name="shipper")
    shipping_service = shipper.add_service(ShippingService())
    shipper.use_pool_strategy(*(capacity_pool(day) for day in range(3)))
    with shipper.seed() as txn:
        shipping_service.seed_capacity(txn, shipper.resources, days=3, per_day=5)

    merchant = Deployment(name="merchant", transport=shipper.transport)
    merchant.add_service(MerchantService())
    merchant.use_pool_strategy("widgets")
    merchant.use_delegation(
        shipper.manager, *(capacity_pool(day) for day in range(3))
    )
    with merchant.seed() as txn:
        merchant.resources.create_pool(txn, "widgets", 50)
    return merchant, shipper


class TestShippingDelegation:
    def test_next_day_promise_spans_domains(self, shipping_world):
        merchant, shipper = shipping_world
        client = merchant.client("order-process")
        # One request: stock (local escrow) + next-day capacity (delegated).
        promise_id = client.require_promise(
            "merchant",
            [P("quantity('widgets') >= 5"),
             P(f"quantity('{capacity_pool(1)}') >= 1")],
            20,
        )
        with shipper.store.begin() as txn:
            pool = shipper.resources.pool(txn, capacity_pool(1))
        assert pool.allocated == 1
        # Releasing locally releases upstream.
        client.release("merchant", promise_id)
        with shipper.store.begin() as txn:
            pool = shipper.resources.pool(txn, capacity_pool(1))
        assert pool.allocated == 0

    def test_upstream_exhaustion_rejects_whole_order(self, shipping_world):
        merchant, shipper = shipping_world
        # Drain day-1 capacity upstream.
        shipper_client = shipper.client("bulk")
        for __ in range(5):
            shipper_client.call(
                "shipper", "shipping", "schedule_unprotected",
                {"order_id": "x", "day": 1},
            )
        client = merchant.client("order-process")
        response = client.request_promise(
            "merchant",
            [P("quantity('widgets') >= 5"),
             P(f"quantity('{capacity_pool(1)}') >= 1")],
            20,
        )
        assert not response.accepted
        # Local widgets escrow must have been rolled back.
        with merchant.store.begin() as txn:
            pool = merchant.resources.pool(txn, "widgets")
        assert (pool.available, pool.allocated) == (50, 0)


@pytest.fixture
def travel_world():
    deployment = Deployment(name="travel")
    deployment.add_service(TravelService())
    deployment.use_pool_strategy("flight:QF1", "car:compact", "car:luxury", "hotel:hilton")
    with deployment.seed() as txn:
        deployment.resources.create_pool(txn, "flight:QF1", 2)
        deployment.resources.create_pool(txn, "car:compact", 1)
        deployment.resources.create_pool(txn, "car:luxury", 1)
        deployment.resources.create_pool(txn, "hotel:hilton", 1)
    return deployment


def needs():
    return [
        TravelNeed("flight", P("quantity('flight:QF1') >= 1")),
        TravelNeed(
            "car",
            P("quantity('car:compact') >= 1"),
            (P("quantity('car:luxury') >= 1"),),
        ),
        TravelNeed("hotel", P("quantity('hotel:hilton') >= 1")),
    ]


class TestTravelAgent:
    def test_atomic_plan_success(self, travel_world):
        agent = TravelAgent(travel_world.client("agent"), "travel")
        plan = agent.plan_atomic(needs(), duration=20)
        assert plan.success and plan.attempts == 1

    def test_atomic_plan_failure_leaves_nothing(self, travel_world):
        rival = travel_world.client("rival")
        rival.require_promise("travel", [P("quantity('hotel:hilton') >= 1")], 20)
        agent = TravelAgent(travel_world.client("agent"), "travel")
        plan = agent.plan_atomic(needs(), duration=20)
        assert not plan.success
        # No flight or car is held by the failed plan.
        fresh = travel_world.client("checker")
        assert fresh.request_promise("travel", [P("quantity('flight:QF1') >= 2")], 5).accepted
        assert fresh.request_promise("travel", [P("quantity('car:compact') >= 1")], 5).accepted

    def test_incremental_plan_uses_alternatives(self, travel_world):
        rival = travel_world.client("rival")
        rival.require_promise("travel", [P("quantity('car:compact') >= 1")], 20)
        agent = TravelAgent(travel_world.client("agent"), "travel")
        plan = agent.plan_incremental(needs(), duration=20)
        assert plan.success
        assert plan.alternatives_tried == 1  # fell back to the luxury car
        assert len(plan.promise_ids) == 3

    def test_incremental_plan_backtracks_on_total_failure(self, travel_world):
        rival = travel_world.client("rival")
        rival.require_promise("travel", [P("quantity('car:compact') >= 1")], 20)
        rival.require_promise("travel", [P("quantity('car:luxury') >= 1")], 20)
        agent = TravelAgent(travel_world.client("agent"), "travel")
        plan = agent.plan_incremental(needs(), duration=20)
        assert not plan.success
        # The flight promise acquired before the car failure was released.
        fresh = travel_world.client("checker")
        assert fresh.request_promise("travel", [P("quantity('flight:QF1') >= 2")], 5).accepted

    def test_booking_consumes_all_promises(self, travel_world):
        client = travel_world.client("agent")
        agent = TravelAgent(client, "travel")
        plan = agent.plan_atomic(needs(), duration=20)
        promise_id = plan.promise_ids[0]
        outcome = client.call(
            "travel", "travel", "book_trip",
            {"traveller": "alice", "description": "QF1 + car + hilton"},
            environment=Environment.of(promise_id, release=[promise_id]),
        )
        assert outcome.success
        with travel_world.store.begin() as txn:
            assert travel_world.resources.pool(txn, "flight:QF1").on_hand == 1
            assert travel_world.resources.pool(txn, "car:compact").on_hand == 0
            assert travel_world.resources.pool(txn, "hotel:hilton").on_hand == 0
