"""Tests for the command-line interface."""

from __future__ import annotations

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv: str) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestFigure1Command:
    def test_happy_path(self):
        code, output = run_cli("figure1", "--stock", "12", "--need", "5")
        assert code == 0
        assert "GRANTED" in output
        assert "purchase under promise: ok" in output
        assert "'available': 0" in output

    def test_rejection_path_with_counter(self):
        code, output = run_cli("figure1", "--stock", "3", "--need", "5")
        assert code == 1
        assert "REJECTED" in output
        assert "counter-offer: quantity('pink_widgets') >= 3" in output

    def test_limited_rival_appetite(self):
        code, output = run_cli(
            "figure1", "--stock", "20", "--need", "5", "--rival-appetite", "2"
        )
        assert code == 0
        assert "sold 2 units" in output


class TestCompareCommand:
    def test_all_regimes(self):
        code, output = run_cli(
            "compare", "--clients", "12", "--tightness", "2.0", "--seed", "3"
        )
        assert code == 0
        for name in ("promises", "optimistic", "validation", "locking"):
            assert name in output

    def test_regime_subset(self):
        code, output = run_cli(
            "compare", "--clients", "8", "--regimes", "promises", "locking"
        )
        assert code == 0
        assert "promises" in output and "locking" in output
        assert "optimistic" not in output

    def test_rejects_unknown_regime(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--regimes", "hopeful"])


class TestServeCommand:
    def test_self_test_round_trip(self):
        code, output = run_cli("serve", "--self-test")
        assert code == 0
        assert "promise granted" in output
        assert "duplicate served from cache: yes" in output
        assert "self-test ok" in output

    def test_self_test_with_custom_stock_and_endpoint(self):
        code, output = run_cli(
            "serve", "--self-test", "--stock", "7", "--endpoint", "store"
        )
        assert code == 0
        assert "self-test ok" in output

    def test_self_test_restarts_from_wal(self, tmp_path):
        wal = tmp_path / "shop.wal"
        code, output = run_cli("serve", "--self-test", "--wal", str(wal))
        assert code == 0
        assert "killed server; restarting from" in output
        assert "recovery:" in output
        assert "stock after restart" in output and "survived" in output
        assert "journaled reply replayed: yes" in output
        assert "self-test ok" in output
        assert wal.exists()  # an explicit WAL is kept for inspection

    def test_self_test_cleans_up_implicit_wal(self):
        code, output = run_cli("serve", "--self-test")
        assert code == 0
        wal_name = output.split("restarting from ")[1].splitlines()[0]
        import os

        assert not os.path.exists(wal_name)


class TestDoctorCommand:
    def test_healthy_wal(self, tmp_path):
        wal = tmp_path / "shop.wal"
        code, __ = run_cli("serve", "--self-test", "--wal", str(wal))
        assert code == 0
        code, output = run_cli("doctor", "--wal", str(wal))
        assert code == 0
        assert "healthy" in output

    def test_repair_flag_accepted(self, tmp_path):
        wal = tmp_path / "shop.wal"
        run_cli("serve", "--self-test", "--wal", str(wal))
        code, output = run_cli("doctor", "--wal", str(wal), "--repair")
        assert code == 0

    def test_missing_wal(self, tmp_path):
        code, output = run_cli("doctor", "--wal", str(tmp_path / "nope.wal"))
        assert code == 2
        assert "no such WAL" in output

    def test_torn_tail_reported_as_note(self, tmp_path):
        wal = tmp_path / "shop.wal"
        run_cli("serve", "--self-test", "--wal", str(wal))
        raw = wal.read_bytes()
        wal.write_bytes(raw[:-10])  # tear the final record
        code, output = run_cli("doctor", "--wal", str(wal))
        assert code == 0
        assert "torn tail" in output


class TestCallCommand:
    @pytest.fixture
    def server_address(self):
        from repro.cli import _build_served_deployment
        from repro.net import PromiseServer, ThreadedServer

        deployment = _build_served_deployment("shop", stock=20)
        server = PromiseServer()
        server.register("shop", deployment.endpoint.handle)
        with ThreadedServer(server) as (host, port):
            yield f"{host}:{port}"

    def test_promise_request(self, server_address):
        code, output = run_cli(
            "call", "--connect", server_address,
            "--predicate", "quantity('widgets') >= 5",
        )
        assert code == 0
        assert "GRANTED" in output

    def test_promise_rejection_exit_code(self, server_address):
        code, output = run_cli(
            "call", "--connect", server_address,
            "--predicate", "quantity('widgets') >= 500",
        )
        assert code == 1
        assert "REJECTED" in output

    def test_action_call(self, server_address):
        code, output = run_cli(
            "call", "--connect", server_address,
            "--service", "merchant", "--operation", "sell",
            "--param", "product=widgets", "--param", "quantity=3",
        )
        assert code == 0
        assert "merchant.sell: ok" in output

    def test_promise_plus_action(self, server_address):
        code, output = run_cli(
            "call", "--connect", server_address,
            "--predicate", "quantity('widgets') >= 2",
            "--service", "merchant", "--operation", "sell",
            "--param", "product=widgets", "--param", "quantity=1",
        )
        assert code == 0
        assert "GRANTED" in output and "merchant.sell: ok" in output

    def test_nothing_to_do(self):
        code, output = run_cli("call")
        assert code == 2
        assert "nothing to do" in output

    def test_bad_address(self):
        code, output = run_cli(
            "call", "--connect", "nonsense", "--predicate", "true",
        )
        assert code == 2
        assert "bad --connect" in output

    def test_unreachable_server_reports_cleanly(self):
        code, output = run_cli(
            "call", "--connect", "127.0.0.1:1",
            "--predicate", "quantity('widgets') >= 1",
        )
        assert code == 2
        assert output.startswith("error: ")

    def test_bad_predicate_reports_cleanly(self, server_address):
        code, output = run_cli(
            "call", "--connect", server_address, "--predicate", "quantity(",
        )
        assert code == 2
        assert output.startswith("bad predicate: ")

    def test_port_conflict_reports_cleanly(self, server_address):
        host, _, port = server_address.rpartition(":")
        code, output = run_cli(
            "serve", "--host", host, "--port", port, "--stock", "5",
        )
        assert code == 2
        assert "cannot serve" in output

    def test_fresh_processes_do_not_collide_in_dedup_cache(
        self, server_address, monkeypatch
    ):
        import itertools

        from repro.protocol.client import PromiseClient

        # Each real CLI invocation is a new process whose per-process
        # stub counter restarts at 1.  Emulate that reset between two
        # calls: with a shared client identity both would send message
        # id "...:c1:msg-1" and the second would be served the first's
        # cached reply instead of executing its action.
        code, output = run_cli(
            "call", "--connect", server_address,
            "--predicate", "quantity('widgets') >= 5",
        )
        assert code == 0 and "GRANTED" in output
        monkeypatch.setattr(PromiseClient, "_instances", itertools.count(1))
        code, output = run_cli(
            "call", "--connect", server_address,
            "--service", "merchant", "--operation", "sell",
            "--param", "product=widgets", "--param", "quantity=3",
        )
        assert code == 0
        assert "merchant.sell: ok" in output


class TestResilienceFlags:
    def test_serve_self_test_with_flags(self):
        code, output = run_cli(
            "serve", "--self-test",
            "--max-queue", "16", "--rate-limit", "500",
            "--breaker-threshold", "5",
        )
        assert code == 0
        assert "self-test ok" in output

    def test_serve_banner_reports_admission(self, tmp_path):
        # A flagged self-test run still prints the admission banner line
        # describing the controller it built.
        code, output = run_cli(
            "serve", "--self-test", "--max-queue", "8", "--rate-limit", "100",
        )
        assert code == 0


class TestChaosCommand:
    def test_self_test_flags_planted_leak(self):
        code, output = run_cli("chaos", "--self-test")
        assert code == 0
        assert "planted leak was flagged" in output

    def test_rejects_single_shard(self):
        code, output = run_cli("chaos", "--shards", "1", "--steps", "2")
        assert code == 2
        assert "at least two shards" in output

    @pytest.mark.chaos
    def test_short_seeded_run_is_clean(self):
        code, output = run_cli("chaos", "--seed", "7", "--steps", "6")
        assert code == 0
        assert "chaos ok" in output
        assert '"violations": []' in output


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.clients == 32
        assert args.tightness == 2.0
        assert sorted(args.regimes) == [
            "locking", "optimistic", "promises", "validation",
        ]

    def test_resilience_flags_default_off(self):
        for command in ("serve", "serve-cluster"):
            args = build_parser().parse_args([command])
            assert args.max_queue is None
            assert args.rate_limit is None
            assert args.breaker_threshold is None

    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.seed == 2007
        assert args.steps == 30
        assert args.shards == 3
        assert args.duration is None
        assert args.self_test is False
