"""Tests for the command-line interface."""

from __future__ import annotations

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv: str) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestFigure1Command:
    def test_happy_path(self):
        code, output = run_cli("figure1", "--stock", "12", "--need", "5")
        assert code == 0
        assert "GRANTED" in output
        assert "purchase under promise: ok" in output
        assert "'available': 0" in output

    def test_rejection_path_with_counter(self):
        code, output = run_cli("figure1", "--stock", "3", "--need", "5")
        assert code == 1
        assert "REJECTED" in output
        assert "counter-offer: quantity('pink_widgets') >= 3" in output

    def test_limited_rival_appetite(self):
        code, output = run_cli(
            "figure1", "--stock", "20", "--need", "5", "--rival-appetite", "2"
        )
        assert code == 0
        assert "sold 2 units" in output


class TestCompareCommand:
    def test_all_regimes(self):
        code, output = run_cli(
            "compare", "--clients", "12", "--tightness", "2.0", "--seed", "3"
        )
        assert code == 0
        for name in ("promises", "optimistic", "validation", "locking"):
            assert name in output

    def test_regime_subset(self):
        code, output = run_cli(
            "compare", "--clients", "8", "--regimes", "promises", "locking"
        )
        assert code == 0
        assert "promises" in output and "locking" in output
        assert "optimistic" not in output

    def test_rejects_unknown_regime(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--regimes", "hopeful"])


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.clients == 32
        assert args.tightness == 2.0
        assert sorted(args.regimes) == [
            "locking", "optimistic", "promises", "validation",
        ]
